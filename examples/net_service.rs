//! A cheap-talk game over real TCP sockets (DESIGN.md §9).
//!
//! The sans-IO state machines never notice: the service hosts the session,
//! drains its outbox onto the wire, and re-injects frames as the network
//! hands them back. Five relay clients — one real TCP connection per
//! player, on an ephemeral loopback port — *are* the network: the
//! interleaving of their round trips is the delivery order, which is
//! exactly an adversarial scheduler in the paper's §2 sense. Theorem 4.1
//! says the outcome doesn't care; this example watches that happen.
//!
//! Everything the service does — accepting these connections, parsing
//! frames, advancing the hosted session, flushing replies — runs on one
//! reactor thread; the closing act scales that thread to 256 concurrent
//! sessions fed by a single `bulk_relay` connection.
//!
//! ```sh
//! cargo run --example net_service
//! ```

use mediator_talk::prelude::*;
use std::thread;

fn main() {
    let n = 5;
    let votes = [1u64, 0, 1, 1, 0];
    println!("player votes: {votes:?} (majority = 1)");

    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0) // Theorem 4.1: n = 5 > 4k+4t = 4 ✓
        .inputs(votes.iter().map(|&b| vec![Fp::new(b)]).collect())
        .build()
        .expect("threshold satisfied");

    // Reference point: the same plan, in-process.
    let local = plan.run_with(&SchedulerKind::Random, 7);
    println!(
        "in-process run: {} messages, {} steps, profile {:?}",
        local.messages_sent,
        local.steps,
        local.resolve_default(&vec![0; n])
    );

    // The server side: a service on an ephemeral loopback port (always
    // port 0 — never a fixed number), hosting this plan as session 1.
    let transport = TcpTransport::bind_loopback().expect("bind 127.0.0.1:0");
    let addr = transport.addr();
    println!("service listening on {addr}");
    let service = Service::start(Box::new(transport));
    let handle = plan.serve(&service, 1, SchedulerKind::Random, 7);

    // The client side: one TCP connection per player. Each relay completes
    // the network leg of every message addressed to its player.
    let relays: Vec<_> = (0..n)
        .map(|player| {
            let client_plan = plan.clone();
            thread::spawn(move || {
                let mut client = client_plan.connect_tcp(addr).expect("dial service");
                client.attach(1, player).expect("attach");
                let summary = client.relay().expect("relay to completion");
                (player, summary)
            })
        })
        .collect();

    let outcome = handle.outcome().expect("networked run completes");
    println!(
        "networked run:  {} messages over TCP, {} steps, profile {:?} ({:?})",
        outcome.messages_sent,
        outcome.steps,
        outcome.resolve_default(&vec![0; n]),
        outcome.termination,
    );

    for relay in relays {
        let (player, summary) = relay.join().expect("relay thread");
        println!(
            "  relay for player {player}: saw termination {:?}, move {:?}",
            summary.termination, summary.moves[player]
        );
    }

    // Theorem 4.1 in action: the network reordered everything, the
    // outcome didn't budge.
    assert_eq!(
        outcome.resolve_default(&vec![0; n]),
        local.resolve_default(&vec![0; n]),
        "outcome-kind parity between wire and in-process runs"
    );
    println!("wire and in-process runs agree on the action profile ✓");

    service.shutdown();

    // The reactor at scale: 256 concurrent sessions of the same plan on
    // ONE service thread, with ONE bulk-relay connection (and one client
    // thread) carrying all 1280 players — content-blind byte echo, no
    // per-player sockets, no per-session threads.
    let sessions = 256u64;
    let hub = MemTransport::new();
    let service = Service::start(Box::new(hub.listener()));
    let handles: Vec<_> = (0..sessions)
        .map(|sid| service.host_plan(sid, &plan, SchedulerKind::Random, sid))
        .collect();
    let attaches: Vec<(u64, usize)> = (0..sessions)
        .flat_map(|sid| (0..n).map(move |p| (sid, p)))
        .collect();
    let (tx, rx) = hub.connect_raw();
    let relay = thread::spawn(move || {
        mediator_talk::net::bulk_relay(rx, tx, &attaches, sessions as usize).expect("bulk relay")
    });
    let started = std::time::Instant::now();
    for handle in handles {
        let sid = handle.id();
        let out = handle
            .outcome()
            .unwrap_or_else(|e| panic!("session {sid}: {e}"));
        assert_eq!(
            out.resolve_default(&vec![0; n]),
            local.resolve_default(&vec![0; n]),
            "session {sid}: outcome-kind parity at scale"
        );
    }
    let elapsed = started.elapsed();
    assert_eq!(relay.join().expect("relay thread").len(), sessions as usize);
    service.shutdown();
    println!(
        "reactor hosted {sessions} concurrent sessions on one thread in \
         {elapsed:.1?} ({:.2?}/session) ✓",
        elapsed / sessions as u32
    );
}
