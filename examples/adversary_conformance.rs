//! The adversary plane and the conformance harness, end to end:
//!
//! 1. compose a deviation from message-level primitives with the
//!    combinator DSL and run it through a scenario;
//! 2. sweep the *generated* coalition-strategy battery over the §6.4
//!    mediator games and watch the harness find the paper's attack on the
//!    naive mediator — and certify the minimally-informative fix.
//!
//! ```sh
//! cargo run --release --example adversary_conformance
//! ```

use mediator_talk::games::library;
use mediator_talk::prelude::*;

fn main() {
    let n = 5;

    // --- 1. One composed deviation through the Scenario surface --------
    // Equivocate openings toward players 3 and 4, then abort entirely at
    // send 120: a strategy no hand-written battery entry covers, three
    // combinator calls here.
    let (name, behavior) = Deviation::named("equivocate-then-abort")
        .equivocate([3, 4], 1_000_003)
        .abort_at(120)
        .build();
    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0) // Theorem 4.1: n = 5 > 4k + 4t = 4
        .inputs(vec![vec![Fp::ONE]; n])
        .deviant(2, behavior)
        .build()
        .expect("threshold satisfied");
    let out = plan.run_with(&SchedulerKind::Random, 7);
    println!(
        "composed deviation '{name}': honest players still decide {:?}",
        &out.resolve_default(&vec![0; n])[..2],
    );

    // --- 2. The conformance harness on the §6.4 games ------------------
    let n = 7;
    let (game, _, k) = library::counterexample_game(n);
    let bot = library::BOTTOM as u64;
    let cfg = Conformance::new(0.01, k, 0)
        .battery(vec![SchedulerKind::Random])
        .seeds(48)
        .coalitions(vec![vec![0, 1]])
        .deadlock_action(bot);

    let naive = Scenario::mediator(catalog::counterexample_naive(n))
        .players(n)
        .tolerance(k, 0)
        .naive_split()
        .wills(vec![bot; n])
        .resolve_defaults(vec![bot; n])
        .build()
        .expect("n − k ≥ 1");
    let report = naive.conformance(&game, &vec![0; n], &cfg);
    match report.witness() {
        Some(w) => println!("naive mediator: VIOLATED — {w}"),
        None => println!("naive mediator: unexpectedly resilient?"),
    }

    let fixed = Scenario::mediator(catalog::counterexample_minfo(n))
        .players(n)
        .tolerance(k, 0)
        .wills(vec![bot; n])
        .resolve_defaults(vec![bot; n])
        .build()
        .expect("n − k ≥ 1");
    let report = fixed.conformance(&game, &vec![0; n], &cfg);
    match &report.verdict {
        ConformanceVerdict::Resilient {
            max_gain_hi,
            max_harm_hi,
        } => println!(
            "min-info mediator: ε-k-resilient within the statistical bound \
             (max gain ≤ {max_gain_hi:.4}, max harm ≤ {max_harm_hi:.4}, \
             {} strategies × {} seeds)",
            report.cells.len(),
            report.seeds_per_kind
        ),
        v => println!("min-info mediator: unexpected verdict {v:?}"),
    }
}
