//! A tour of the asynchronous environment model (§2, §5, §6.1):
//! scheduler families, the covert channels between players and the
//! content-blind environment, and message-pattern equivalence classes.
//!
//! ```sh
//! cargo run --example scheduler_tour
//! ```

use mediator_talk::circuits::catalog;
use mediator_talk::core::mediator::{
    run_mediator_game, run_mediator_game_relaxed, MediatorGameSpec,
};
use mediator_talk::core::min_info;
use mediator_talk::field::Fp;
use mediator_talk::sim::covert::{CovertDecoder, CovertSender};
use mediator_talk::sim::{Process, SchedulerKind, World};
use std::collections::BTreeMap;

fn main() {
    let n = 4;
    let spec = MediatorGameSpec::standard(
        n,
        1,
        0,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
    );
    let inputs = vec![vec![Fp::ONE]; n];

    // 1. The same game under every scheduler family: same outcome, very
    //    different message patterns.
    println!("— scheduler battery ————————————————————————————————");
    let mut traces = Vec::new();
    for kind in SchedulerKind::battery(n) {
        let out = run_mediator_game(&spec, &inputs, BTreeMap::new(), &kind, 7, 100_000);
        println!(
            "{kind:?}: moves {:?}, {} msgs, {} steps",
            &out.moves[..n],
            out.messages_sent,
            out.steps
        );
        traces.push(out.trace);
    }
    let classes = min_info::distinct_classes(traces.iter());
    println!(
        "→ {} scheduler families induced {} distinct message-pattern classes",
        SchedulerKind::battery(n).len(),
        classes
    );
    println!(
        "  (Lemma 6.8 counts at most ≈2^{:.0} classes for r=1, n={n})",
        min_info::log2_scheduler_classes(1, n as u64)
    );

    // 2. A relaxed scheduler (mediator games only) may withhold messages —
    //    in whole batches. Dropping the mediator's STOP batch deadlocks the
    //    game; the Aumann–Hart wills take over.
    println!("\n— relaxed scheduler (§5) ———————————————————————————");
    let mut will_spec = spec.clone();
    will_spec.wills = Some(vec![9; n]);
    let out = run_mediator_game_relaxed(
        &will_spec,
        &inputs,
        BTreeMap::new(),
        n as u64 + 1,
        3,
        100_000,
    );
    println!(
        "mediator STOP batch dropped: {} drops, termination {:?}",
        out.trace.dropped_count(),
        out.termination
    );
    let resolved = out.resolve_ah(&vec![0; n + 1]);
    println!("wills fired uniformly: {:?}", &resolved[..n]);

    // 3. The covert channel of Proposition 6.1: the environment cannot read
    //    messages, yet players can tell it things by counting.
    println!("\n— covert channel (Prop 6.1) ————————————————————————");
    let secret_values = [2u64, 5, 0, 3];
    let procs: Vec<Box<dyn Process<u8>>> = secret_values
        .iter()
        .map(|&v| Box::new(CovertSender::new(v)) as Box<dyn Process<u8>>)
        .collect();
    let mut world = World::new(procs, 1);
    let mut decoder = CovertDecoder::new(secret_values.len());
    world.run(&mut decoder, 10_000);
    println!("players encoded {secret_values:?}");
    println!(
        "scheduler decoded {:?} — without reading a single payload",
        decoder.decoded()
    );
    assert_eq!(decoder.decoded(), &secret_values);

    println!("\nthis is why the paper treats deviators and the scheduler as one adversary");
}
