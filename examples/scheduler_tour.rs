//! A tour of the asynchronous environment model (§2, §5, §6.1):
//! scheduler families, the steppable `Session` (watching the environment
//! pick events one at a time), relaxed schedulers, and the covert channel
//! between players and the content-blind environment.
//!
//! ```sh
//! cargo run --example scheduler_tour
//! ```

use mediator_talk::core::min_info;
use mediator_talk::prelude::*;
use mediator_talk::sim::covert::{CovertDecoder, CovertSender};
use mediator_talk::sim::{Process, World};

fn main() {
    let n = 4;
    let plan = Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .max_steps(100_000)
        .build()
        .expect("n − k − t ≥ 1");

    // 1. The same game under every scheduler family: same outcome, very
    //    different message patterns. One battery batch, one seed per kind.
    println!("— scheduler battery ————————————————————————————————");
    let set = plan
        .battery(SchedulerKind::battery(n))
        .seeds([7])
        .run_batch();
    for r in set.runs() {
        println!(
            "{:?}: moves {:?}, {} msgs, {} steps",
            r.kind,
            &r.outcome.moves[..n],
            r.outcome.messages_sent,
            r.outcome.steps
        );
    }
    let classes = min_info::distinct_classes(set.outcomes().map(|o| &o.trace));
    println!(
        "→ {} scheduler families induced {} distinct message-pattern classes",
        set.kinds().len(),
        classes
    );
    println!(
        "  (Lemma 6.8 counts at most ≈2^{:.0} classes for r=1, n={n})",
        min_info::log2_scheduler_classes(1, n as u64)
    );

    // 2. The same run, opened up: a steppable Session. The environment's
    //    event plane is visible between steps — this is the seam an async
    //    network backend plugs into (deliveries become `inject` calls).
    println!("\n— steppable session ————————————————————————————————");
    let mut session = plan.session_with(&SchedulerKind::Fifo, 7);
    println!(
        "opened: {} start signals pending, 0 steps taken",
        session.pending().len()
    );
    while session.steps() < 6 && !session.step().is_done() {}
    let in_flight: Vec<String> = session
        .pending()
        .iter()
        .map(|v| match v.src {
            None => format!("start→{}", v.dst),
            Some(s) => format!("{s}→{}", v.dst),
        })
        .collect();
    println!(
        "after {} steps the plane holds {} events: [{}]",
        session.steps(),
        session.pending().len(),
        in_flight.join(", ")
    );
    let out = session.finish();
    println!(
        "finish() drains the rest: moves {:?} in {} steps ({:?})",
        &out.moves[..n],
        out.steps,
        out.termination
    );

    // 3. A relaxed scheduler (mediator games only) may withhold messages —
    //    in whole batches. Dropping the mediator's STOP batch deadlocks the
    //    game; the Aumann–Hart wills take over.
    println!("\n— relaxed scheduler (§5) ———————————————————————————");
    let will_plan = Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .wills(vec![9; n])
        .max_steps(100_000)
        .build()
        .expect("n − k − t ≥ 1");
    let out = will_plan.run_relaxed(n as u64 + 1, 3);
    println!(
        "mediator STOP batch dropped: {} drops, termination {:?}",
        out.trace.dropped_count(),
        out.termination
    );
    let resolved = out.resolve_ah(&vec![0; n + 1]);
    println!("wills fired uniformly: {:?}", &resolved[..n]);

    // 4. The covert channel of Proposition 6.1: the environment cannot read
    //    messages, yet players can tell it things by counting.
    println!("\n— covert channel (Prop 6.1) ————————————————————————");
    let secret_values = [2u64, 5, 0, 3];
    let procs: Vec<Box<dyn Process<u8>>> = secret_values
        .iter()
        .map(|&v| Box::new(CovertSender::new(v)) as Box<dyn Process<u8>>)
        .collect();
    let mut world = World::new(procs, 1);
    let mut decoder = CovertDecoder::new(secret_values.len());
    world.run(&mut decoder, 10_000);
    println!("players encoded {secret_values:?}");
    println!(
        "scheduler decoded {:?} — without reading a single payload",
        decoder.decoded()
    );
    assert_eq!(decoder.decoded(), &secret_values);

    println!("\nthis is why the paper treats deviators and the scheduler as one adversary");
}
