//! Quickstart: implement a majority-vote mediator with asynchronous cheap
//! talk (Theorem 4.1, `n > 4k + 4t`), on the Scenario API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mediator_talk::prelude::*;

fn main() {
    let n = 5;
    let (k, t) = (1, 0); // n = 5 > 4k + 4t = 4 ✓

    // The mediator everyone wants: "send me your bit, I'll tell you the
    // majority". With a trusted third party this is trivial; the point of
    // the paper is doing it with *nothing but player-to-player messages*.
    let circuit = catalog::majority_circuit(n);
    println!(
        "mediator circuit: {} gates ({} multiplications, depth {})",
        circuit.size(),
        circuit.mul_count(),
        circuit.depth()
    );

    let votes = [1u64, 0, 1, 1, 0];
    println!("player votes: {votes:?} (majority = 1)");

    // The builder validates the Theorem 4.1 threshold at build time — ask
    // for k = 1 with only four players and you get a typed error instead
    // of a panic deep inside the MPC engine.
    let rejected = Scenario::cheap_talk(catalog::majority_circuit(4))
        .players(4)
        .tolerance(k, t)
        .build();
    println!(
        "n = 4 is rejected up front: {}",
        rejected.expect_err("4 = 4k+4t is below the threshold")
    );

    let plan = Scenario::cheap_talk(circuit)
        .players(n)
        .tolerance(k, t)
        .inputs(votes.iter().map(|&b| vec![Fp::new(b)]).collect())
        .build()
        .expect("n = 5 > 4k+4t = 4");

    // Run the cheap-talk protocol under three qualitatively different
    // network schedulers — the outcome must not depend on the adversary's
    // choice of message timing.
    for kind in [
        SchedulerKind::Random,
        SchedulerKind::Fifo,
        SchedulerKind::Lifo,
    ] {
        let out = plan.run_with(&kind, 42);
        let moves = out.resolve_default(&vec![0; n]);
        println!(
            "{kind:?}: all players moved {moves:?} using {} messages",
            out.messages_sent
        );
        assert_eq!(moves, vec![1; n]);
    }

    // And the batch-native form: the full scheduler battery × 16 seeds in
    // one call, fanned across worker threads, aggregated per kind. With a
    // 3–2 vote the asynchronous model *allows* the scheduler to decide
    // which single input arrives too late to count (that is the point of
    // the batteries) — but agreement must hold in every single run.
    let set = plan
        .battery(SchedulerKind::battery(n))
        .seeds(0..16)
        .run_batch();
    println!(
        "batch: {} runs across {} scheduler kinds; P(all play 1) per kind:",
        set.len(),
        set.kinds().len()
    );
    for (kind, dist) in set.kinds().iter().zip(set.distributions()) {
        println!("  {kind:?}: {:.2}", dist.prob(&vec![1; n]));
        for (profile, _) in dist.iter() {
            assert!(
                profile.iter().all(|&a| a == profile[0]),
                "agreement must hold in every run ({kind:?}: {profile:?})"
            );
        }
    }
    println!("majority mediator implemented with cheap talk — no trusted party involved");
}
