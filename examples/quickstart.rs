//! Quickstart: implement a majority-vote mediator with asynchronous cheap
//! talk (Theorem 4.1, `n > 4k + 4t`).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mediator_talk::circuits::catalog;
use mediator_talk::core::{run_cheap_talk, CheapTalkSpec};
use mediator_talk::field::Fp;
use mediator_talk::sim::SchedulerKind;
use std::collections::BTreeMap;

fn main() {
    let n = 5;
    let (k, t) = (1, 0); // n = 5 > 4k + 4t = 4 ✓

    // The mediator everyone wants: "send me your bit, I'll tell you the
    // majority". With a trusted third party this is trivial; the point of
    // the paper is doing it with *nothing but player-to-player messages*.
    let circuit = catalog::majority_circuit(n);
    println!(
        "mediator circuit: {} gates ({} multiplications, depth {})",
        circuit.size(),
        circuit.mul_count(),
        circuit.depth()
    );

    let spec = CheapTalkSpec::theorem_4_1(
        n,
        k,
        t,
        circuit,
        vec![vec![Fp::ZERO]; n], // default input for players that never show
        vec![0; n],              // default moves
    );

    let votes = [1u64, 0, 1, 1, 0];
    let inputs: Vec<Vec<Fp>> = votes.iter().map(|&b| vec![Fp::new(b)]).collect();
    println!("player votes: {votes:?} (majority = 1)");

    // Run the cheap-talk protocol under three qualitatively different
    // network schedulers — the outcome must not depend on the adversary's
    // choice of message timing.
    for kind in [
        SchedulerKind::Random,
        SchedulerKind::Fifo,
        SchedulerKind::Lifo,
    ] {
        let out = run_cheap_talk(&spec, &inputs, &BTreeMap::new(), &kind, 42, 2_000_000);
        let moves = out.resolve_default(&vec![0; n]);
        println!(
            "{kind:?}: all players moved {moves:?} using {} messages",
            out.messages_sent
        );
        assert_eq!(moves, vec![1; n]);
    }
    println!("majority mediator implemented with cheap talk — no trusted party involved");
}
