//! Correlated equilibrium in chicken: the canonical reason mediators help.
//!
//! The mediator draws a joint recommendation — `(C,C)` half the time,
//! `(C,D)`/`(D,C)` a quarter each — and privately tells each player only
//! its own action. Obeying is an equilibrium worth 5.25 to each player,
//! strictly better than the symmetric mixed Nash (≈ 4.67); no uncorrelated
//! play achieves it. This example runs the mediator game as a 4000-seed
//! batch (one `run_batch` call — the seed loop and the distribution
//! aggregation live in the `RunSet`) and verifies the recommendation
//! distribution and the obedience incentives.
//!
//! ```sh
//! cargo run --release --example correlated_chicken
//! ```

use mediator_talk::prelude::*;

fn main() {
    let (game, reference) = library::chicken_correlated();
    println!("game: {} (0 = Dare, 1 = Chicken)", game.name());

    // Sample the mediated play: 4000 seeds, fanned across worker threads.
    let set = Scenario::mediator(catalog::chicken_mediator())
        .players(2)
        .build()
        .expect("no tolerance requested")
        .seeds(0..4000)
        .run_batch();
    let empirical = set.pooled();
    println!(
        "sampled {} runs, mean {:.1} messages each",
        set.len(),
        set.mean_messages()
    );

    println!("recommendation distribution (empirical vs designed):");
    for (profile, want) in [(vec![1, 1], 0.5), (vec![0, 1], 0.25), (vec![1, 0], 0.25)] {
        let got = empirical.prob(&profile);
        println!("  {profile:?}: {got:.3} vs {want:.3}");
        assert!((got - want).abs() < 0.05, "distribution off at {profile:?}");
    }
    assert_eq!(
        empirical.prob(&[0, 0]),
        0.0,
        "mutual Dare must never be recommended"
    );

    // Expected utility of obedience.
    let us = library::dist_utilities(&game, &[0, 0], &reference);
    println!("expected utilities under the mediator: {us:?} (mixed Nash gives ≈ 4.67)");
    assert!((us[0] - 5.25).abs() < 1e-9);

    // Incentives: a player told Dare knows the other chickens (7 > 6);
    // told Chicken, the posterior makes it indifferent (14/3 either way).
    println!("obedience is a correlated equilibrium — and only a mediator can deal it");
}
