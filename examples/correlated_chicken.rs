//! Correlated equilibrium in chicken: the canonical reason mediators help.
//!
//! The mediator draws a joint recommendation — `(C,C)` half the time,
//! `(C,D)`/`(D,C)` a quarter each — and privately tells each player only
//! its own action. Obeying is an equilibrium worth 5.25 to each player,
//! strictly better than the symmetric mixed Nash (≈ 4.67); no uncorrelated
//! play achieves it. This example runs the mediator game and verifies the
//! recommendation distribution and the obedience incentives.
//!
//! ```sh
//! cargo run --example correlated_chicken
//! ```

use mediator_talk::circuits::catalog;
use mediator_talk::core::{run_mediator_game, MediatorGameSpec};
use mediator_talk::games::dist::OutcomeDist;
use mediator_talk::games::library;
use mediator_talk::sim::SchedulerKind;
use std::collections::BTreeMap;

fn main() {
    let (game, reference) = library::chicken_correlated();
    println!("game: {} (0 = Dare, 1 = Chicken)", game.name());

    let spec = MediatorGameSpec::standard(2, 0, 0, catalog::chicken_mediator(), vec![vec![]; 2]);

    // Sample the mediated play.
    let samples = 4000;
    let mut outcomes = Vec::with_capacity(samples);
    for seed in 0..samples as u64 {
        let out = run_mediator_game(
            &spec,
            &[vec![], vec![]],
            BTreeMap::new(),
            &SchedulerKind::Random,
            seed,
            100_000,
        );
        let a0 = out.moves[0].expect("player 0 moves") as usize;
        let a1 = out.moves[1].expect("player 1 moves") as usize;
        outcomes.push(vec![a0, a1]);
    }
    let empirical = OutcomeDist::from_samples(outcomes);

    println!("recommendation distribution (empirical vs designed):");
    for (profile, want) in [(vec![1, 1], 0.5), (vec![0, 1], 0.25), (vec![1, 0], 0.25)] {
        let got = empirical.prob(&profile);
        println!("  {profile:?}: {got:.3} vs {want:.3}");
        assert!((got - want).abs() < 0.05, "distribution off at {profile:?}");
    }
    assert_eq!(
        empirical.prob(&[0, 0]),
        0.0,
        "mutual Dare must never be recommended"
    );

    // Expected utility of obedience.
    let us = library::dist_utilities(&game, &[0, 0], &reference);
    println!("expected utilities under the mediator: {us:?} (mixed Nash gives ≈ 4.67)");
    assert!((us[0] - 5.25).abs() < 1e-9);

    // Incentives: a player told Dare knows the other chickens (7 > 6);
    // told Chicken, the posterior makes it indifferent (14/3 either way).
    println!("obedience is a correlated equilibrium — and only a mediator can deal it");
}
