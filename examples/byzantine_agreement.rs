//! Byzantine agreement as a game (the paper's introduction): with a
//! mediator the problem is trivial; the cheap-talk transform keeps it
//! solved when the mediator leaves — and tolerates malicious players.
//!
//! ```sh
//! cargo run --example byzantine_agreement
//! ```

use mediator_talk::prelude::*;

fn main() {
    let n = 5;
    let (k, t) = (0, 1); // one malicious player; n = 5 > 4t = 4 ✓
    let game = library::byzantine_agreement_game(n);
    println!("game: {}", game.name());

    let inputs_bits = [1u64, 1, 1, 0, 1];
    let inputs: Vec<Vec<Fp>> = inputs_bits.iter().map(|&b| vec![Fp::new(b)]).collect();
    println!("inputs: {inputs_bits:?}");

    // --- With the trusted mediator ---
    let med = Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(k, t)
        .inputs(inputs.clone())
        .seed(1)
        .max_steps(100_000)
        .build()
        .expect("n − k − t ≥ 1");
    let out = med.run();
    println!(
        "mediator game: moves {:?} with only {} messages",
        &out.moves[..n],
        out.messages_sent
    );

    // --- Without the mediator: cheap talk, one player actively lying ---
    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(k, t)
        .inputs(inputs)
        .deviant(
            3,
            Behavior {
                lie_in_opens: true,
                ..Behavior::default()
            },
        )
        .seed(7)
        .max_steps(4_000_000)
        .build()
        .expect("n = 5 > 4k+4t = 4");
    let out = plan.run();
    let moves = out.resolve_default(&vec![0; n]);
    println!(
        "cheap talk with a lying player 3: moves {moves:?} using {} messages",
        out.messages_sent
    );

    // The honest players still agree on the honest majority: the lies were
    // *corrected* by online error correction, not just detected.
    let honest: Vec<u64> = (0..n).filter(|&p| p != 3).map(|p| moves[p]).collect();
    assert!(honest.iter().all(|&m| m == honest[0]));
    println!("agreement + validity hold despite the byzantine player");

    // Utility view: unanimous majority pays 1 to everyone in the game.
    let types: Vec<usize> = inputs_bits.iter().map(|&b| b as usize).collect();
    let actions: Vec<usize> = moves.iter().map(|&m| m as usize).collect();
    let us = game.utilities(&types, &actions);
    println!("utilities: {us:?}");
}
