//! Punishment in the wills: the §6.4 counterexample, run end-to-end.
//!
//! The counterexample game has actions `{0, 1, ⊥}`: everyone playing `b`
//! (the mediator's coin) is worth 1.5 in expectation; mass-`⊥` is a
//! punishment worth 1.1. A **naive** mediator leaks `a + b·i (mod 2)` one
//! round before announcing `b` — and a rational pair of opposite parity
//! XORs its leaks, learns `b` early, and *deadlocks the game whenever
//! `b = 0`*, pocketing 1.1 instead of 1.0 (expected 1.55 > 1.5). The
//! minimally-informative mediator (Lemma 6.8) sends only the action, and
//! the same pair can no longer profit.
//!
//! Each variant is one `run_batch` seed sweep: the colluders are
//! registered as deviant *factories*, so every seed gets a fresh pair.
//!
//! ```sh
//! cargo run --release --example punishment_wills
//! ```

use mediator_talk::core::deviations::CounterexampleColluder;
use mediator_talk::prelude::*;

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn run_variant(n: usize, naive: bool, collude: bool, samples: u64) -> (f64, f64) {
    let (game, _, k) = library::counterexample_game(n);
    let circuit = if naive {
        catalog::counterexample_naive(n)
    } else {
        catalog::counterexample_minfo(n)
    };
    let mut builder = Scenario::mediator(circuit)
        .players(n)
        .tolerance(k, 0)
        .wills(vec![library::BOTTOM as u64; n]) // ⊥ in every will
        .resolve_defaults(vec![library::BOTTOM as u64; n]);
    if naive {
        builder = builder.naive_split();
    }
    if collude {
        // Players 0 and 1 have odd index difference: their leaks XOR
        // to b in the naive game.
        builder = builder
            .deviant(0, move || Box::new(CounterexampleColluder::new(n, 1)))
            .deviant(1, move || Box::new(CounterexampleColluder::new(n, 0)));
    }
    let set = builder
        .build()
        .expect("n − k ≥ 1")
        .seeds(0..samples)
        .run_batch();
    let (mut coalition_u, mut honest_u) = (Vec::new(), Vec::new());
    for out in set.outcomes() {
        // AH resolution with the ⊥ fallback is the set's built-in resolver.
        let actions = set.profile(out);
        let us = game.utilities(&vec![0; n], &actions);
        coalition_u.push((us[0] + us[1]) / 2.0);
        honest_u.push(us[n - 1]);
    }
    (mean(&coalition_u), mean(&honest_u))
}

fn main() {
    let n = 7;
    let samples = 300;
    let (_, mediated, k) = library::counterexample_game(n);
    let game = library::counterexample_game(n).0;
    let honest_value = library::dist_utilities(&game, &vec![0; n], &mediated)[0];
    println!("counterexample game, n = {n}, k = {k}");
    println!("equilibrium value (all follow the mediator): {honest_value}");
    println!("punishment value (mass ⊥): 1.1\n");

    let (base_naive, _) = run_variant(n, true, false, samples);
    println!("naive mediator, honest play:        coalition ≈ {base_naive:.3}");

    let (dev_naive, honest_naive) = run_variant(n, true, true, samples);
    println!(
        "naive mediator, colluding pair:     coalition ≈ {dev_naive:.3} (paper: 1.55), honest ≈ {honest_naive:.3}"
    );
    assert!(
        dev_naive > base_naive + 0.02,
        "the coalition must profit from the leak"
    );

    let (base_mi, _) = run_variant(n, false, false, samples);
    println!("min-info mediator, honest play:     coalition ≈ {base_mi:.3}");

    let (dev_mi, _) = run_variant(n, false, true, samples);
    println!("min-info mediator, colluding pair:  coalition ≈ {dev_mi:.3}");
    assert!(
        dev_mi <= base_mi + 0.05,
        "minimally-informative repair must remove the profit"
    );

    println!("\nLemma 6.8 in action: strip the mediator's unnecessary chatter and");
    println!("the deadlock-for-profit deviation disappears.");
}
