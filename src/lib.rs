//! `mediator-talk` — a full Rust reproduction of *"Implementing Mediators
//! with Asynchronous Cheap Talk"* (Abraham, Dolev, Geffner, Halpern;
//! PODC 2019, arXiv:1806.01214).
//!
//! A mediator makes hard coordination problems trivial; this system shows
//! *when and how `n` asynchronous players can simulate one with nothing but
//! cheap talk*, tolerating `k` rational deviators and `t` malicious players.
//! The facade re-exports the workspace crates:
//!
//! * [`field`] — `GF(2^61−1)`, polynomials, Reed–Solomon robust decoding;
//! * [`sim`] — the asynchronous environment/scheduler model of §2;
//! * [`games`] — Bayesian games and the (k,t)-robustness solution concepts;
//! * [`circuits`] — arithmetic-circuit mediators;
//! * [`bcast`] — reliable broadcast, binary agreement, common subset;
//! * [`vss`] — Shamir, online error correction, AVSS, detectable sharing;
//! * [`mpc`] — the robust (`n > 4f`) and ε (`n > 3f`) MPC engines;
//! * [`core`] — mediator games, the four cheap-talk transforms
//!   (Theorems 4.1/4.2/4.4/4.5), Lemma 6.8, the deviation library, the
//!   experiment machinery, and the lower-bound frontier atlas
//!   (DESIGN.md §13);
//! * [`net`] — the transport plane: versioned wire codec, in-memory and
//!   TCP-loopback transports, and the networked multi-session `Service`
//!   runtime over the `Session` seam (DESIGN.md §9);
//! * [`store`] — the persistent trace store: CRC-framed append-only run
//!   logs, budget-bounded compaction that never drops a verdict, and
//!   deterministic byte-identical replay of stored runs — including
//!   networked recordings, re-enacted without a transport (DESIGN.md §11).
//!
//! # Quickstart
//!
//! Experiments go through the [`prelude`]'s **Scenario API**: a validated
//! builder (`Scenario::cheap_talk(…)`, `Scenario::mediator(…)`), a
//! seed-sweep batch runner (`.battery(…).seeds(…).run_batch()` →
//! [`RunSet`](crate::prelude::RunSet)), and a steppable
//! [`Session`](crate::prelude::Session).
//!
//! ```
//! use mediator_talk::prelude::*;
//!
//! // Five players implement a majority-vote mediator with cheap talk,
//! // tolerating one rational deviator (Theorem 4.1: n = 5 > 4k+4t = 4 —
//! // the builder rejects anything below the threshold with a typed error).
//! let n = 5;
//! let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
//!     .players(n)
//!     .tolerance(1, 0)
//!     .inputs([1u64, 0, 1, 1, 0].iter().map(|&b| vec![Fp::new(b)]).collect())
//!     .build()
//!     .expect("threshold satisfied");
//! let out = plan.run_with(&SchedulerKind::Random, 7);
//! assert_eq!(out.resolve_default(&vec![0; n]), vec![1; n]);
//!
//! // The same plan fans out to a scheduler battery × seed grid, with
//! // outcome distributions aggregated per scheduler kind:
//! let set = plan.battery(SchedulerKind::battery(n)).seeds(0..8).run_batch();
//! assert_eq!(set.len(), SchedulerKind::battery(n).len() * 8);
//! ```

pub use mediator_bcast as bcast;
pub use mediator_circuits as circuits;
pub use mediator_core as core;
pub use mediator_field as field;
pub use mediator_games as games;
pub use mediator_mpc as mpc;
pub use mediator_net as net;
pub use mediator_sim as sim;
pub use mediator_store as store;
pub use mediator_vss as vss;

/// The batteries-included import surface: the Scenario builders, their
/// plans/run sets, the steppable session, and the vocabulary types they
/// speak (circuits catalog, field elements, scheduler kinds, outcomes).
pub mod prelude {
    pub use mediator_circuits::{catalog, Circuit};
    pub use mediator_core::adversary::{
        Conformance, ConformanceReport, ConformanceVerdict, Deviation, DeviationWitness,
        GossipColluder,
    };
    pub use mediator_core::deviations::Behavior;
    pub use mediator_core::frontier::{
        run_frontier_local, CellClass, CellResult, FrontierAtlas, FrontierCell, FrontierSpec,
        TheoremBand,
    };
    pub use mediator_core::implement::{compare_run_sets, ImplementationReport};
    pub use mediator_core::scenario::{
        Batch, CheapTalkPlan, DeviantFactory, MediatorPlan, Resolve, RunRecord, RunSet, Scenario,
        ScenarioError, SessionPlan, Theorem, DEFAULT_CHEAP_TALK_STARVATION_BOUND,
        DEFAULT_MEDIATOR_STARVATION_BOUND,
    };
    pub use mediator_core::{CheapTalkSpec, CtVariant, MediatorGameSpec};
    pub use mediator_field::Fp;
    pub use mediator_games::dist::OutcomeDist;
    pub use mediator_games::library;
    pub use mediator_net::{
        run_frontier_sharded, Client, DeliveryOrder, FrontierShardLog, MemTransport, NetError,
        NetPlan, OutcomeSummary, Service, ServiceConfig, SessionHandle, ShardConfig, ShardedSweep,
        TcpTransport, TransportKind,
    };
    pub use mediator_sim::{
        Outcome, RunMeta, SchedulerKind, Session, SessionStatus, TerminationKind, TraceSink,
    };
    pub use mediator_store::{
        replay_plan, FrontierRecipe, HeaderTemplate, PlanKind, ReplayError, ReplayReport,
        RunHeader, StoreSink, StoredRun, TraceStore,
    };
}
