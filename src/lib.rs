//! `mediator-talk` — a full Rust reproduction of *"Implementing Mediators
//! with Asynchronous Cheap Talk"* (Abraham, Dolev, Geffner, Halpern;
//! PODC 2019, arXiv:1806.01214).
//!
//! A mediator makes hard coordination problems trivial; this system shows
//! *when and how `n` asynchronous players can simulate one with nothing but
//! cheap talk*, tolerating `k` rational deviators and `t` malicious players.
//! The facade re-exports the workspace crates:
//!
//! * [`field`] — `GF(2^61−1)`, polynomials, Reed–Solomon robust decoding;
//! * [`sim`] — the asynchronous environment/scheduler model of §2;
//! * [`games`] — Bayesian games and the (k,t)-robustness solution concepts;
//! * [`circuits`] — arithmetic-circuit mediators;
//! * [`bcast`] — reliable broadcast, binary agreement, common subset;
//! * [`vss`] — Shamir, online error correction, AVSS, detectable sharing;
//! * [`mpc`] — the robust (`n > 4f`) and ε (`n > 3f`) MPC engines;
//! * [`core`] — mediator games, the four cheap-talk transforms
//!   (Theorems 4.1/4.2/4.4/4.5), Lemma 6.8, the deviation library and the
//!   experiment machinery.
//!
//! # Quickstart
//!
//! ```
//! use mediator_talk::core::{run_cheap_talk, CheapTalkSpec};
//! use mediator_talk::circuits::catalog;
//! use mediator_talk::field::Fp;
//! use mediator_talk::sim::SchedulerKind;
//! use std::collections::BTreeMap;
//!
//! // Five players implement a majority-vote mediator with cheap talk,
//! // tolerating one rational deviator (n > 4k+4t with k=1, t=0).
//! let n = 5;
//! let spec = CheapTalkSpec::theorem_4_1(
//!     n, 1, 0,
//!     catalog::majority_circuit(n),
//!     vec![vec![Fp::ZERO]; n],
//!     vec![0; n],
//! );
//! let inputs: Vec<Vec<Fp>> = [1u64, 0, 1, 1, 0].iter().map(|&b| vec![Fp::new(b)]).collect();
//! let out = run_cheap_talk(&spec, &inputs, &BTreeMap::new(), &SchedulerKind::Random, 7, 2_000_000);
//! assert_eq!(out.resolve_default(&vec![0; n]), vec![1; n]);
//! ```

pub use mediator_bcast as bcast;
pub use mediator_circuits as circuits;
pub use mediator_core as core;
pub use mediator_field as field;
pub use mediator_games as games;
pub use mediator_mpc as mpc;
pub use mediator_sim as sim;
pub use mediator_vss as vss;
