//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`criterion_group!`],
//! [`criterion_main!`] — backed by a plain wall-clock loop: warm up
//! briefly, time each iteration, report the **median** ns/iter (robust to
//! scheduler noise, unlike the mean). No plots or regression tracking; the
//! numbers are indicative, which is all an offline container can honestly
//! offer. The printed format is one line per benchmark:
//! `name ... <median> ns/iter (median of <iters> iters)`.
//!
//! Machine-readable output: set `CRITERION_SHIM_JSON=<path>` and every
//! benchmark appends one JSON line `{"name": …, "median_ns": …,
//! "iters": …}` to that file — the shape the BENCH.json tooling and CI
//! artifacts consume.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement (accepted, not tuned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
    /// Per-iteration samples in ns (capped; enough for a stable median).
    samples: Vec<u64>,
}

/// Cap on retained per-iteration samples; past it, timing still accrues
/// into the totals but the median rests on the first window.
const MAX_SAMPLES: usize = 65_536;

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target,
            samples: Vec::new(),
        }
    }

    fn record(&mut self, took: Duration) {
        self.elapsed += took;
        self.iters_done += 1;
        if self.samples.len() < MAX_SAMPLES {
            self.samples
                .push(took.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    fn median_ns(&mut self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mid = self.samples.len() / 2;
        let (_, m, _) = self.samples.select_nth_unstable(mid);
        Some(*m)
    }

    /// Times repeated calls of `routine` until the sampling budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (fills caches, resolves lazy init).
        let _ = routine();
        loop {
            let start = Instant::now();
            let _ = std::hint::black_box(routine());
            self.record(start.elapsed());
            if self.elapsed >= self.target || self.iters_done >= 1_000_000 {
                break;
            }
        }
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        let _ = routine(setup());
        loop {
            let input = setup();
            let start = Instant::now();
            let _ = std::hint::black_box(routine(input));
            self.record(start.elapsed());
            if self.elapsed >= self.target || self.iters_done >= 1_000_000 {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness handle.
pub struct Criterion {
    per_bench: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep whole-suite runtime modest: the shim is for smoke-detection
        // and rough comparisons, not publication-grade statistics.
        let ms = std::env::var("CRITERION_SHIM_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        Criterion {
            per_bench: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Creates a harness with the default sampling budget.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) {
        let mut b = Bencher::new(self.per_bench);
        f(&mut b);
        let Some(median) = b.median_ns() else {
            println!("{name} ... no iterations run");
            return;
        };
        println!(
            "{name} ... {median} ns/iter (median of {} iters)",
            b.iters_done
        );
        if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
            if let Err(e) = append_json_line(&path, name, median, b.iters_done) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            }
        }
    }
}

/// Appends one machine-readable result line to `path` (JSON lines format).
fn append_json_line(path: &str, name: &str, median_ns: u64, iters: u64) -> std::io::Result<()> {
    use std::io::Write as _;
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        f,
        "{{\"name\": \"{escaped}\", \"median_ns\": {median_ns}, \"iters\": {iters}}}"
    )
}

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_runs_and_reports() {
        let mut c = Criterion {
            per_bench: Duration::from_millis(5),
        };
        let mut count = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 1);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion {
            per_bench: Duration::from_millis(5),
        };
        let mut setups = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert!(setups > 1);
    }
}
