//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`any`], range strategies, [`collection::vec`], and
//! [`Strategy::prop_map`]. Cases are generated from a deterministic
//! per-test seed (derived from the test name), so failures reproduce across
//! runs. **No shrinking**: a failing case reports its inputs via the
//! `Debug`-formatted panic message instead of minimizing them.
//!
//! Case count defaults to 64 and can be overridden with the standard
//! `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Returns the number of cases each property runs.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Derives a deterministic per-test RNG from the test's name.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator. Mirrors proptest's `Strategy`, minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::Rng;
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Defines property tests.
///
/// Each function becomes a `#[test]` that draws [`case_count`] input tuples
/// from the given strategies and runs the body once per tuple. On failure the
/// generated inputs are included in the panic message.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::test_rng(stringify!($name));
                for __proptest_case in 0..$crate::case_count() {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __proptest_rng);)*
                    let __ctx = format!(
                        concat!("[proptest {} case {}]", $(" ", stringify!($arg), "={:?}",)*),
                        stringify!($name), __proptest_case, $(&$arg,)*
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(e) = __result {
                        eprintln!("{__ctx}");
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// `assert!` under a name the proptest API uses.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the proptest API uses.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the proptest API uses.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 0u64..2, c in 1usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 2);
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn map_and_vec_compose(
            xs in crate::collection::vec(any::<u64>().prop_map(|x| x % 7), 2..5),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 7));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::test_rng("x");
        let mut r2 = crate::test_rng("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
