//! Offline stand-in for `serde`.
//!
//! The container building this workspace has no crates.io access, so this
//! crate keeps the `#[derive(Serialize, Deserialize)]` annotations on the
//! protocol types compiling. The derive macros expand to nothing (see
//! `serde_derive`); the marker traits below exist so code can also write
//! `T: Serialize` bounds if it ever needs to. Swapping in the real serde is
//! a one-line manifest change per crate.

pub use serde_derive::{Deserialize, Serialize};

// The traits share their names with the derive macros above — legal, since
// macros and traits live in different namespaces, and exactly how the real
// serde crate arranges its `derive` feature.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types
/// so `T: Serialize` bounds compile.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types so `T: Deserialize` bounds compile (no `'de` lifetime — nothing
/// here deserializes).
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
