//! No-op derive macros backing the offline `serde` shim.
//!
//! The repo derives `Serialize`/`Deserialize` on its wire and outcome types
//! so they are ready for persistence, but nothing in the workspace actually
//! serializes yet (no `serde_json`, no format crate is available offline).
//! These derives therefore expand to nothing: the attribute is accepted,
//! the types stay annotated, and the day a real serde is wired in the
//! annotations light up without touching the protocol crates.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
