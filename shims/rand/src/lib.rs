//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the subset of the rand 0.8 API the repo actually uses: [`rngs::StdRng`]
//! (a deterministic xoshiro256++ generator), [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`thread_rng`]. Determinism is the point: every simulator run is keyed by
//! an explicit seed, so a statistically solid, reproducible generator is all
//! the repo needs — nothing here is cryptographic.

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of raw random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: seed expander and statistical finalizer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// Implemented via a generic-over-`T` [`SampleRange`] impl (one impl for all
/// `Range<T>`) so that integer-literal ranges unify with the expected output
/// type during inference, exactly like the real rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                // Modulo bias is negligible for the span sizes used here and
                // irrelevant to correctness (the simulator only needs
                // determinism and rough uniformity).
                let v = (rng.next_u64() as u128) % span;
                ((lo as i128).wrapping_add(v as i128)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t; // full-width domain
                }
                let v = (rng.next_u64() as u128) % span;
                ((lo as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample from empty range");
        // unit in [0, 1): 53 random mantissa bits.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "cannot sample from empty range");
        if lo == hi {
            return lo;
        }
        // unit in [0, 1] (denominator one less than the numerator's range).
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "cannot sample from empty range");
        if lo == hi {
            return lo;
        }
        let unit = (rng.next_u64() >> 40) as f32 / ((1u64 << 24) - 1) as f32;
        lo + unit * (hi - lo)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub mod distributions {
    //! The standard distribution: full-domain uniform sampling per type.

    use super::RngCore;

    /// Maps raw generator output to values of a type.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The distribution used by [`Rng::gen`](super::Rng::gen).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not
    /// cryptographic — the repo only ever uses it as a seeded, reproducible
    /// source of schedule and protocol randomness.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The generator behind [`thread_rng`](super::thread_rng).
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a process-locally seeded generator.
///
/// Unlike the real `rand`, the seed is a per-call counter mixed with the
/// process id rather than OS entropy — reproducible runs are a feature in
/// this workspace, not a bug.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let seed = n ^ (std::process::id() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(seed))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u64..2);
            assert!(y < 2);
            let z = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
            let f = r.gen_range(-10.0f64..10.0);
            assert!((-10.0..10.0).contains(&f));
        }
    }

    #[test]
    fn unsized_rng_usable_through_references() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        let _ = takes_unsized(&mut r);
        let dynrng: &mut dyn super::RngCore = &mut r;
        let _ = takes_unsized(dynrng);
    }

    #[test]
    fn bool_distribution_roughly_balanced() {
        let mut r = StdRng::seed_from_u64(2);
        let ones = (0..1000).filter(|_| r.gen::<bool>()).count();
        assert!((350..=650).contains(&ones), "biased: {ones}/1000");
    }
}
