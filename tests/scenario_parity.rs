//! Parity suite: the deprecated free-function wrappers and the `Scenario`
//! builder produce **byte-identical** `Outcome`s for fixed
//! `(scheduler, seed)` pairs across the battery — pinned through
//! `Outcome::fingerprint()`, which hashes the full message pattern, moves,
//! wills, halted flags, counters and termination.
//!
//! Also pins: session-vs-closed-loop parity, batch-vs-individual parity,
//! and thread-count invariance of `run_batch`.

use mediator_talk::core::deviations::SilentProcess;
use mediator_talk::core::mediator::{run_mediator_game, run_mediator_game_relaxed};
use mediator_talk::core::run_cheap_talk;
use mediator_talk::prelude::*;
use mediator_talk::sim::Process;
use std::collections::BTreeMap;

const N: usize = 5;
const SEEDS: std::ops::Range<u64> = 0..3;

fn ct_plan(behaviors: &[(usize, Behavior)]) -> CheapTalkPlan {
    let mut b = Scenario::cheap_talk(catalog::majority_circuit(N))
        .players(N)
        .tolerance(1, 0)
        .inputs(
            [1u64, 0, 1, 1, 0]
                .iter()
                .map(|&v| vec![Fp::new(v)])
                .collect(),
        )
        .max_steps(2_000_000);
    for (p, beh) in behaviors {
        b = b.deviant(*p, beh.clone());
    }
    b.build().expect("5 > 4")
}

fn legacy_spec() -> CheapTalkSpec {
    CheapTalkSpec::theorem_4_1(
        N,
        1,
        0,
        catalog::majority_circuit(N),
        vec![vec![Fp::ZERO]; N],
        vec![0; N],
    )
}

#[test]
fn cheap_talk_wrapper_matches_builder_across_battery() {
    let spec = legacy_spec();
    let inputs: Vec<Vec<Fp>> = [1u64, 0, 1, 1, 0]
        .iter()
        .map(|&v| vec![Fp::new(v)])
        .collect();
    let plan = ct_plan(&[]);
    for kind in SchedulerKind::battery(N) {
        for seed in SEEDS {
            let legacy = run_cheap_talk(&spec, &inputs, &BTreeMap::new(), &kind, seed, 2_000_000);
            let built = plan.run_with(&kind, seed);
            assert_eq!(
                legacy.fingerprint(),
                built.fingerprint(),
                "{kind:?} seed {seed}"
            );
        }
    }
}

#[test]
fn cheap_talk_wrapper_matches_builder_with_deviants() {
    let spec = legacy_spec();
    let inputs: Vec<Vec<Fp>> = [1u64, 0, 1, 1, 0]
        .iter()
        .map(|&v| vec![Fp::new(v)])
        .collect();
    let deviation = Behavior {
        lie_in_opens: true,
        ..Behavior::default()
    };
    let mut behaviors = BTreeMap::new();
    behaviors.insert(2usize, deviation.clone());
    let plan = ct_plan(&[(2, deviation)]);
    for kind in [SchedulerKind::Random, SchedulerKind::Lifo] {
        for seed in SEEDS {
            let legacy = run_cheap_talk(&spec, &inputs, &behaviors, &kind, seed, 2_000_000);
            let built = plan.run_with(&kind, seed);
            assert_eq!(
                legacy.fingerprint(),
                built.fingerprint(),
                "{kind:?} seed {seed}"
            );
        }
    }
}

fn med_plan() -> MediatorPlan {
    Scenario::mediator(catalog::majority_circuit(N))
        .players(N)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; N])
        .max_steps(100_000)
        .build()
        .expect("n − k − t ≥ 1")
}

fn med_spec() -> MediatorGameSpec {
    MediatorGameSpec::standard(
        N,
        1,
        0,
        catalog::majority_circuit(N),
        vec![vec![Fp::ZERO]; N],
    )
}

#[test]
fn mediator_wrapper_matches_builder_across_battery() {
    let spec = med_spec();
    let inputs = vec![vec![Fp::ONE]; N];
    let plan = med_plan();
    for kind in SchedulerKind::battery(N) {
        for seed in SEEDS {
            let legacy = run_mediator_game(&spec, &inputs, BTreeMap::new(), &kind, seed, 100_000);
            let built = plan.run_with(&kind, seed);
            assert_eq!(
                legacy.fingerprint(),
                built.fingerprint(),
                "{kind:?} seed {seed}"
            );
        }
    }
}

#[test]
fn mediator_wrapper_matches_builder_with_deviant_process() {
    let spec = med_spec();
    let inputs = vec![vec![Fp::ONE]; N];
    let plan = med_plan().with_deviant(2, || Box::new(SilentProcess));
    for seed in SEEDS {
        let mut deviants: BTreeMap<usize, Box<dyn Process<mediator_talk::core::MedMsg>>> =
            BTreeMap::new();
        deviants.insert(2, Box::new(SilentProcess));
        let legacy = run_mediator_game(
            &spec,
            &inputs,
            deviants,
            &SchedulerKind::Random,
            seed,
            100_000,
        );
        let built = plan.run_with(&SchedulerKind::Random, seed);
        assert_eq!(legacy.fingerprint(), built.fingerprint(), "seed {seed}");
    }
}

#[test]
fn relaxed_wrapper_matches_builder() {
    let mut spec = med_spec();
    spec.wills = Some(vec![7; N]);
    let inputs = vec![vec![Fp::ONE]; N];
    let plan = Scenario::mediator(catalog::majority_circuit(N))
        .players(N)
        .tolerance(1, 0)
        .inputs(inputs.clone())
        .wills(vec![7; N])
        .max_steps(100_000)
        .build()
        .expect("n − k − t ≥ 1");
    for seed in SEEDS {
        let drop_after = N as u64 + 1;
        let legacy =
            run_mediator_game_relaxed(&spec, &inputs, BTreeMap::new(), drop_after, seed, 100_000);
        let built = plan.run_relaxed(drop_after, seed);
        assert_eq!(legacy.fingerprint(), built.fingerprint(), "seed {seed}");
    }
}

#[test]
fn session_matches_closed_loop_for_both_game_kinds() {
    let plan = ct_plan(&[]);
    for kind in [SchedulerKind::Random, SchedulerKind::Fifo] {
        let closed = plan.run_with(&kind, 1);
        let open = plan.session_with(&kind, 1).finish();
        assert_eq!(
            open.fingerprint(),
            closed.fingerprint(),
            "cheap talk {kind:?}"
        );
    }
    let plan = med_plan();
    for kind in [SchedulerKind::Random, SchedulerKind::Lifo] {
        let closed = plan.run_with(&kind, 1);
        let open = plan.session_with(&kind, 1).finish();
        assert_eq!(
            open.fingerprint(),
            closed.fingerprint(),
            "mediator {kind:?}"
        );
    }
}

#[test]
fn batch_matches_individual_runs_and_is_thread_invariant() {
    let plan = ct_plan(&[]);
    let kinds = vec![SchedulerKind::Random, SchedulerKind::Lifo];
    let sequential = plan
        .battery(kinds.clone())
        .seeds(SEEDS)
        .threads(1)
        .run_batch();
    let parallel = plan
        .battery(kinds.clone())
        .seeds(SEEDS)
        .threads(4)
        .run_batch();
    assert_eq!(sequential.len(), kinds.len() * SEEDS.count());
    for (s, p) in sequential.runs().iter().zip(parallel.runs()) {
        assert_eq!(s.kind, p.kind);
        assert_eq!(s.seed, p.seed);
        assert_eq!(
            s.outcome.fingerprint(),
            p.outcome.fingerprint(),
            "{:?} seed {}",
            s.kind,
            s.seed
        );
        let individual = plan.run_with(&s.kind, s.seed);
        assert_eq!(
            s.outcome.fingerprint(),
            individual.fingerprint(),
            "batch cell must equal a lone run ({:?} seed {})",
            s.kind,
            s.seed
        );
    }
}

#[test]
fn run_machines_wrapper_matches_machines_builder() {
    use mediator_talk::bcast::RbcPeer;
    use mediator_talk::sim::{run_machines, Machines};
    let mk = || -> Vec<RbcPeer<u64>> {
        (0..4)
            .map(|me| RbcPeer::new(4, 1, 0, me, (me == 0).then_some(42)))
            .collect()
    };
    for seed in SEEDS {
        let (legacy, legacy_out) = run_machines(
            mk(),
            Vec::new(),
            SchedulerKind::Random.build().as_mut(),
            seed,
            100_000,
        );
        let (built, built_out) =
            Machines::new(mk()).run(SchedulerKind::Random.build().as_mut(), seed, 100_000);
        assert_eq!(legacy.fingerprint(), built.fingerprint(), "seed {seed}");
        assert_eq!(legacy_out, built_out);
        // And the steppable variant drains to the same outcome.
        let (session, outputs) =
            Machines::new(mk()).session(SchedulerKind::Random.build(), seed, 100_000);
        let stepped = session.finish();
        assert_eq!(legacy.fingerprint(), stepped.fingerprint(), "seed {seed}");
        assert_eq!(outputs.take(), legacy_out);
    }
}
