//! Integration: the equilibrium conformance harness (adversary plane).
//!
//! Two directions, both demanded by the paper's theorems:
//!
//! * at paper-valid `(n, k, t)` the generated coalition-strategy battery
//!   must find **no** deviation gaining more than ε — the harness reports
//!   ε-k-resilience with confidence intervals;
//! * below the bounds (the §6.4 configuration: `n = 7 ≤ 4k + 4t = 8`
//!   violates Theorem 4.1's threshold, and the naive two-round mediator is
//!   exactly the construction the paper shows insufficient there) the
//!   harness must *find* the profitable deviation and hand back a concrete,
//!   replayable witness.

use mediator_talk::games::library;
use mediator_talk::prelude::*;

const BOT: u64 = library::BOTTOM as u64;

fn naive_counterexample_plan(n: usize, k: usize) -> MediatorPlan {
    Scenario::mediator(catalog::counterexample_naive(n))
        .players(n)
        .tolerance(k, 0)
        .naive_split()
        .wills(vec![BOT; n])
        .resolve_defaults(vec![BOT; n])
        .build()
        .expect("n − k ≥ 1")
}

fn min_info_plan(n: usize, k: usize) -> MediatorPlan {
    Scenario::mediator(catalog::counterexample_minfo(n))
        .players(n)
        .tolerance(k, 0)
        .wills(vec![BOT; n])
        .resolve_defaults(vec![BOT; n])
        .build()
        .expect("n − k ≥ 1")
}

#[test]
fn cheap_talk_at_valid_n_is_eps_k_resilient() {
    // Theorem 4.1 working point: n = 5 > 4k + 4t = 4. The generated
    // strategy battery (message-level drops, delays, equivocation,
    // selective silence, aborts, input/opening lies, refusals) must not
    // let any singleton coalition gain more than ε in the BA game.
    let n = 5;
    let game = library::byzantine_agreement_game(n);
    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("5 > 4");
    // Two singleton coalitions keep the debug-mode runtime modest; the
    // mediator-game tests below sweep the full coalition generator, and
    // the CI smoke job runs the wider battery in release mode.
    let report = plan.conformance(
        &game,
        &vec![1usize; n],
        &Conformance::new(0.05, 1, 0)
            .battery(vec![SchedulerKind::Random])
            .seeds(3)
            .coalitions(vec![vec![1], vec![3]]),
    );
    assert!(
        report.is_resilient(),
        "expected resilient, got {:?}",
        report.verdict
    );
    // The baseline carries intervals: unanimous honest play pays exactly 1.
    for ci in &report.baseline {
        assert!((ci.mean - 1.0).abs() < 1e-9);
        assert!(ci.width() < 1e-9, "honest play is deterministic here");
    }
    // Every generated strategy ran for both coalitions.
    assert!(
        report.cells.len() >= 2 * 9,
        "sweep too small: {}",
        report.cells.len()
    );
    assert!(report.max_gain() <= 0.05);
    match report.verdict {
        ConformanceVerdict::Resilient {
            max_gain_hi,
            max_harm_hi,
        } => {
            assert!(max_gain_hi <= 0.05, "gain bound {max_gain_hi}");
            // Not-moving deviations DO harm in the BA game (unanimity
            // breaks); the bound records it rather than hiding it.
            assert!(max_harm_hi >= 0.0);
        }
        ref v => panic!("unexpected verdict {v:?}"),
    }
}

#[test]
fn naive_mediator_below_threshold_yields_a_generated_witness() {
    // §6.4 at n = 7, k = 2 (n ≤ 4k: below Theorem 4.1's bound). The
    // harness generates the collusion-rule battery and must rediscover the
    // paper's attack: the opposite-parity pair {0, 1} deadlocking when the
    // combined leak bit is 0.
    let n = 7;
    let (game, _, k) = library::counterexample_game(n);
    assert_eq!(k, 2);
    assert!(n <= 4 * k, "the configuration is sub-threshold for 4.1");
    let plan = naive_counterexample_plan(n, k);
    let report = plan.conformance(
        &game,
        &vec![0usize; n],
        &Conformance::new(0.01, k, 0)
            .battery(vec![SchedulerKind::Random])
            .seeds(48)
            .coalitions(vec![vec![0], vec![0, 1]])
            .deadlock_action(BOT),
    );
    let w = report
        .witness()
        .expect("a profitable deviation must be found");
    assert_eq!(w.strategy, "deadlock-if-bit=0", "the paper's rule");
    assert_eq!(w.coalition, vec![0, 1], "the opposite-parity pair");
    // The paper's margin: +0.05 in expectation (0.1 on the b = 0 half).
    assert!(
        w.gain.mean > 0.02 && w.gain.mean < 0.08,
        "gain {:?}",
        w.gain
    );
    assert!(w.gain.lo > 0.01, "statistically above ε: {:?}", w.gain);
    // The witness replays: its grid cell shows the coalition turning the
    // all-zeros outcome into the all-⊥ punishment outcome.
    assert_eq!(w.deviant_profile, vec![library::BOTTOM; n]);
    assert_eq!(w.baseline_profile, vec![0; n]);
    // Replay the witness run for real: same scheduler kind, same seed.
    let replayed = plan.run_with(&w.kind, w.seed);
    let honest_profile: Vec<usize> = replayed.resolve_ah(&vec![BOT; n + 1])[..n]
        .iter()
        .map(|&a| a as usize)
        .collect();
    assert_eq!(honest_profile, w.baseline_profile);
}

#[test]
fn min_info_mediator_passes_the_same_sweep() {
    // The paper's fix: the minimally-informative mediator leaks nothing
    // before STOP, so the identical generated sweep finds no profit.
    let n = 7;
    let (game, _, k) = library::counterexample_game(n);
    let plan = min_info_plan(n, k);
    let report = plan.conformance(
        &game,
        &vec![0usize; n],
        &Conformance::new(0.01, k, 0)
            .battery(vec![SchedulerKind::Random])
            .seeds(48)
            .coalitions(vec![vec![0], vec![0, 1]])
            .deadlock_action(BOT),
    );
    assert!(
        report.is_resilient(),
        "min-info mediator must be resilient, got {:?}",
        report.verdict
    );
    assert!(report.max_gain() <= 1e-9, "no strategy profits");
}

#[test]
fn conformance_report_renders_json() {
    let n = 7;
    let (game, _, k) = library::counterexample_game(n);
    let plan = naive_counterexample_plan(n, k);
    let report = plan.conformance(
        &game,
        &vec![0usize; n],
        &Conformance::new(0.01, k, 0)
            .battery(vec![SchedulerKind::Random])
            .seeds(16)
            .coalitions(vec![vec![0, 1]])
            .deadlock_action(BOT),
    );
    let json = report.to_json();
    assert!(json.contains("\"verdict\""));
    assert!(json.contains("\"violated\""));
    assert!(json.contains("deadlock-if-bit=0"));
    assert!(json.contains("\"baseline\""));
    assert!(json.contains("\"cells\""));
    // Crude structural sanity: balanced braces/brackets.
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON"
    );
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
