//! Integration: the resilience thresholds of Theorems 4.1–4.5, end to end.

use mediator_talk::circuits::catalog;
use mediator_talk::core::deviations::Behavior;
use mediator_talk::core::{run_cheap_talk, CheapTalkSpec};
use mediator_talk::field::Fp;
use mediator_talk::sim::SchedulerKind;
use std::collections::BTreeMap;

fn ones(n: usize) -> Vec<Vec<Fp>> {
    vec![vec![Fp::ONE]; n]
}

#[test]
fn theorem_4_1_exact_threshold_accepted_and_below_rejected() {
    for f in 1..=2usize {
        // n = 4f + 1 accepted...
        let spec = CheapTalkSpec::theorem_4_1(
            4 * f + 1,
            f,
            0,
            catalog::majority_circuit(4 * f + 1),
            vec![vec![Fp::ZERO]; 4 * f + 1],
            vec![0; 4 * f + 1],
        );
        assert_eq!(spec.f(), f);
        spec.mpc_config().validate(spec.circuit.inputs_per_player());
        // ... n = 4f rejected (the OEC liveness bound fails).
        let spec_low = CheapTalkSpec::theorem_4_1(
            4 * f,
            f,
            0,
            catalog::majority_circuit(4 * f),
            vec![vec![Fp::ZERO]; 4 * f],
            vec![0; 4 * f],
        );
        let res = std::panic::catch_unwind(|| {
            spec_low
                .mpc_config()
                .validate(spec_low.circuit.inputs_per_player())
        });
        assert!(res.is_err(), "n = 4f must be rejected (f = {f})");
    }
}

#[test]
fn theorem_4_1_tolerates_f_mixed_faults_at_threshold() {
    // n = 4f+1 with f = k+t = 2: one silent + one lying player.
    let n = 9;
    let spec = CheapTalkSpec::theorem_4_1(
        n,
        1,
        1,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![0; n],
    );
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        0usize,
        Behavior {
            silent: true,
            ..Behavior::default()
        },
    );
    behaviors.insert(
        1usize,
        Behavior {
            lie_in_opens: true,
            ..Behavior::default()
        },
    );
    let out = run_cheap_talk(
        &spec,
        &ones(n),
        &behaviors,
        &SchedulerKind::Random,
        5,
        20_000_000,
    );
    for p in 2..n {
        assert_eq!(out.moves[p], Some(1), "player {p}");
    }
}

#[test]
fn theorem_4_2_threshold_n_3f_plus_1_runs() {
    let n = 4; // f = 1
    let spec = CheapTalkSpec::theorem_4_2(
        n,
        0,
        1,
        2,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![0; n],
    );
    let out = run_cheap_talk(
        &spec,
        &ones(n),
        &BTreeMap::new(),
        &SchedulerKind::Random,
        9,
        8_000_000,
    );
    assert_eq!(out.resolve_default(&vec![0; n]), vec![1; n]);
}

#[test]
fn theorem_4_4_crash_cannot_split_honest_players() {
    let n = 6;
    let spec = CheapTalkSpec::theorem_4_4(
        n,
        1,
        0,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![5; n],
        vec![0; n],
    );
    for seed in 0..8u64 {
        let mut behaviors = BTreeMap::new();
        behaviors.insert(
            2usize,
            Behavior {
                crash_after_sends: Some(25 + 10 * seed),
                ..Behavior::default()
            },
        );
        let out = run_cheap_talk(
            &spec,
            &ones(n),
            &behaviors,
            &SchedulerKind::Random,
            seed,
            8_000_000,
        );
        let honest: Vec<bool> = (0..n)
            .filter(|&p| p != 2)
            .map(|p| out.moves[p].is_some())
            .collect();
        assert!(
            honest.iter().all(|&b| b) || honest.iter().all(|&b| !b),
            "cotermination violated at seed {seed}: {honest:?}"
        );
    }
}

#[test]
fn theorem_4_5_runs_at_2k_3t_plus_1() {
    let (k, t) = (1usize, 1usize);
    let n = 2 * k + 3 * t + 1; // 6
    let spec = CheapTalkSpec::theorem_4_5(
        n,
        k,
        t,
        2,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![5; n],
        vec![0; n],
    );
    let out = run_cheap_talk(
        &spec,
        &ones(n),
        &BTreeMap::new(),
        &SchedulerKind::Random,
        11,
        8_000_000,
    );
    let moves = out.resolve_default(&vec![0; n]);
    assert_eq!(moves, vec![1; n]);
}

#[test]
fn combined_adversary_deviator_plus_colluding_scheduler() {
    // Proposition 6.2: the malicious players and the environment may be
    // treated as one coordinated adversary. Pair every deviation in the
    // battery with the scheduler that most favours it (starving the honest
    // player the deviator targets): the robust protocol must still deliver
    // the right outcome to everyone who moves.
    let n = 5;
    let spec = CheapTalkSpec::theorem_4_1(
        n,
        1,
        0,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![0; n],
    );
    let inputs = ones(n);
    for (deviator, victim) in [(0usize, 1usize), (2, 3)] {
        for behavior in [
            Behavior {
                silent: true,
                ..Behavior::default()
            },
            Behavior {
                lie_in_opens: true,
                ..Behavior::default()
            },
        ] {
            let mut behaviors = BTreeMap::new();
            behaviors.insert(deviator, behavior);
            let kind = SchedulerKind::TargetedDelay(vec![victim]);
            let out = run_cheap_talk(&spec, &inputs, &behaviors, &kind, 13, 20_000_000);
            for p in 0..n {
                if p != deviator {
                    assert_eq!(
                        out.moves[p],
                        Some(1),
                        "player {p} (deviator {deviator}, starved {victim})"
                    );
                }
            }
        }
    }
}

#[test]
fn adversarial_schedulers_do_not_change_the_robust_outcome() {
    let n = 5;
    let spec = CheapTalkSpec::theorem_4_1(
        n,
        1,
        0,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![0; n],
    );
    for kind in SchedulerKind::battery(n) {
        let out = run_cheap_talk(&spec, &ones(n), &BTreeMap::new(), &kind, 3, 20_000_000);
        assert_eq!(
            out.resolve_default(&vec![0; n]),
            vec![1; n],
            "scheduler {kind:?}"
        );
    }
}
