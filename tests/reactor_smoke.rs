//! Tier-1 smoke for the reactor service: 128 concurrent sessions on the
//! in-memory transport, every one of them driven by the single reactor
//! thread, with one `bulk_relay` connection carrying every player of
//! every session. Small enough for a debug-build test run; the release
//! benches (`service_1024sessions`, `service_4096sessions_mem`) scale
//! the same shape to thousands.

use mediator_talk::net::{bulk_relay, MemTransport, Service};
use mediator_talk::sim::{Ctx, Process, SchedulerKind, Session, TerminationKind, World};

/// A three-process echo clique: the leader opens with one message per
/// process; everyone answers the first message with a move and halts.
struct Echoer {
    n: usize,
    leader: bool,
}

impl Process<u64> for Echoer {
    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        if self.leader {
            for d in 0..self.n {
                ctx.send(d, 40 + d as u64);
            }
        }
    }
    fn on_message(&mut self, _src: usize, msg: u64, ctx: &mut Ctx<u64>) {
        ctx.make_move(msg);
        ctx.halt();
    }
}

fn echo_session(n: usize, seed: u64) -> Session<u64> {
    let procs: Vec<Box<dyn Process<u64>>> = (0..n)
        .map(|p| Box::new(Echoer { n, leader: p == 0 }) as Box<dyn Process<u64>>)
        .collect();
    Session::new(World::new(procs, seed), SchedulerKind::Fifo.build(), 10_000)
}

#[test]
fn reactor_hosts_128_sessions_on_one_thread() {
    const SESSIONS: u64 = 128;
    const N: usize = 3;

    let hub = MemTransport::new();
    let service = Service::<u64>::start(Box::new(hub.listener()));
    let handles: Vec<_> = (0..SESSIONS)
        .map(|sid| service.host(sid, N, move || echo_session(N, sid)))
        .collect();

    // One connection, one client thread, relaying for all 384 players.
    let attaches: Vec<_> = (0..SESSIONS)
        .flat_map(|sid| (0..N).map(move |player| (sid, player)))
        .collect();
    let (tx, rx) = hub.connect_raw();
    let relay = std::thread::spawn(move || {
        bulk_relay(rx, tx, &attaches, SESSIONS as usize).expect("bulk relay")
    });

    for handle in handles {
        let sid = handle.id();
        let outcome = handle
            .outcome()
            .unwrap_or_else(|e| panic!("session {sid}: {e}"));
        assert_eq!(outcome.termination, TerminationKind::Quiescent);
        assert_eq!(
            outcome.moves,
            (0..N).map(|d| Some(40 + d as u64)).collect::<Vec<_>>(),
            "session {sid}: echoed moves"
        );
    }
    let summaries = relay.join().expect("relay thread");
    assert_eq!(summaries.len(), SESSIONS as usize);
    assert!(summaries
        .iter()
        .all(|(_, s)| s.termination == TerminationKind::Quiescent));
    service.shutdown();
}
