//! Tier-1 smoke for the transport plane: the networked run agrees with
//! the in-process run on outcome kinds (the full suite lives in
//! `crates/net/tests/parity.rs`; see DESIGN.md §9 for why parity is
//! outcome-kind agreement rather than byte-identical traces).

use mediator_talk::prelude::*;

fn plan(n: usize) -> CheapTalkPlan {
    Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("n = 5 > 4k+4t = 4")
}

#[test]
fn networked_run_agrees_with_in_process_run() {
    let n = 5;
    let plan = plan(n);
    let local = plan.run_with(&SchedulerKind::Random, 3);
    assert_eq!(local.termination, TerminationKind::Quiescent);

    let networked = plan
        .run_over_mem(&SchedulerKind::Random, 3)
        .expect("networked run completes");
    assert_eq!(networked.termination, local.termination);
    assert_eq!(
        networked.resolve_default(&vec![0; n]),
        local.resolve_default(&vec![0; n]),
        "Theorem 4.1: delivery order (the network) cannot move the outcome"
    );
}

#[test]
fn tcp_loopback_run_agrees_with_in_process_run() {
    let n = 5;
    let plan = plan(n);
    let local = plan.run_with(&SchedulerKind::Fifo, 11);
    let networked = plan
        .run_over_tcp(&SchedulerKind::Fifo, 11)
        .expect("tcp loopback run completes");
    assert_eq!(networked.termination, local.termination);
    assert_eq!(
        networked.resolve_default(&vec![0; n]),
        local.resolve_default(&vec![0; n])
    );
}
