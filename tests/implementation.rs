//! Integration: implementation checking — the cheap-talk game induces the
//! same outcome distributions as the mediator game over the scheduler
//! battery (§2's definition, estimated).

use mediator_talk::circuits::catalog;
use mediator_talk::core::mediator::{run_mediator_game, MediatorGameSpec};
use mediator_talk::core::{run_cheap_talk, CheapTalkSpec};
use mediator_talk::field::Fp;
use mediator_talk::games::dist::OutcomeDist;
use mediator_talk::prelude::{compare_run_sets, Scenario};
use mediator_talk::sim::SchedulerKind;
use std::collections::BTreeMap;

#[test]
fn majority_cheap_talk_implements_the_mediator_exactly_on_unanimous_inputs() {
    let n = 5;
    let kinds = vec![
        SchedulerKind::Random,
        SchedulerKind::Fifo,
        SchedulerKind::Lifo,
    ];
    let inputs = vec![vec![Fp::ONE]; n];
    let ct = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(inputs.clone())
        .max_steps(20_000_000)
        .build()
        .expect("5 > 4")
        .battery(kinds.clone())
        .seeds(0..8)
        .run_batch();
    let md = Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(inputs)
        .build()
        .expect("n − k − t ≥ 1")
        .battery(kinds)
        .seeds(0..8)
        .run_batch();
    let rep = compare_run_sets(&ct, &md);
    // Unanimous inputs ⇒ both games are point masses on (1,...,1).
    assert_eq!(rep.distance, 0.0, "exact implementation on this input");
    assert!(rep.eps_implements(0.0));
    assert_eq!(rep.kinds, 3);
    assert_eq!(rep.samples, 8);
}

#[test]
fn coin_mediator_distribution_is_a_fair_coin_in_both_games() {
    let n = 5;
    let circuit = catalog::counterexample_minfo(n);
    let spec = CheapTalkSpec::theorem_4_1(n, 1, 0, circuit.clone(), vec![vec![]; n], vec![0; n]);
    let med = MediatorGameSpec::standard(n, 1, 0, circuit, vec![vec![]; n]);
    let empty: Vec<Vec<Fp>> = vec![vec![]; n];

    let samples = 40u64;
    let ct = OutcomeDist::from_samples((0..samples).map(|seed| {
        let out = run_cheap_talk(
            &spec,
            &empty,
            &BTreeMap::new(),
            &SchedulerKind::Random,
            seed,
            20_000_000,
        );
        out.resolve_default(&vec![0; n])
            .iter()
            .map(|&a| a as usize)
            .collect::<Vec<_>>()
    }));
    let md = OutcomeDist::from_samples((0..samples).map(|seed| {
        let out = run_mediator_game(
            &med,
            &empty,
            BTreeMap::new(),
            &SchedulerKind::Random,
            seed,
            200_000,
        );
        out.resolve_default(&vec![0; n + 1])[..n]
            .iter()
            .map(|&a| a as usize)
            .collect::<Vec<_>>()
    }));
    // Support is exactly {all-0, all-1} on both sides.
    assert_eq!(ct.support_len(), 2, "cheap talk support: {ct:?}");
    assert_eq!(md.support_len(), 2);
    // Both near-fair; allow generous sampling noise at 60 samples.
    for d in [&ct, &md] {
        let p1 = d.prob(&vec![1; n]);
        assert!((p1 - 0.5).abs() < 0.25, "biased coin: {p1}");
    }
}

#[test]
fn mediated_and_cheap_talk_message_counts_differ_by_orders_of_magnitude() {
    // The price of removing the trusted party, quantified.
    let n = 5;
    let spec = CheapTalkSpec::theorem_4_1(
        n,
        1,
        0,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![0; n],
    );
    let med = MediatorGameSpec::standard(
        n,
        1,
        0,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
    );
    let inputs = vec![vec![Fp::ONE]; n];
    let ct = run_cheap_talk(
        &spec,
        &inputs,
        &BTreeMap::new(),
        &SchedulerKind::Random,
        1,
        20_000_000,
    );
    let md = run_mediator_game(
        &med,
        &inputs,
        BTreeMap::new(),
        &SchedulerKind::Random,
        1,
        200_000,
    );
    assert!(
        md.messages_sent <= 2 * (n as u64) + 2,
        "mediator game is O(n): {}",
        md.messages_sent
    );
    assert!(
        ct.messages_sent > 10 * md.messages_sent,
        "cheap talk costs real messages: {} vs {}",
        ct.messages_sent,
        md.messages_sent
    );
}
