//! Golden trace-equality suite for the **top-level sessions**: cheap-talk
//! games (Theorem 4.1 robust and Theorem 4.4 wills+barrier) and mediator
//! games (standard and §6.4 naive), pinning the scheduler-visible message
//! pattern of every battery member across 32 seeds.
//!
//! The protocol substrates have had this safety net since PR 2
//! (`crates/broadcast/tests/trace_golden.rs`,
//! `crates/vss/tests/trace_golden.rs`); the game-level worlds — the ones
//! the conformance harness and every experiment actually run — did not.
//! Any change to the event plane, the MPC engine's send order, the player
//! state machines, or the mediator's round structure shows up here as a
//! fingerprint divergence.
//!
//! Regeneration (after an *intentional* trace change): run the ignored
//! `print_golden_tables` test and paste its output over the constants:
//!
//! ```sh
//! cargo test --release --test trace_golden -- --ignored --nocapture
//! ```

use mediator_talk::prelude::*;

const SEEDS: u64 = 32;

fn cheap_talk_41_plan() -> CheapTalkPlan {
    let n = 5;
    Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("5 > 4")
}

fn cheap_talk_44_plan() -> CheapTalkPlan {
    let n = 6;
    Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .wills(vec![5; n])
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("6 > 3k + 4t = 3")
}

fn mediator_standard_plan() -> MediatorPlan {
    let n = 5;
    Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("n − k − t ≥ 1")
}

fn mediator_naive_plan() -> MediatorPlan {
    let n = 7;
    Scenario::mediator(catalog::counterexample_naive(n))
        .players(n)
        .tolerance(2, 0)
        .naive_split()
        .wills(vec![2; n])
        .build()
        .expect("n − k − t ≥ 1")
}

/// Battery × seed fingerprint table for one runnable plan.
fn battery_hash(n: usize, run: impl Fn(&SchedulerKind, u64) -> Outcome) -> Vec<(String, u64)> {
    SchedulerKind::battery(n)
        .iter()
        .map(|kind| {
            let mut h = 0u64;
            for seed in 0..SEEDS {
                h = h.rotate_left(1).wrapping_add(run(kind, seed).fingerprint());
            }
            (format!("{kind:?}"), h)
        })
        .collect()
}

fn assert_matches(name: &str, golden: &[(&str, u64)], got: &[(String, u64)]) {
    assert_eq!(golden.len(), got.len(), "{name}: battery size changed");
    for ((gk, gh), (k, h)) in golden.iter().zip(got) {
        assert_eq!(gk, k, "{name}: scheduler battery order changed");
        assert_eq!(
            *gh, *h,
            "{name}/{k}: message pattern diverged from the pinned session trace"
        );
    }
}

/// Golden values captured from the PR 4 runtime (the PR 2/3 event plane:
/// top-level sessions were bit-identical across those PRs, verified by the
/// scenario parity suite).
const GOLDEN_CHEAP_TALK_41: &[(&str, u64)] = &[
    ("Random", 0x82554591d43c259e),
    ("Fifo", 0x4a1608d290c8f2ab),
    ("Lifo", 0xd3d2ba16d6e87356),
    ("TargetedDelay([0])", 0xdae4089873c905ee),
    ("TargetedDelay([1])", 0x086d9d1bb055471a),
    ("TargetedDelay([2])", 0x7b455adb9477411e),
    (
        "Partition { group: [0, 1], heal_after: 200 }",
        0x3f75cc60265ba896,
    ),
];

const GOLDEN_CHEAP_TALK_44: &[(&str, u64)] = &[
    ("Random", 0x90cafd0a4d8d5e3d),
    ("Fifo", 0x1761672cc08e58ca),
    ("Lifo", 0xdd4d452fdcb2a84b),
    ("TargetedDelay([0])", 0xe5ca71dd9014fd33),
    ("TargetedDelay([1])", 0x827dd43e2676bf82),
    ("TargetedDelay([2])", 0x162cdca87c6f444e),
    (
        "Partition { group: [0, 1, 2], heal_after: 200 }",
        0x944a16d20ca3e588,
    ),
];

const GOLDEN_MEDIATOR_STANDARD: &[(&str, u64)] = &[
    ("Random", 0xd516401252bcda23),
    ("Fifo", 0xe32fce76a4d031c9),
    ("Lifo", 0x984f3b85666eb3f2),
    ("TargetedDelay([0])", 0xeb84befe3ad21745),
    ("TargetedDelay([1])", 0xecdd65ebd28f9f77),
    ("TargetedDelay([2])", 0xdbf0a57e40645c36),
    (
        "Partition { group: [0, 1], heal_after: 200 }",
        0xb5018dfa19910f54,
    ),
];

const GOLDEN_MEDIATOR_NAIVE: &[(&str, u64)] = &[
    ("Random", 0xa3288448aa7171dd),
    ("Fifo", 0x388bbd2e218a876d),
    ("Lifo", 0x16022a1cfbc4f993),
    ("TargetedDelay([0])", 0xac7a417ae8661e54),
    ("TargetedDelay([1])", 0xd506b90bc6ef0d1b),
    ("TargetedDelay([2])", 0xb5f54da54dcfae4a),
    (
        "Partition { group: [0, 1, 2], heal_after: 200 }",
        0xc1f5d789dcaaa8f8,
    ),
];

#[test]
fn cheap_talk_41_traces_match_pinned_sessions() {
    let plan = cheap_talk_41_plan();
    let got = battery_hash(5, |kind, seed| plan.run_with(kind, seed));
    assert_matches("cheap_talk_41", GOLDEN_CHEAP_TALK_41, &got);
}

#[test]
fn cheap_talk_44_traces_match_pinned_sessions() {
    let plan = cheap_talk_44_plan();
    let got = battery_hash(6, |kind, seed| plan.run_with(kind, seed));
    assert_matches("cheap_talk_44", GOLDEN_CHEAP_TALK_44, &got);
}

#[test]
fn mediator_standard_traces_match_pinned_sessions() {
    let plan = mediator_standard_plan();
    let got = battery_hash(5, |kind, seed| plan.run_with(kind, seed));
    assert_matches("mediator_standard", GOLDEN_MEDIATOR_STANDARD, &got);
}

#[test]
fn mediator_naive_traces_match_pinned_sessions() {
    let plan = mediator_naive_plan();
    let got = battery_hash(7, |kind, seed| plan.run_with(kind, seed));
    assert_matches("mediator_naive", GOLDEN_MEDIATOR_NAIVE, &got);
}

/// Regeneration helper: prints the tables to paste above.
#[test]
#[ignore = "golden-value regeneration helper"]
fn print_golden_tables() {
    let tables: Vec<(&str, Vec<(String, u64)>)> = vec![
        ("GOLDEN_CHEAP_TALK_41", {
            let plan = cheap_talk_41_plan();
            battery_hash(5, |kind, seed| plan.run_with(kind, seed))
        }),
        ("GOLDEN_CHEAP_TALK_44", {
            let plan = cheap_talk_44_plan();
            battery_hash(6, |kind, seed| plan.run_with(kind, seed))
        }),
        ("GOLDEN_MEDIATOR_STANDARD", {
            let plan = mediator_standard_plan();
            battery_hash(5, |kind, seed| plan.run_with(kind, seed))
        }),
        ("GOLDEN_MEDIATOR_NAIVE", {
            let plan = mediator_naive_plan();
            battery_hash(7, |kind, seed| plan.run_with(kind, seed))
        }),
    ];
    for (name, got) in tables {
        println!("const {name}: &[(&str, u64)] = &[");
        for (k, h) in got {
            println!("    (\"{k}\", {h:#018x}),");
        }
        println!("];");
    }
}
