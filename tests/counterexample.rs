//! Integration: the §6.4 counterexample, exact payoff structure — both the
//! hand-built coalition (pinning the paper's numbers) and the *generated*
//! rediscovery of the same attack by the conformance harness.

use mediator_talk::circuits::catalog;
use mediator_talk::core::adversary::Conformance;
use mediator_talk::core::deviations::CounterexampleColluder;
use mediator_talk::core::{run_mediator_game, MedMsg, MediatorGameSpec, Scenario};
use mediator_talk::games::{library, punishment, Strategy};
use mediator_talk::sim::{Process, SchedulerKind};
use std::collections::BTreeMap;

const BOT: u64 = library::BOTTOM as u64;

fn run(n: usize, naive: bool, collude: bool, seed: u64) -> Vec<usize> {
    let (_, _, k) = library::counterexample_game(n);
    let circuit = if naive {
        catalog::counterexample_naive(n)
    } else {
        catalog::counterexample_minfo(n)
    };
    let mut spec = MediatorGameSpec::standard(n, k, 0, circuit, vec![vec![]; n]);
    spec.naive_split = naive;
    spec.wills = Some(vec![BOT; n]);
    let mut deviants: BTreeMap<usize, Box<dyn Process<MedMsg>>> = BTreeMap::new();
    if collude {
        deviants.insert(0, Box::new(CounterexampleColluder::new(n, 1)));
        deviants.insert(1, Box::new(CounterexampleColluder::new(n, 0)));
    }
    let out = run_mediator_game(
        &spec,
        &vec![vec![]; n],
        deviants,
        &SchedulerKind::Random,
        seed,
        200_000,
    );
    out.resolve_ah(&vec![BOT; n + 1])[..n]
        .iter()
        .map(|&a| a as usize)
        .collect()
}

#[test]
fn bottom_is_a_k_punishment_with_margin_0_4() {
    let (game, mediated, k) = library::counterexample_game(7);
    let value = library::dist_utilities(&game, &[0; 7], &mediated)[0];
    assert!((value - 1.5).abs() < 1e-12);
    let rho: Vec<Strategy> = (0..7)
        .map(|_| Strategy::pure(1, 3, library::BOTTOM))
        .collect();
    assert!(punishment::is_m_punishment(&game, &rho, &[value; 7], k));
    let margin = punishment::punishment_margin(&game, &rho, &[value; 7], k);
    assert!((margin - 0.4).abs() < 1e-9);
}

#[test]
fn honest_naive_play_is_unanimous_coin() {
    let n = 7;
    let (game, _, _) = library::counterexample_game(n);
    for seed in 0..10 {
        let actions = run(n, true, false, seed);
        assert!(actions.iter().all(|&a| a == actions[0]), "unanimous");
        assert!(actions[0] == 0 || actions[0] == 1);
        let u = game.utilities(&vec![0; n], &actions)[0];
        assert!(u == 1.0 || u == 2.0);
    }
}

#[test]
fn colluders_profit_exactly_when_b_is_zero_under_naive_mediator() {
    let n = 7;
    let (game, _, _) = library::counterexample_game(n);
    let mut profited = 0;
    let mut cooperated = 0;
    let runs = 60;
    for seed in 0..runs {
        let base = run(n, true, false, seed);
        let dev = run(n, true, true, seed);
        let u_base = game.utilities(&vec![0; n], &base)[0];
        let u_dev = game.utilities(&vec![0; n], &dev)[0];
        if base[0] == 0 {
            // b = 0: the coalition deadlocks; everyone lands on ⊥ (1.1 > 1).
            assert_eq!(dev, vec![library::BOTTOM; n], "seed {seed}");
            assert!(u_dev > u_base, "seed {seed}: {u_dev} vs {u_base}");
            profited += 1;
        } else {
            // b = 1: the coalition cooperates; payoff 2 as honest.
            assert_eq!(dev, vec![1; n], "seed {seed}");
            assert_eq!(u_dev, u_base);
            cooperated += 1;
        }
    }
    assert!(profited > 0 && cooperated > 0, "both coin sides exercised");
}

#[test]
fn conformance_harness_rediscovers_the_hand_built_attack() {
    // The hand-built colluders above pin the paper's numbers; this test
    // shows the attack is no longer privileged knowledge: the conformance
    // harness *generates* the same coalition strategy from the collusion-
    // rule battery and finds the same profit, with a confidence interval
    // and a replayable witness run attached.
    let n = 7;
    let (game, _, k) = library::counterexample_game(n);
    let plan = Scenario::mediator(catalog::counterexample_naive(n))
        .players(n)
        .tolerance(k, 0)
        .naive_split()
        .wills(vec![BOT; n])
        .resolve_defaults(vec![BOT; n])
        .build()
        .expect("n − k ≥ 1");
    let report = plan.conformance(
        &game,
        &vec![0usize; n],
        &Conformance::new(0.01, k, 0)
            .battery(vec![SchedulerKind::Random])
            .seeds(60)
            .coalitions(vec![vec![0, 1]])
            .deadlock_action(BOT),
    );
    let w = report
        .witness()
        .expect("the generated sweep finds the attack");
    assert_eq!(w.strategy, "deadlock-if-bit=0");
    assert_eq!(w.coalition, vec![0, 1]);
    // Cross-check the generated gain against the hand-built coalition on
    // the same seed grid (the §6.4 margin: +0.05 in expectation).
    let mut hand_gain = 0.0;
    for seed in 0..60 {
        let base = run(n, true, false, seed);
        let dev = run(n, true, true, seed);
        hand_gain += game.utilities(&vec![0; n], &dev)[0] - game.utilities(&vec![0; n], &base)[0];
    }
    hand_gain /= 60.0;
    assert!(
        (w.gain.mean - hand_gain).abs() < 1e-9,
        "generated {} vs hand-built {hand_gain}",
        w.gain.mean
    );
}

#[test]
fn min_info_mediator_removes_the_profit() {
    let n = 7;
    let (game, _, _) = library::counterexample_game(n);
    for seed in 0..30 {
        let base = run(n, false, false, seed);
        let dev = run(n, false, true, seed);
        // The colluders never learn b before STOP: they behave like honest
        // players and the outcome coincides with the baseline.
        assert_eq!(base, dev, "seed {seed}");
        let u = game.utilities(&vec![0; n], &dev)[0];
        assert!(u == 1.0 || u == 2.0);
    }
}
