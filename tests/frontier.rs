//! Integration: the lower-bound frontier atlas (DESIGN.md §13).
//!
//! The tiny grid covers both sides of the boundary with both experiment
//! kinds: the §6.4 cell (Theorem 4.1 at `n = 7 ≤ 4k = 8`, companion
//! attack) plus Theorem 4.5 at its bound (`n = 4`, a freshly discovered
//! sub-threshold violation) and one above it (`n = 5`, the ε+punishment
//! construction certified resilient). The atlas's machine check must find
//! the empirical classification identical to the theorem predicate, and
//! every `Violated` cell's witness must persist to the trace store and
//! re-enact byte-identically through `replay_plan` — the same recipe
//! `experiments -- --replay` uses.

use mediator_talk::core::adversary::mediator_deviant_cells;
use mediator_talk::core::frontier::{companion_plan, run_frontier_local, CellClass, FrontierSpec};
use mediator_talk::prelude::*;

#[test]
fn the_tiny_grid_matches_the_theorem_predicate_cell_for_cell() {
    let spec = FrontierSpec::tiny();
    let atlas = run_frontier_local(&spec);
    atlas
        .check()
        .unwrap_or_else(|m| panic!("atlas mismatches: {m:#?}"));
    let (resilient, violated, inconclusive) = atlas.counts();
    assert_eq!(
        (resilient, violated, inconclusive),
        (1, 2, 0),
        "tiny grid: one admitted cell, two sub-threshold cells"
    );

    // The §6.4 cell rediscovers the paper's attack verbatim: the
    // opposite-parity pair decodes the leaked bit and deadlocks on b = 0.
    let sec64 = atlas
        .results
        .iter()
        .find(|r| r.cell.key() == "thm4.1-n7-k2-t0")
        .expect("the §6.4 cell is on the tiny grid");
    assert_eq!(sec64.class, CellClass::Violated);
    assert_eq!(sec64.evidence.strict_build, "rejected(required_n=9)");
    assert_eq!(sec64.evidence.hatch_build, "ok");
    let w = sec64
        .witness
        .as_ref()
        .expect("violated cells carry witnesses");
    assert_eq!(w.strategy, "deadlock-if-bit=0");
    assert_eq!(w.coalition, vec![0, 1]);

    // The fresh Theorem 4.5 cell right on its bound (n = 4 ≤ 2k = 4)
    // violates through the same companion structure.
    let fresh = atlas
        .results
        .iter()
        .find(|r| r.cell.key() == "thm4.5-n4-k2-t0")
        .expect("the 4.5 bound cell is on the tiny grid");
    assert_eq!(fresh.class, CellClass::Violated);
    assert!(fresh.witness.is_some());

    // The admitted 4.5 cell (n = 5 > 4) certifies resilient through the
    // ε+punishment construction itself.
    let admitted = atlas
        .results
        .iter()
        .find(|r| r.cell.key() == "thm4.5-n5-k2-t0")
        .expect("the admitted 4.5 cell is on the tiny grid");
    assert_eq!(admitted.class, CellClass::Resilient);
    assert_eq!(admitted.evidence.strict_build, "ok");
    assert_eq!(admitted.experiment, "cheap-talk:eps+wills");

    // The artifact is deterministic and carries the machine check's
    // verdict.
    assert_eq!(atlas.to_json(), run_frontier_local(&spec).to_json());
    assert!(atlas
        .to_json()
        .contains("\"matches_theorem_predicate\": true"));
}

#[test]
fn every_violated_cell_persists_a_witness_that_replays_byte_identically() {
    let bot = library::BOTTOM as u64;
    let atlas = run_frontier_local(&FrontierSpec::tiny());
    let dir = std::env::temp_dir().join(format!("frontier-witness-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tiny.mtrc");
    let _ = std::fs::remove_file(&path);

    // Persist: rebuild each witness's deviant plan from its (strategy,
    // coalition) recipe, re-run it at the witnessing (scheduler, seed),
    // and record the trace under a FrontierRecipe header — exactly what
    // `experiments -- --frontier` does.
    let mut store = TraceStore::create(&path).expect("create store");
    let mut recorded = Vec::new();
    for (i, r) in atlas.violated().enumerate() {
        let w = r.witness.as_ref().expect("violated ⇒ witness");
        let plan = companion_plan(r.cell.n, r.cell.k, r.cell.t);
        let deviant = mediator_deviant_cells(&plan, &w.coalition, Some(bot))
            .into_iter()
            .find(|(s, _)| *s == w.strategy)
            .unwrap_or_else(|| panic!("unknown strategy '{}'", w.strategy))
            .1;
        let outcome = deviant.run_with(&w.kind, w.seed);
        let recipe = FrontierRecipe {
            theorem: r.cell.theorem.name().to_string(),
            cell_key: r.cell.key(),
            strategy: w.strategy.clone(),
            coalition: w.coalition.clone(),
            deadlock: bot,
        };
        let mut header = RunHeader::bare(i as u64, w.seed);
        header.kind = Some(w.kind.clone());
        header.plan = PlanKind::Mediator;
        header.n = r.cell.n as u64;
        header.k = r.cell.k as u64;
        header.t = r.cell.t as u64;
        header.meta = recipe.meta();
        store.record(header, &outcome).expect("record witness");
        recorded.push(r.cell.key());
    }
    assert_eq!(
        recorded,
        vec!["thm4.1-n7-k2-t0", "thm4.5-n4-k2-t0"],
        "both violated cells persisted"
    );

    // Replay: reopen the store cold, rebuild each plan purely from the
    // persisted recipe, and demand a byte-identical re-enactment.
    let store = TraceStore::open(&path).expect("reopen store");
    assert_eq!(store.len(), 2);
    for id in store.ids().collect::<Vec<_>>() {
        let run = store.load(id).expect("stored run loads");
        let recipe = FrontierRecipe::from_header(&run.header)
            .expect("frontier witnesses carry their recipe");
        let plan = companion_plan(
            run.header.n as usize,
            run.header.k as usize,
            run.header.t as usize,
        );
        let deviant = mediator_deviant_cells(&plan, &recipe.coalition, Some(recipe.deadlock))
            .into_iter()
            .find(|(s, _)| s == &recipe.strategy)
            .unwrap_or_else(|| panic!("unknown stored strategy '{}'", recipe.strategy))
            .1;
        // `replay_plan` already asserts the re-recorded trace is
        // byte-identical; outcome equality on top: the re-enactment ends
        // the same way the witness run did (the deadlock collusion's runs
        // terminate by deadlock, not quiescence).
        let report = replay_plan(&deviant, &run)
            .unwrap_or_else(|e| panic!("{} failed to replay: {e:?}", recipe.cell_key));
        assert_eq!(report.termination, run.outcome.termination);
        assert_eq!(report.termination, TerminationKind::Deadlock);
    }
    let _ = std::fs::remove_file(&path);
}
