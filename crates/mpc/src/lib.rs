//! Asynchronous secure multiparty computation over arithmetic circuits —
//! the BCG/BKR-style engine driving the cheap-talk protocols.
//!
//! Given a mediator circuit (see `mediator-circuits`), `n` players jointly
//! evaluate it so that each player learns **only its own output wires**,
//! tolerating `f = k + t` misbehaving players. Two modes:
//!
//! * [`Mode::Robust`] (`n > 4f`, Theorem 4.1): inputs and randomness
//!   contributions are dealt by **AVSS**; the input core is fixed by `n`
//!   ABA instances (BKR agreement-on-a-common-subset rule); multiplications
//!   use masked public openings `z = ab + r` with the degree-doubling trick
//!   `h(x) = A(x)B(x) + R(x) + x^f·R'(x)` and **online error correction**
//!   (liveness exactly when `n ≥ 4f + 1` — the paper's bound).
//! * [`Mode::Epsilon`] (`n > 3f` for safety, Theorems 4.2/4.5): inputs are
//!   dealt by cut-and-choose *detectable* sharing; openings decode with a
//!   `t`-error budget and **abort** when no candidate survives — cheating is
//!   detected, not corrected. Aborts and byzantine-induced stalls route to
//!   the game layer's default/punishment path, which is precisely how the
//!   paper's Theorems 4.4/4.5 consume deadlocks. (BKR's full
//!   guaranteed-output-delivery machinery is substituted; see DESIGN.md.)
//!
//! Random field elements are sums of core contributions; random *bits* are
//! XOR-folds of core-contributed bits, each first verified by publicly
//! opening `b·(b−1)`.
//!
//! The engine is a sans-IO state machine ([`MpcEngine`]): feed it messages,
//! collect outgoing batches, watch for [`MpcEvent`]s. [`MpcDriver`] wraps it
//! in the shared [`mediator_sim::sansio::SansIo`] contract so the full
//! `mediator-sim` `World` (every scheduler, traces, failure injection) can
//! drive it; the cheap-talk layer (`mediator-core`) embeds that same driver
//! into its game-level processes.

pub mod config;
pub mod driver;
pub mod engine;
pub mod msg;

pub use config::{Mode, MpcConfig};
pub use driver::MpcDriver;
pub use engine::{MpcEngine, MpcEvent, MpcStatus};
pub use msg::MpcMsg;
