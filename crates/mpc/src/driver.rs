//! [`SansIo`] driver for the MPC engine.
//!
//! [`MpcDriver`] bundles one player's [`MpcEngine`] with its private circuit
//! inputs, so the whole execution — dealing, core agreement, evaluation,
//! output reconstruction — runs under the full `mediator-sim` `World` via
//! [`SansIoProcess`](mediator_sim::sansio::SansIoProcess) or
//! [`run_machines`](mediator_sim::sansio::run_machines), with randomness
//! drawn from the runtime's process-local generator. The cheap-talk
//! embedding in `mediator-core` drives this same type, so the game layer
//! and the protocol test suites exercise one engine wrapping, not two.

use crate::config::MpcConfig;
use crate::engine::{MpcEngine, MpcEvent, MpcStatus};
use crate::msg::MpcMsg;
use mediator_circuits::Circuit;
use mediator_field::Fp;
use mediator_sim::sansio::{Outgoing, SansIo};
use rand::rngs::StdRng;
use std::sync::Arc;

/// One player's MPC engine plus its start-time inputs.
pub struct MpcDriver {
    engine: MpcEngine,
    inputs: Option<Vec<Fp>>,
}

impl MpcDriver {
    /// Creates the driver for player `me` contributing `inputs`. The
    /// configuration is shared — pass an `Arc<MpcConfig>` so the `n`
    /// drivers of one execution share a single allocation.
    pub fn new(
        cfg: impl Into<Arc<MpcConfig>>,
        circuit: Arc<Circuit>,
        me: usize,
        inputs: Vec<Fp>,
    ) -> Self {
        MpcDriver {
            engine: MpcEngine::new(cfg, circuit, me),
            inputs: Some(inputs),
        }
    }

    /// The wrapped engine's externally visible status.
    pub fn status(&self) -> &MpcStatus {
        self.engine.status()
    }

    /// The agreed input core, once decided.
    pub fn core(&self) -> Option<&[usize]> {
        self.engine.core()
    }
}

impl SansIo for MpcDriver {
    type Msg = MpcMsg;
    type Output = MpcEvent;

    fn on_start(&mut self, rng: &mut StdRng) -> Vec<Outgoing<MpcMsg>> {
        let inputs = self.inputs.take().expect("MPC driver started twice");
        self.engine.start(&inputs, rng)
    }

    fn on_message(
        &mut self,
        from: usize,
        msg: MpcMsg,
        _rng: &mut StdRng,
    ) -> (Vec<Outgoing<MpcMsg>>, Option<MpcEvent>) {
        self.engine.on_message(from, msg)
    }

    /// Done when the engine reached a terminal status (`Done`/`Aborted`); a
    /// terminal engine produces no further messages, so halting the process
    /// is behaviourally equivalent to keeping it.
    fn is_done(&self) -> bool {
        !matches!(self.engine.status(), MpcStatus::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mediator_circuits::catalog;
    use mediator_sim::sansio::run_machines;
    use mediator_sim::{Behavior, SchedulerKind};

    fn drivers(cfg: &MpcConfig, circuit: Circuit, inputs: &[Vec<Fp>]) -> Vec<MpcDriver> {
        let circuit = Arc::new(circuit);
        // One shared config allocation for all n drivers.
        let cfg = Arc::new(cfg.clone());
        (0..cfg.n)
            .map(|me| MpcDriver::new(Arc::clone(&cfg), circuit.clone(), me, inputs[me].clone()))
            .collect()
    }

    #[test]
    fn sum_circuit_under_world_for_adversarial_schedulers() {
        let n = 5;
        let cfg = MpcConfig::robust(n, 1, 7, vec![vec![Fp::ZERO]; n]);
        let inputs: Vec<Vec<Fp>> = (1..=n as u64).map(|v| vec![Fp::new(v)]).collect();
        // Asynchronous MPC fixes a core of >= n - f input providers; an
        // adversarial scheduler may legitimately starve one player's dealing
        // past the core decision, in which case its input defaults to zero.
        // The checkable guarantees: everyone finishes, everyone agrees, and
        // the sum matches the full total minus at most f excluded inputs.
        let admissible: Vec<Fp> = {
            let mut v = vec![Fp::new(15)];
            v.extend((1..=n as u64).map(|excluded| Fp::new(15 - excluded)));
            v
        };
        for kind in [
            SchedulerKind::Random,
            SchedulerKind::Lifo,
            SchedulerKind::TargetedDelay(vec![2]),
        ] {
            for seed in 0..2 {
                let (_, outputs) = run_machines(
                    drivers(&cfg, catalog::sum_circuit(n), &inputs),
                    Vec::new(),
                    kind.build().as_mut(),
                    seed,
                    4_000_000,
                );
                let first = match outputs[0].as_ref() {
                    Some(MpcEvent::Done(v)) => v.clone(),
                    other => panic!("player 0 under {kind:?} seed {seed}: {other:?}"),
                };
                assert!(
                    admissible.contains(&first[0]),
                    "sum {:?} outside admissible core sums under {kind:?}",
                    first[0]
                );
                for (i, ev) in outputs.iter().enumerate() {
                    assert_eq!(
                        ev.as_ref(),
                        Some(&MpcEvent::Done(first.clone())),
                        "agreement: player {i} under {kind:?} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn silent_byzantine_player_does_not_block_world_run() {
        let n = 5;
        let cfg = MpcConfig::robust(n, 1, 9, vec![vec![Fp::ZERO]; n]);
        let inputs: Vec<Vec<Fp>> = (0..n as u64).map(|v| vec![Fp::new(v % 2)]).collect();
        let silent: Behavior<MpcMsg> = Box::new(|_, _, _| Vec::new());
        let (_, outputs) = run_machines(
            drivers(&cfg, catalog::majority_circuit(n), &inputs),
            vec![(4, silent.into())],
            SchedulerKind::Random.build().as_mut(),
            11,
            4_000_000,
        );
        for (i, ev) in outputs.iter().enumerate() {
            if i != 4 {
                let done = matches!(ev, Some(MpcEvent::Done(_)));
                assert!(done, "player {i}: {ev:?}");
            }
        }
    }
}
