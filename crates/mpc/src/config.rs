//! Engine configuration.

use mediator_field::Fp;
use serde::{Deserialize, Serialize};

/// Security mode of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Full robustness: `n > 4f`. Cheating is *corrected* (online error
    /// correction); the protocol always terminates with the right outputs.
    Robust,
    /// Detection-based: safety for `n > 3f`; cheating is *detected* with
    /// probability ≥ 1 − 2^{−61} per check and the engine aborts.
    /// `kappa` is the number of cut-and-choose checks per dealer.
    Epsilon {
        /// Cut-and-choose checks per dealer.
        kappa: usize,
    },
}

/// Configuration for one MPC execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Number of players.
    pub n: usize,
    /// Secrecy degree `f = k + t`: any `f` players learn nothing.
    pub f: usize,
    /// Number of actively lying players to tolerate in decoding
    /// (`t` in the paper; equal to `f` in robust mode).
    pub t: usize,
    /// Security mode.
    pub mode: Mode,
    /// Shared setup seed: ABA common coins and detection challenges.
    pub coin_seed: u64,
    /// Default input vectors used for players outside the input core
    /// (`defaults[p]` must match the circuit's input arity of `p`).
    pub defaults: Vec<Vec<Fp>>,
}

impl MpcConfig {
    /// A robust-mode configuration (`n > 4f` enforced at engine start).
    pub fn robust(n: usize, f: usize, coin_seed: u64, defaults: Vec<Vec<Fp>>) -> Self {
        MpcConfig {
            n,
            f,
            t: f,
            mode: Mode::Robust,
            coin_seed,
            defaults,
        }
    }

    /// An ε-mode configuration.
    pub fn epsilon(
        n: usize,
        f: usize,
        t: usize,
        kappa: usize,
        coin_seed: u64,
        defaults: Vec<Vec<Fp>>,
    ) -> Self {
        MpcConfig {
            n,
            f,
            t,
            mode: Mode::Epsilon { kappa },
            coin_seed,
            defaults,
        }
    }

    /// Validates the resilience requirements.
    ///
    /// # Panics
    ///
    /// Panics if the mode's threshold is violated (robust: `n > 4f`;
    /// ε: `n > 3·max(f,t)` for the agreement layer and `n ≥ f + 2t + 1`
    /// for decoding) or the defaults have the wrong shape.
    pub fn validate(&self, inputs_per_player: &[usize]) {
        match self.mode {
            Mode::Robust => {
                assert!(
                    self.n > 4 * self.f,
                    "robust MPC requires n > 4f (n={}, f={})",
                    self.n,
                    self.f
                );
                assert_eq!(self.t, self.f, "robust mode corrects t = f errors");
            }
            Mode::Epsilon { kappa } => {
                assert!(kappa >= 1, "need at least one cut-and-choose check");
                assert!(
                    self.n > self.f + 2 * self.t,
                    "epsilon MPC needs n ≥ f+2t+1 for challenge decoding"
                );
                assert!(self.n > 3 * self.t, "agreement layer needs n > 3t");
            }
        }
        assert_eq!(self.defaults.len(), self.n, "one default vector per player");
        for (p, d) in self.defaults.iter().enumerate() {
            assert_eq!(
                d.len(),
                inputs_per_player[p],
                "default arity mismatch for player {p}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_constructor_sets_t_equal_f() {
        let c = MpcConfig::robust(5, 1, 0, vec![vec![]; 5]);
        assert_eq!(c.t, 1);
        c.validate(&[0; 5]);
    }

    #[test]
    #[should_panic(expected = "n > 4f")]
    fn robust_threshold_enforced() {
        MpcConfig::robust(4, 1, 0, vec![vec![]; 4]).validate(&[0; 4]);
    }

    #[test]
    fn epsilon_accepts_n_3f_plus_1() {
        // k=0, t=1, f=1: n = 4 = 3f+1 ✓ (and ≥ f+2t+1 = 4).
        let c = MpcConfig::epsilon(4, 1, 1, 2, 0, vec![vec![]; 4]);
        c.validate(&[0; 4]);
    }

    #[test]
    #[should_panic(expected = "f+2t+1")]
    fn epsilon_decoding_bound_enforced() {
        MpcConfig::epsilon(4, 2, 1, 2, 0, vec![vec![]; 4]).validate(&[0; 4]);
    }

    #[test]
    #[should_panic(expected = "default arity")]
    fn defaults_shape_checked() {
        MpcConfig::robust(5, 1, 0, vec![vec![]; 5]).validate(&[1, 0, 0, 0, 0]);
    }
}
