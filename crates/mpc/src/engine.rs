//! The MPC engine state machine.

use crate::config::{Mode, MpcConfig};
use crate::msg::MpcMsg;
use mediator_bcast::{AbaState, CoinSource, IdealCoin, Outgoing};
use mediator_circuits::{Circuit, Gate};
use mediator_field::Fp;
use mediator_vss::avss::{self, AvssDest, AvssState};
use mediator_vss::detect::{deal_detectable, DetectState, Verdict};
use mediator_vss::OecState;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Externally visible engine status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcStatus {
    /// Still running.
    Running,
    /// Finished; the player's private output values, in declaration order.
    Done(Vec<Fp>),
    /// ε-mode abort: cheating detected but not correctable.
    Aborted,
}

/// Events surfaced to the embedding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcEvent {
    /// The input core was fixed (sorted member list).
    CoreDecided(Vec<usize>),
    /// The engine finished with the player's outputs.
    Done(Vec<Fp>),
    /// The engine aborted (ε-mode detection).
    Aborted,
}

/// One public opening in flight.
#[derive(Debug, Clone)]
struct OpenRec {
    oec: OecState,
    senders: BTreeSet<usize>,
    value: Option<Fp>,
}

/// A multiplication in flight (masked public opening).
#[derive(Debug, Clone)]
struct MulRun {
    open_id: u64,
    r_share: Fp,
    result: Option<Fp>,
}

/// Stage of a RandBit gate's sub-protocol.
#[derive(Debug, Clone)]
enum RbStage {
    Idle,
    CheckMul { mul: MulRun, b_share: Fp },
    CheckValue { open_id: u64, b_share: Fp },
    FoldMul { mul: MulRun, b_share: Fp, acc: Fp },
}

/// Runtime state of one RandBit gate.
#[derive(Debug, Clone)]
struct RandBitRun {
    ordinal: usize,
    pos: usize,
    stage: RbStage,
    acc: Option<Fp>,
    result: Option<Fp>,
}

/// A blocked gate.
#[derive(Debug, Clone)]
enum PendingGate {
    Mul(MulRun),
    RandBit(RandBitRun),
}

/// One player's engine for one MPC execution. See the crate docs for the
/// protocol description.
pub struct MpcEngine {
    cfg: Arc<MpcConfig>,
    circuit: Arc<Circuit>,
    me: usize,
    // Per-circuit derived counts.
    rand_ordinals: Vec<Option<usize>>,
    rb_ordinals: Vec<Option<usize>>,
    num_rand: usize,
    num_rb: usize,
    mask_budget: usize,
    // Dealing.
    avss: Vec<AvssState>,
    detect: Vec<DetectState>,
    dealer_shares: Vec<Option<Vec<Fp>>>,
    dealer_ok: Vec<Option<bool>>,
    tainted: bool,
    // Core agreement.
    aba: Vec<AbaState>,
    decisions: Vec<Option<bool>>,
    voted_zero: bool,
    core: Option<Vec<usize>>,
    core_announced: bool,
    // Evaluation.
    started_eval: bool,
    wires: Vec<Option<Fp>>,
    pc: usize,
    pending: Option<PendingGate>,
    next_mask: usize,
    next_open: u64,
    opens: BTreeMap<u64, OpenRec>,
    buffered: BTreeMap<u64, Vec<(usize, Fp)>>,
    // Outputs.
    outputs_sent: bool,
    output_oec: BTreeMap<usize, OecState>,
    output_vals: BTreeMap<usize, Fp>,
    status: MpcStatus,
}

impl MpcEngine {
    /// Creates an engine for player `me`. The configuration is shared:
    /// pass an `Arc<MpcConfig>` (or a plain `MpcConfig`, converted for
    /// you) so the n engines of one execution bump a refcount instead of
    /// deep-cloning the defaults table per player.
    ///
    /// # Panics
    ///
    /// Panics if the configuration violates its mode's thresholds
    /// (see [`MpcConfig::validate`]).
    pub fn new(cfg: impl Into<Arc<MpcConfig>>, circuit: Arc<Circuit>, me: usize) -> Self {
        let cfg: Arc<MpcConfig> = cfg.into();
        cfg.validate(circuit.inputs_per_player());
        let n = cfg.n;
        assert_eq!(n, circuit.num_players(), "config/circuit player mismatch");
        let mut rand_ordinals = vec![None; circuit.gates().len()];
        let mut rb_ordinals = vec![None; circuit.gates().len()];
        let (mut num_rand, mut num_rb) = (0usize, 0usize);
        for (i, g) in circuit.gates().iter().enumerate() {
            match g {
                Gate::Rand => {
                    rand_ordinals[i] = Some(num_rand);
                    num_rand += 1;
                }
                Gate::RandBit => {
                    rb_ordinals[i] = Some(num_rb);
                    num_rb += 1;
                }
                _ => {}
            }
        }
        let mask_budget = circuit.mul_count() + 2 * n * num_rb;
        let t_aba = match cfg.mode {
            Mode::Robust => cfg.f,
            Mode::Epsilon { .. } => cfg.t,
        };
        // ABA requires n > 3t; with f = 0 (degenerate no-adversary runs)
        // t_aba = 0 is fine.
        let coin = IdealCoin::new(cfg.coin_seed);
        let aba = (0..n)
            .map(|d| AbaState::new(n, t_aba, d as u64, coin.clone_box()))
            .collect();
        let kappa = match cfg.mode {
            Mode::Epsilon { kappa } => kappa,
            Mode::Robust => 1,
        };
        let avss_states = match cfg.mode {
            Mode::Robust => (0..n).map(|_| AvssState::new(n, cfg.f, me)).collect(),
            Mode::Epsilon { .. } => Vec::new(),
        };
        let detect_states = match cfg.mode {
            Mode::Epsilon { .. } => (0..n)
                .map(|d| DetectState::new(n, cfg.f, cfg.t, me, d, kappa, cfg.coin_seed))
                .collect(),
            Mode::Robust => Vec::new(),
        };
        let mut output_oec = BTreeMap::new();
        for (idx, &(p, _)) in circuit.outputs().iter().enumerate() {
            if p == me {
                output_oec.insert(idx, OecState::new(cfg.f, cfg.t));
            }
        }
        MpcEngine {
            cfg,
            me,
            rand_ordinals,
            rb_ordinals,
            num_rand,
            num_rb,
            mask_budget,
            avss: avss_states,
            detect: detect_states,
            dealer_shares: vec![None; n],
            dealer_ok: vec![None; n],
            tainted: false,
            aba,
            decisions: vec![None; n],
            voted_zero: false,
            core: None,
            core_announced: false,
            started_eval: false,
            wires: vec![None; circuit.gates().len()],
            pc: 0,
            pending: None,
            next_mask: 0,
            next_open: 0,
            opens: BTreeMap::new(),
            buffered: BTreeMap::new(),
            outputs_sent: false,
            output_oec,
            output_vals: BTreeMap::new(),
            status: MpcStatus::Running,
            circuit,
        }
    }

    /// The engine status.
    pub fn status(&self) -> &MpcStatus {
        &self.status
    }

    /// The agreed input core, once decided.
    pub fn core(&self) -> Option<&[usize]> {
        self.core.as_deref()
    }

    /// Number of coordinates each dealer shares. The final coordinate is a
    /// dummy pad so the dealing is never empty (a dealer with no inputs and
    /// a randomness-free circuit still needs a live AVSS/detect instance to
    /// be votable into the core).
    fn vec_len(&self, dealer: usize) -> usize {
        self.circuit.inputs_per_player()[dealer]
            + self.num_rand
            + self.num_rb
            + 2 * self.mask_budget
            + 1
    }

    fn input_coord(&self, dealer: usize, idx: usize) -> usize {
        debug_assert!(idx < self.circuit.inputs_per_player()[dealer]);
        idx
    }
    fn rand_coord(&self, dealer: usize, g: usize) -> usize {
        self.circuit.inputs_per_player()[dealer] + g
    }
    fn rb_coord(&self, dealer: usize, g: usize) -> usize {
        self.circuit.inputs_per_player()[dealer] + self.num_rand + g
    }
    fn mask_coord(&self, dealer: usize, m: usize) -> usize {
        self.circuit.inputs_per_player()[dealer] + self.num_rand + self.num_rb + m
    }

    /// Kicks off the execution: deals this player's inputs and randomness
    /// contributions to everyone.
    pub fn start<R: Rng + ?Sized>(
        &mut self,
        my_inputs: &[Fp],
        rng: &mut R,
    ) -> Vec<Outgoing<MpcMsg>> {
        assert_eq!(
            my_inputs.len(),
            self.circuit.inputs_per_player()[self.me],
            "input arity mismatch"
        );
        let mut vec: Vec<Fp> = my_inputs.to_vec();
        for _ in 0..self.num_rand {
            vec.push(Fp::random(rng));
        }
        for _ in 0..self.num_rb {
            vec.push(if rng.gen() { Fp::ONE } else { Fp::ZERO });
        }
        for _ in 0..2 * self.mask_budget {
            vec.push(Fp::random(rng));
        }
        vec.push(Fp::random(rng)); // dummy pad (see vec_len)
        debug_assert_eq!(vec.len(), self.vec_len(self.me));
        let me = self.me;
        match self.cfg.mode {
            Mode::Robust => {
                let rows = avss::deal(&vec, self.cfg.n, self.cfg.f, rng);
                rows.into_iter()
                    .enumerate()
                    .map(|(i, inner)| Outgoing::to(i, MpcMsg::Avss { dealer: me, inner }))
                    .collect()
            }
            Mode::Epsilon { kappa } => {
                let deals = deal_detectable(&vec, self.cfg.n, self.cfg.f, kappa, rng);
                deals
                    .into_iter()
                    .enumerate()
                    .map(|(i, inner)| Outgoing::to(i, MpcMsg::Detect { dealer: me, inner }))
                    .collect()
            }
        }
    }

    /// Processes one message. Returns outgoing messages and at most one
    /// freshly-raised event.
    pub fn on_message(
        &mut self,
        from: usize,
        msg: MpcMsg,
    ) -> (Vec<Outgoing<MpcMsg>>, Option<MpcEvent>) {
        let mut out = Vec::new();
        if self.status != MpcStatus::Running {
            return (out, None);
        }
        match msg {
            MpcMsg::Avss { dealer, inner } => {
                if dealer >= self.cfg.n || !matches!(self.cfg.mode, Mode::Robust) {
                    return (out, None);
                }
                let (batch, done) = self.avss[dealer].on_message(from, inner);
                for (dest, m) in batch {
                    let wrapped = MpcMsg::Avss { dealer, inner: m };
                    match dest {
                        AvssDest::One(d) => out.push(Outgoing::to(d, wrapped)),
                        AvssDest::All => out.push(Outgoing::all(wrapped)),
                    }
                }
                if done {
                    let shares = self.avss[dealer]
                        .shares()
                        .expect("completed AVSS has shares")
                        .into_iter()
                        .map(|s| s.value)
                        .collect::<Vec<Fp>>();
                    if shares.len() == self.vec_len(dealer) {
                        self.dealer_shares[dealer] = Some(shares);
                        self.dealer_ok[dealer] = Some(true);
                        self.vote(dealer, true, &mut out);
                    } else {
                        // Malformed arity: treat the dealer as bad.
                        self.dealer_ok[dealer] = Some(false);
                        self.vote(dealer, false, &mut out);
                    }
                }
            }
            MpcMsg::Detect { dealer, inner } => {
                if dealer >= self.cfg.n || !matches!(self.cfg.mode, Mode::Epsilon { .. }) {
                    return (out, None);
                }
                let (batch, verdict) = self.detect[dealer].on_message(from, inner);
                for m in batch {
                    out.push(Outgoing::all(MpcMsg::Detect { dealer, inner: m }));
                }
                if let Some(v) = verdict {
                    match v {
                        Verdict::Ok => {
                            let shares = self.detect[dealer]
                                .shares()
                                .expect("Ok verdict has shares")
                                .to_vec();
                            if shares.len() == self.vec_len(dealer) {
                                self.dealer_shares[dealer] = Some(shares);
                                self.dealer_ok[dealer] = Some(true);
                                self.vote(dealer, true, &mut out);
                            } else {
                                self.dealer_ok[dealer] = Some(false);
                                self.vote(dealer, false, &mut out);
                            }
                        }
                        Verdict::MyShareBad => {
                            // Globally fine, locally unusable: participate
                            // silently.
                            self.tainted = true;
                            self.dealer_ok[dealer] = Some(true);
                            self.vote(dealer, true, &mut out);
                        }
                        Verdict::DealerBad => {
                            self.dealer_ok[dealer] = Some(false);
                            self.vote(dealer, false, &mut out);
                        }
                    }
                }
            }
            MpcMsg::Core { dealer, inner } => {
                if dealer >= self.cfg.n {
                    return (out, None);
                }
                let (batch, decided) = self.aba[dealer].on_message(from, inner);
                for o in batch {
                    out.push(o.map(|inner| MpcMsg::Core { dealer, inner }));
                }
                if let Some(d) = decided {
                    self.decisions[dealer] = Some(d);
                    self.maybe_vote_zero(&mut out);
                    self.maybe_fix_core();
                }
            }
            MpcMsg::Open { id, value } => {
                if let Some(rec) = self.opens.get_mut(&id) {
                    rec.senders.insert(from);
                    if rec.value.is_none() {
                        if let Some(v) = rec.oec.add_share(from, value) {
                            rec.value = Some(v);
                        }
                    }
                    self.check_open_abort(id);
                } else {
                    self.buffered.entry(id).or_default().push((from, value));
                }
            }
            MpcMsg::Output { idx, value } => {
                if let Some(oec) = self.output_oec.get_mut(&idx) {
                    if let Some(v) = oec.add_share(from, value) {
                        self.output_vals.insert(idx, v);
                    }
                }
            }
        }
        let event = self.pump(&mut out);
        (out, event)
    }

    fn vote(&mut self, dealer: usize, v: bool, out: &mut Vec<Outgoing<MpcMsg>>) {
        if !self.aba[dealer].is_started() {
            let batch = self.aba[dealer].start(v);
            for o in batch {
                out.push(o.map(|inner| MpcMsg::Core { dealer, inner }));
            }
        }
    }

    fn maybe_vote_zero(&mut self, out: &mut Vec<Outgoing<MpcMsg>>) {
        if self.voted_zero {
            return;
        }
        let ones = self.decisions.iter().filter(|d| **d == Some(true)).count();
        if ones < self.cfg.n - self.cfg.f {
            return;
        }
        self.voted_zero = true;
        for d in 0..self.cfg.n {
            self.vote(d, false, out);
        }
    }

    fn maybe_fix_core(&mut self) {
        if self.core.is_some() || self.decisions.iter().any(|d| d.is_none()) {
            return;
        }
        let members: Vec<usize> = (0..self.cfg.n)
            .filter(|&d| self.decisions[d] == Some(true))
            .collect();
        self.core = Some(members);
    }

    // ---- evaluation ----

    /// Advances everything that can advance; returns at most one event.
    fn pump(&mut self, out: &mut Vec<Outgoing<MpcMsg>>) -> Option<MpcEvent> {
        if self.status != MpcStatus::Running {
            return None;
        }
        let mut event = None;
        if !self.core_announced {
            if let Some(c) = &self.core {
                self.core_announced = true;
                event = Some(MpcEvent::CoreDecided(c.clone()));
            }
        }
        if !self.started_eval {
            let ready = match &self.core {
                None => false,
                Some(c) => c.iter().all(|&d| self.dealer_ok[d].is_some()),
            };
            if !ready {
                return event;
            }
            // A core member locally marked bad (ε-mode divergence): we
            // cannot compute valid shares — participate silently.
            if self
                .core
                .as_ref()
                .expect("checked")
                .iter()
                .any(|&d| self.dealer_ok[d] == Some(false))
            {
                self.tainted = true;
            }
            self.started_eval = true;
        }
        self.run_eval(out);
        self.maybe_finish(&mut event);
        if self.status == MpcStatus::Aborted && event.is_none() {
            event = Some(MpcEvent::Aborted);
        }
        event
    }

    /// My share of a sum-over-core coordinate accessor.
    fn core_sum(&self, coord_of: impl Fn(usize) -> usize) -> Fp {
        let core = self.core.as_ref().expect("core fixed");
        let mut acc = Fp::ZERO;
        for &d in core {
            if let Some(shares) = &self.dealer_shares[d] {
                acc += shares[coord_of(d)];
            }
            // Tainted players have garbage anyway; zeros keep going.
        }
        acc
    }

    fn mask_share(&mut self) -> Fp {
        let m = self.next_mask;
        assert!(m < 2 * self.mask_budget, "mask budget exhausted");
        self.next_mask += 1;
        self.core_sum(|d| self.mask_coord(d, m))
    }

    /// Registers a public opening of degree `deg` and broadcasts my point.
    fn open_value(&mut self, deg: usize, my_point: Fp, out: &mut Vec<Outgoing<MpcMsg>>) -> u64 {
        let id = self.next_open;
        self.next_open += 1;
        let mut rec = OpenRec {
            oec: OecState::new(deg, self.cfg.t),
            senders: BTreeSet::new(),
            value: None,
        };
        if let Some(buf) = self.buffered.remove(&id) {
            for (from, v) in buf {
                rec.senders.insert(from);
                if rec.value.is_none() {
                    if let Some(val) = rec.oec.add_share(from, v) {
                        rec.value = Some(val);
                    }
                }
            }
        }
        self.opens.insert(id, rec);
        if !self.tainted {
            out.push(Outgoing::all(MpcMsg::Open {
                id,
                value: my_point,
            }));
        }
        self.check_open_abort(id);
        id
    }

    /// ε-mode: all `n` points received but no candidate → cheating detected.
    fn check_open_abort(&mut self, id: u64) {
        if !matches!(self.cfg.mode, Mode::Epsilon { .. }) {
            return;
        }
        if let Some(rec) = self.opens.get(&id) {
            if rec.value.is_none() && rec.senders.len() == self.cfg.n {
                self.status = MpcStatus::Aborted;
            }
        }
    }

    fn open_result(&self, id: u64) -> Option<Fp> {
        self.opens.get(&id).and_then(|r| r.value)
    }

    /// Starts a masked multiplication of two degree-f shares.
    fn start_mul(&mut self, a: Fp, b: Fp, out: &mut Vec<Outgoing<MpcMsg>>) -> MulRun {
        let r = self.mask_share();
        let rp = self.mask_share();
        let x = Fp::new(self.me as u64 + 1);
        let z = a * b + r + x.pow(self.cfg.f as u64) * rp;
        let id = self.open_value(2 * self.cfg.f, z, out);
        MulRun {
            open_id: id,
            r_share: r,
            result: None,
        }
    }

    fn poll_mul(&mut self, run: &mut MulRun) -> bool {
        if run.result.is_some() {
            return true;
        }
        if let Some(z) = self.open_result(run.open_id) {
            // z is public; z − ⟨r⟩ is a degree-f sharing of a·b.
            run.result = Some(z - run.r_share);
            true
        } else {
            false
        }
    }

    /// Runs gates until blocked or finished.
    fn run_eval(&mut self, out: &mut Vec<Outgoing<MpcMsg>>) {
        if !self.started_eval || self.status != MpcStatus::Running {
            return;
        }
        // Clone the circuit handle (refcount bump), not the gate list: this
        // runs once per delivered message.
        let circuit = Arc::clone(&self.circuit);
        let gates = circuit.gates();
        while self.pc < gates.len() {
            if self.status != MpcStatus::Running {
                return;
            }
            let pc = self.pc;
            let value = match gates[pc] {
                Gate::Input { player, index } => {
                    let core = self.core.as_ref().expect("core fixed");
                    if core.contains(&player) {
                        match &self.dealer_shares[player] {
                            Some(shares) => shares[self.input_coord(player, index)],
                            None => Fp::ZERO, // tainted path
                        }
                    } else {
                        // Excluded player: public default (a constant is a
                        // valid degree-0 sharing of itself).
                        self.cfg.defaults[player][index]
                    }
                }
                Gate::Const(c) => c,
                Gate::Add(a, b) => self.wire(a) + self.wire(b),
                Gate::Sub(a, b) => self.wire(a) - self.wire(b),
                Gate::MulConst(a, c) => self.wire(a) * c,
                Gate::Rand => {
                    let g = self.rand_ordinals[pc].expect("rand ordinal");
                    self.core_sum(|d| self.rand_coord(d, g))
                }
                Gate::Mul(a, b) => {
                    let mut run = match self.pending.take() {
                        Some(PendingGate::Mul(run)) => run,
                        Some(other) => {
                            // Can't happen: pending always matches pc's gate.
                            self.pending = Some(other);
                            unreachable!("pending mismatch at mul gate");
                        }
                        None => {
                            let (wa, wb) = (self.wire(a), self.wire(b));
                            self.start_mul(wa, wb, out)
                        }
                    };
                    if self.poll_mul(&mut run) {
                        run.result.expect("polled")
                    } else {
                        self.pending = Some(PendingGate::Mul(run));
                        return; // blocked
                    }
                }
                Gate::RandBit => {
                    let mut run = match self.pending.take() {
                        Some(PendingGate::RandBit(run)) => run,
                        Some(other) => {
                            self.pending = Some(other);
                            unreachable!("pending mismatch at randbit gate");
                        }
                        None => RandBitRun {
                            ordinal: self.rb_ordinals[pc].expect("rb ordinal"),
                            pos: 0,
                            stage: RbStage::Idle,
                            acc: None,
                            result: None,
                        },
                    };
                    if self.run_randbit(&mut run, out) {
                        run.result.expect("randbit finished")
                    } else {
                        self.pending = Some(PendingGate::RandBit(run));
                        return; // blocked
                    }
                }
            };
            self.wires[pc] = Some(value);
            self.pc += 1;
        }
        self.send_outputs(out);
    }

    fn wire(&self, w: usize) -> Fp {
        self.wires[w].expect("wire evaluated in topological order")
    }

    /// Advances a RandBit sub-protocol; returns `true` when finished.
    ///
    /// For each core contributor (in sorted order): verify the contributed
    /// value is a bit by opening `b·(b−1)`, then XOR-fold the valid bits.
    fn run_randbit(&mut self, run: &mut RandBitRun, out: &mut Vec<Outgoing<MpcMsg>>) -> bool {
        // Address the core by index instead of cloning the member list on
        // every call (this runs once per delivered message while a RandBit
        // gate is pending).
        let core_len = self.core.as_ref().expect("core fixed").len();
        loop {
            if self.status != MpcStatus::Running {
                return false;
            }
            // Take the stage by value (leaving the cheap `Idle`) rather
            // than cloning it on every poll.
            match std::mem::replace(&mut run.stage, RbStage::Idle) {
                RbStage::Idle => {
                    if run.pos >= core_len {
                        // Fold finished; an (impossible in practice) empty
                        // valid set degrades to the constant 0.
                        run.result = Some(run.acc.unwrap_or(Fp::ZERO));
                        return true;
                    }
                    let d = self.core.as_ref().expect("core fixed")[run.pos];
                    let b = match &self.dealer_shares[d] {
                        Some(shares) => shares[self.rb_coord(d, run.ordinal)],
                        None => Fp::ZERO,
                    };
                    // u = b·(b−1); share of (b−1) is b_share − 1.
                    let mul = self.start_mul(b, b - Fp::ONE, out);
                    run.stage = RbStage::CheckMul { mul, b_share: b };
                }
                RbStage::CheckMul { mut mul, b_share } => {
                    if !self.poll_mul(&mut mul) {
                        run.stage = RbStage::CheckMul { mul, b_share };
                        return false;
                    }
                    let u_share = mul.result.expect("polled");
                    let open_id = self.open_value(self.cfg.f, u_share, out);
                    run.stage = RbStage::CheckValue { open_id, b_share };
                }
                RbStage::CheckValue { open_id, b_share } => {
                    let Some(u) = self.open_result(open_id) else {
                        run.stage = RbStage::CheckValue { open_id, b_share };
                        return false;
                    };
                    if !u.is_zero() {
                        // Not a bit: contributor discarded (publicly visible
                        // to everyone identically).
                        run.pos += 1;
                        run.stage = RbStage::Idle;
                        continue;
                    }
                    match run.acc {
                        None => {
                            run.acc = Some(b_share);
                            run.pos += 1;
                            run.stage = RbStage::Idle;
                        }
                        Some(acc) => {
                            let mul = self.start_mul(acc, b_share, out);
                            run.stage = RbStage::FoldMul { mul, b_share, acc };
                        }
                    }
                }
                RbStage::FoldMul {
                    mut mul,
                    b_share,
                    acc,
                } => {
                    if !self.poll_mul(&mut mul) {
                        run.stage = RbStage::FoldMul { mul, b_share, acc };
                        return false;
                    }
                    let ab = mul.result.expect("polled");
                    // XOR: a + b − 2ab.
                    run.acc = Some(acc + b_share - ab - ab);
                    run.pos += 1;
                    run.stage = RbStage::Idle;
                }
            }
        }
    }

    fn send_outputs(&mut self, out: &mut Vec<Outgoing<MpcMsg>>) {
        if self.outputs_sent {
            return;
        }
        self.outputs_sent = true;
        if self.tainted {
            return; // silent participation
        }
        for (idx, &(p, w)) in self.circuit.outputs().iter().enumerate() {
            let value = self.wire(w);
            out.push(Outgoing::to(p, MpcMsg::Output { idx, value }));
        }
    }

    fn maybe_finish(&mut self, event: &mut Option<MpcEvent>) {
        if self.status != MpcStatus::Running || !self.outputs_sent {
            return;
        }
        if self.output_vals.len() == self.output_oec.len() {
            let vals: Vec<Fp> = self.output_vals.values().copied().collect();
            self.status = MpcStatus::Done(vals.clone());
            if event.is_none() {
                *event = Some(MpcEvent::Done(vals));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mediator_bcast::harness::{Behavior, Net};
    use mediator_circuits::{catalog, CircuitBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs `n` engines to completion; `byz` players never start and behave
    /// per `behavior`. Returns final statuses and deliveries.
    fn run_mpc(
        cfg: MpcConfig,
        circuit: Circuit,
        inputs: Vec<Vec<Fp>>,
        byz: &[usize],
        seed: u64,
        behavior: Behavior<MpcMsg>,
    ) -> (Vec<MpcStatus>, u64) {
        let n = cfg.n;
        let circuit = Arc::new(circuit);
        let cfg = Arc::new(cfg); // shared by all n engines
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut engines: Vec<MpcEngine> = (0..n)
            .map(|i| MpcEngine::new(Arc::clone(&cfg), circuit.clone(), i))
            .collect();
        let mut net = Net::new(n, byz.to_vec(), seed, behavior);
        for i in 0..n {
            if !byz.contains(&i) {
                let batch = engines[i].start(&inputs[i], &mut rng);
                net.push_batch(i, batch);
            }
        }
        net.run(|to, from, msg, sink| {
            let (out, _ev) = engines[to].on_message(from, msg);
            sink.push_batch(to, out);
        });
        (
            engines.iter().map(|e| e.status().clone()).collect(),
            net.delivered,
        )
    }

    fn no_op() -> Behavior<MpcMsg> {
        Box::new(|_, _, _| Vec::new())
    }

    fn outputs_of(s: &MpcStatus) -> &[Fp] {
        match s {
            MpcStatus::Done(v) => v,
            other => panic!("not done: {other:?}"),
        }
    }

    #[test]
    fn sum_circuit_robust_no_faults() {
        let n = 5;
        let cfg = MpcConfig::robust(n, 1, 7, vec![vec![Fp::ZERO]; n]);
        let inputs: Vec<Vec<Fp>> = (1..=n as u64).map(|v| vec![Fp::new(v)]).collect();
        let (statuses, _) = run_mpc(cfg, catalog::sum_circuit(n), inputs, &[], 3, no_op());
        for s in &statuses {
            assert_eq!(outputs_of(s), &[Fp::new(15)]);
        }
    }

    #[test]
    fn multiplication_is_correct_and_private_degree() {
        // (x0 + x1) * x2 for 5 players.
        let n = 5;
        let mut b = CircuitBuilder::new(n, &[1, 1, 1, 0, 0]);
        let x0 = b.input(0, 0);
        let x1 = b.input(1, 0);
        let x2 = b.input(2, 0);
        let s = b.add(x0, x1);
        let m = b.mul(s, x2);
        b.output_all(m);
        let circuit = b.build();
        let cfg = MpcConfig::robust(
            n,
            1,
            7,
            vec![vec![Fp::ZERO]; 3]
                .into_iter()
                .chain(vec![vec![], vec![]])
                .collect(),
        );
        let inputs = vec![
            vec![Fp::new(3)],
            vec![Fp::new(4)],
            vec![Fp::new(10)],
            vec![],
            vec![],
        ];
        let (statuses, _) = run_mpc(cfg, circuit, inputs, &[], 5, no_op());
        for s in &statuses {
            assert_eq!(outputs_of(s), &[Fp::new(70)]);
        }
    }

    #[test]
    fn majority_circuit_with_silent_byzantine() {
        // n=5, f=1: player 4 never participates. Its input defaults to 0.
        let n = 5;
        let cfg = MpcConfig::robust(n, 1, 9, vec![vec![Fp::ZERO]; n]);
        let inputs: Vec<Vec<Fp>> = vec![
            vec![Fp::ONE],
            vec![Fp::ONE],
            vec![Fp::ONE],
            vec![Fp::ZERO],
            vec![Fp::ONE], // never dealt
        ];
        let (statuses, _) = run_mpc(cfg, catalog::majority_circuit(n), inputs, &[4], 11, no_op());
        // Inputs counted: 1,1,1,0 + default 0 → majority 1 (3 of 5).
        for (i, s) in statuses.iter().enumerate() {
            if i != 4 {
                assert_eq!(outputs_of(s), &[Fp::ONE], "player {i}");
            }
        }
    }

    #[test]
    fn rand_gate_yields_common_value() {
        let n = 5;
        let mut b = CircuitBuilder::new(n, &[0; 5]);
        let r = b.rand();
        b.output_all(r);
        let circuit = b.build();
        let cfg = MpcConfig::robust(n, 1, 13, vec![vec![]; n]);
        let (statuses, _) = run_mpc(cfg, circuit, vec![vec![]; n], &[], 17, no_op());
        let v = outputs_of(&statuses[0])[0];
        for s in &statuses {
            assert_eq!(outputs_of(s), &[v], "all players see the same random value");
        }
    }

    #[test]
    fn rand_bit_is_a_bit_and_common() {
        let n = 5;
        let mut b = CircuitBuilder::new(n, &[0; 5]);
        let r = b.rand_bit();
        b.output_all(r);
        let circuit = b.build();
        for seed in 0..4 {
            let cfg = MpcConfig::robust(n, 1, 13 + seed, vec![vec![]; n]);
            let (statuses, _) = run_mpc(cfg, circuit.clone(), vec![vec![]; n], &[], seed, no_op());
            let v = outputs_of(&statuses[0])[0];
            assert!(v == Fp::ZERO || v == Fp::ONE, "value {v} is not a bit");
            for s in &statuses {
                assert_eq!(outputs_of(s), &[v]);
            }
        }
    }

    #[test]
    fn lying_shareholder_is_corrected_in_robust_mode() {
        // Byzantine player participates in dealing (so it is in the core)
        // but lies in every opening and output: online error correction
        // must fix it. We model "participates then lies" by letting the
        // byzantine player run a real engine whose outgoing Open/Output
        // values are corrupted by the net behavior — here approximated by
        // the byzantine player staying silent after dealing, plus a liar
        // injecting garbage points for every opening id it sees.
        let n = 5;
        let cfg = MpcConfig::robust(n, 1, 21, vec![vec![Fp::ZERO]; n]);
        let inputs: Vec<Vec<Fp>> = (0..n).map(|v| vec![Fp::new(v as u64 % 2)]).collect();
        // Behavior: on seeing any Open broadcast, player 2 echoes a garbage
        // point for the same id to everyone else (its only lie channel).
        let behavior: Behavior<MpcMsg> = Box::new(|me, _from, msg| match msg {
            MpcMsg::Open { id, .. } => (0..5usize)
                .filter(|&p| p != me)
                .map(|p| {
                    (
                        p,
                        MpcMsg::Open {
                            id: *id,
                            value: Fp::new(999_999),
                        },
                    )
                })
                .collect(),
            _ => Vec::new(),
        });
        let (statuses, _) = run_mpc(
            cfg,
            catalog::majority_circuit(n),
            inputs,
            &[2],
            23,
            behavior,
        );
        // majority of (0,1,0,1) + default 0 for byz = 0... inputs: players
        // 0..5 inputs v%2 = 0,1,0,1,0; player 2 excluded → default 0.
        // Votes: 0,1,0(default),1,0 → majority 0.
        for (i, s) in statuses.iter().enumerate() {
            if i != 2 {
                assert_eq!(outputs_of(s), &[Fp::ZERO], "player {i}");
            }
        }
    }

    #[test]
    fn epsilon_mode_honest_run_completes() {
        let n = 4; // n = 3f+1 with f=t=1
        let cfg = MpcConfig::epsilon(n, 1, 1, 2, 31, vec![vec![Fp::ZERO]; n]);
        let inputs: Vec<Vec<Fp>> = (1..=n as u64).map(|v| vec![Fp::new(v)]).collect();
        let (statuses, _) = run_mpc(cfg, catalog::sum_circuit(n), inputs, &[], 37, no_op());
        for s in &statuses {
            assert_eq!(outputs_of(s), &[Fp::new(10)]);
        }
    }

    #[test]
    fn epsilon_mode_survives_silent_party() {
        let n = 4;
        let cfg = MpcConfig::epsilon(n, 1, 1, 2, 41, vec![vec![Fp::ZERO]; n]);
        let inputs: Vec<Vec<Fp>> = (1..=n as u64).map(|v| vec![Fp::new(v)]).collect();
        let (statuses, _) = run_mpc(cfg, catalog::sum_circuit(n), inputs, &[3], 43, no_op());
        // Silent player excluded; default 0 used: 1+2+3+0 = 6.
        for (i, s) in statuses.iter().enumerate() {
            if i != 3 {
                assert_eq!(outputs_of(s), &[Fp::new(6)], "player {i}");
            }
        }
    }

    #[test]
    fn epsilon_mode_liar_causes_abort_never_wrong_output() {
        // n = 4 = 3f+1 with f = t = 1: a mul opening needs all n points to
        // agree (deg + t + 1 = 4), so an active liar forces detection-abort
        // — but can never make an honest engine accept a wrong value.
        let n = 4;
        let mut b = CircuitBuilder::new(n, &[1, 1, 0, 0]);
        let x0 = b.input(0, 0);
        let x1 = b.input(1, 0);
        let m = b.mul(x0, x1);
        b.output_all(m);
        let circuit = b.build();
        let defaults = vec![vec![Fp::ZERO], vec![Fp::ZERO], vec![], vec![]];
        let inputs = vec![vec![Fp::new(6)], vec![Fp::new(7)], vec![], vec![]];
        // Player 3 injects a garbage point for every opening it observes.
        let behavior: Behavior<MpcMsg> = Box::new(|me, _from, msg| match msg {
            MpcMsg::Open { id, .. } => (0..4usize)
                .filter(|&p| p != me)
                .map(|p| {
                    (
                        p,
                        MpcMsg::Open {
                            id: *id,
                            value: Fp::new(13_371_337),
                        },
                    )
                })
                .collect(),
            _ => Vec::new(),
        });
        for seed in 0..5 {
            let cfg = MpcConfig::epsilon(n, 1, 1, 2, 61 + seed, defaults.clone());
            let (statuses, _) = run_mpc(
                cfg,
                circuit.clone(),
                inputs.clone(),
                &[3],
                seed,
                behavior.clone_box(),
            );
            for (i, s) in statuses.iter().enumerate().take(3) {
                match s {
                    MpcStatus::Done(v) => {
                        assert_eq!(v, &[Fp::new(42)], "player {i} accepted a wrong value");
                    }
                    MpcStatus::Aborted | MpcStatus::Running => {} // detected / stalled: safe
                }
            }
        }
    }

    #[test]
    fn message_count_scales_with_circuit_size() {
        let n = 5;
        let mk = |depth| catalog::work_circuit(n, 2, depth);
        let inputs: Vec<Vec<Fp>> = (1..=n as u64).map(|v| vec![Fp::new(v)]).collect();
        let cfg = |seed| MpcConfig::robust(n, 1, seed, vec![vec![Fp::ZERO]; n]);
        let (_, d1) = run_mpc(cfg(1), mk(1), inputs.clone(), &[], 1, no_op());
        let (_, d2) = run_mpc(cfg(1), mk(6), inputs, &[], 1, no_op());
        assert!(
            d2 > d1,
            "more multiplications must cost more messages: {d1} vs {d2}"
        );
    }

    #[test]
    fn outputs_are_private_to_their_owner() {
        // Player 0 gets x1 (player 1's input); nobody else declares outputs.
        // The test checks output *routing*: only player 0 finishes with a
        // value, and it is correct.
        let n = 5;
        let mut b = CircuitBuilder::new(n, &[0, 1, 0, 0, 0]);
        let x1 = b.input(1, 0);
        b.output(0, x1);
        let circuit = b.build();
        let mut defaults = vec![vec![]; n];
        defaults[1] = vec![Fp::ZERO];
        let cfg = MpcConfig::robust(n, 1, 51, defaults);
        let mut inputs = vec![vec![]; n];
        inputs[1] = vec![Fp::new(777)];
        let (statuses, _) = run_mpc(cfg, circuit, inputs, &[], 53, no_op());
        assert_eq!(outputs_of(&statuses[0]), &[Fp::new(777)]);
        for s in statuses.iter().skip(1) {
            assert_eq!(outputs_of(s), &[] as &[Fp]);
        }
    }
}
