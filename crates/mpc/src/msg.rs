//! MPC wire messages.

use mediator_bcast::AbaMsg;
use mediator_field::Fp;
use mediator_vss::{AvssMsg, DetectMsg};
use serde::{Deserialize, Serialize};

/// All messages of one MPC execution, instance-tagged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpcMsg {
    /// Robust-mode input dealing of `dealer` (AVSS sub-protocol).
    Avss {
        /// The dealing player.
        dealer: usize,
        /// Inner AVSS message.
        inner: AvssMsg,
    },
    /// ε-mode input dealing of `dealer` (detectable sharing).
    Detect {
        /// The dealing player.
        dealer: usize,
        /// Inner detection message.
        inner: DetectMsg,
    },
    /// Core-agreement vote: ABA instance `dealer` decides membership.
    Core {
        /// Whose membership is decided.
        dealer: usize,
        /// Inner agreement message.
        inner: AbaMsg,
    },
    /// A public opening point: my share of opening `id`.
    Open {
        /// Deterministic opening id (identical at every honest player).
        id: u64,
        /// The sender's share point.
        value: Fp,
    },
    /// A private output point: my share of circuit output `idx`, sent to
    /// the output's owner.
    Output {
        /// Index into the circuit's output declarations.
        idx: usize,
        /// The sender's share point.
        value: Fp,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = MpcMsg::Open {
            id: 3,
            value: Fp::new(9),
        };
        assert_eq!(m.clone(), m);
        let o = MpcMsg::Output {
            idx: 1,
            value: Fp::new(2),
        };
        assert_ne!(format!("{m:?}"), format!("{o:?}"));
    }
}
