//! Failure injection for the MPC engine: malformed dealings, forged
//! outputs, and the exclusion machinery.

use mediator_bcast::harness::{Behavior, Net};
use mediator_field::Fp;
use mediator_mpc::{MpcConfig, MpcEngine, MpcMsg, MpcStatus};
use mediator_vss::avss;
use mediator_circuits::catalog;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn no_op() -> Behavior<MpcMsg> {
    Box::new(|_, _, _| Vec::new())
}

/// Drives n engines with optional pre-seeded byzantine messages.
fn run_with_preseed(
    cfg: MpcConfig,
    circuit: mediator_circuits::Circuit,
    inputs: Vec<Vec<Fp>>,
    byz: &[usize],
    preseed: Vec<(usize, usize, MpcMsg)>,
    seed: u64,
    behavior: Behavior<MpcMsg>,
) -> Vec<MpcStatus> {
    let n = cfg.n;
    let circuit = Arc::new(circuit);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);
    let mut engines: Vec<MpcEngine> = (0..n)
        .map(|i| MpcEngine::new(cfg.clone(), circuit.clone(), i))
        .collect();
    let mut net = Net::new(n, byz.to_vec(), seed, behavior);
    for i in 0..n {
        if !byz.contains(&i) {
            let batch = engines[i].start(&inputs[i], &mut rng);
            net.push_batch(i, batch);
        }
    }
    for (from, to, msg) in preseed {
        net.push(from, to, msg);
    }
    net.run(|to, from, msg, sink| {
        let (out, _ev) = engines[to].on_message(from, msg);
        sink.push_batch(to, out);
    });
    engines.iter().map(|e| e.status().clone()).collect()
}

fn done_value(s: &MpcStatus) -> Fp {
    match s {
        MpcStatus::Done(v) => v[0],
        other => panic!("not done: {other:?}"),
    }
}

#[test]
fn wrong_arity_dealer_is_excluded_and_default_used() {
    // Byzantine dealer 4 hands out an AVSS sharing of the WRONG vector
    // length. Honest players complete the instance, notice the arity
    // mismatch, vote it out, and use the default input 0.
    let n = 5;
    let f = 1;
    let cfg = MpcConfig::robust(n, f, 3, vec![vec![Fp::ZERO]; n]);
    let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
    // Craft a 1-coordinate dealing (the honest vector for the majority
    // circuit is longer: input + masks + pad).
    let mut rng = StdRng::seed_from_u64(1);
    let rows = avss::deal(&[Fp::new(9)], n, f, &mut rng);
    let preseed: Vec<(usize, usize, MpcMsg)> = rows
        .into_iter()
        .enumerate()
        .map(|(i, inner)| (4usize, i, MpcMsg::Avss { dealer: 4, inner }))
        .collect();
    let statuses = run_with_preseed(
        cfg,
        catalog::majority_circuit(n),
        inputs,
        &[4],
        preseed,
        7,
        no_op(),
    );
    // Inputs counted: 1,1,1,1 + default 0 → majority 1.
    for (i, s) in statuses.iter().enumerate().take(4) {
        assert_eq!(done_value(s), Fp::ONE, "player {i}");
    }
}

#[test]
fn forged_private_outputs_are_corrected() {
    // Byzantine player 3 sends garbage Output points to player 0 for every
    // output index. OEC at player 0 corrects a single bad point.
    let n = 5;
    let cfg = MpcConfig::robust(n, 1, 11, vec![vec![Fp::ZERO]; n]);
    let inputs: Vec<Vec<Fp>> = (0..n).map(|i| vec![Fp::new((i >= 2) as u64)]).collect();
    let behavior: Behavior<MpcMsg> = Box::new(|_me, _from, msg| match msg {
        // Whenever byz sees any Output traffic, it forges more junk.
        MpcMsg::Output { idx, .. } => vec![(0usize, MpcMsg::Output { idx: *idx, value: Fp::new(31337) })],
        _ => Vec::new(),
    });
    let statuses = run_with_preseed(
        cfg,
        catalog::majority_circuit(n),
        inputs,
        &[3],
        vec![
            (3, 0, MpcMsg::Output { idx: 0, value: Fp::new(31337) }),
        ],
        13,
        behavior,
    );
    // Inputs: 0,0,1,_,1 + default 0 for byz → majority 0... inputs are
    // (0,0,1,1,1) with player 3 byz → counted (0,0,1,default 0,1): 2 ones
    // of 5 → majority 0.
    for (i, s) in statuses.iter().enumerate() {
        if i != 3 {
            assert_eq!(done_value(s), Fp::ZERO, "player {i}");
        }
    }
}

#[test]
fn stale_open_ids_from_byzantine_are_harmless() {
    // Byzantine floods Open points for ids that were never (or not yet)
    // created; honest engines buffer bounded junk and finish correctly.
    let n = 5;
    let cfg = MpcConfig::robust(n, 1, 17, vec![vec![Fp::ZERO]; n]);
    let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
    let preseed: Vec<(usize, usize, MpcMsg)> = (0..n)
        .flat_map(|p| {
            (1000u64..1005)
                .map(move |id| (2usize, p, MpcMsg::Open { id, value: Fp::new(5) }))
        })
        .collect();
    let statuses = run_with_preseed(
        cfg,
        catalog::majority_circuit(n),
        inputs,
        &[2],
        preseed,
        19,
        no_op(),
    );
    for (i, s) in statuses.iter().enumerate() {
        if i != 2 {
            assert_eq!(done_value(s), Fp::ONE, "player {i}");
        }
    }
}

#[test]
fn randomness_contributions_of_excluded_players_do_not_matter() {
    // Two different silent sets must both yield a *valid* common coin (the
    // rand gate sums only core contributions) — and honest players agree on
    // it within each run.
    let n = 5;
    let mut b = mediator_circuits::CircuitBuilder::new(n, &[0; 5]);
    let r = b.rand();
    b.output_all(r);
    let circuit = b.build();
    for silent in [0usize, 4] {
        let cfg = MpcConfig::robust(n, 1, 23, vec![vec![]; n]);
        let statuses = run_with_preseed(
            cfg,
            circuit.clone(),
            vec![vec![]; n],
            &[silent],
            Vec::new(),
            29,
            no_op(),
        );
        let honest: Vec<usize> = (0..n).filter(|&p| p != silent).collect();
        let v = done_value(&statuses[honest[0]]);
        for &p in &honest {
            assert_eq!(done_value(&statuses[p]), v, "disagreement at {p}");
        }
    }
}

#[test]
fn epsilon_mode_wrong_arity_detect_dealer_is_excluded() {
    use mediator_vss::detect::deal_detectable;
    // The sum circuit has no multiplications: this isolates the exclusion
    // machinery from the ε-mode mul-opening liveness gap (a silent player
    // at n = 3f+1 stalls deg-2f openings — the documented BKR divergence;
    // see DESIGN.md and engine::tests::epsilon_mode_liar_causes_abort...).
    let n = 4;
    let cfg = MpcConfig::epsilon(n, 1, 1, 2, 31, vec![vec![Fp::ZERO]; n]);
    let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
    let mut rng = StdRng::seed_from_u64(3);
    // 1-coordinate dealing where the honest vector is longer (sum circuit
    // honest vectors are input + dummy pad = 2 coordinates).
    let deals = deal_detectable(&[Fp::new(5)], n, 1, 2, &mut rng);
    let preseed: Vec<(usize, usize, MpcMsg)> = deals
        .into_iter()
        .enumerate()
        .map(|(i, inner)| (3usize, i, MpcMsg::Detect { dealer: 3, inner }))
        .collect();
    let statuses = run_with_preseed(
        cfg,
        catalog::sum_circuit(n),
        inputs,
        &[3],
        preseed,
        37,
        no_op(),
    );
    // Sum of (1,1,1, default 0) = 3.
    for (i, s) in statuses.iter().enumerate().take(3) {
        assert_eq!(done_value(s), Fp::new(3), "player {i}");
    }
}
