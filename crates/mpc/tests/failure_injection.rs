//! Failure injection for the MPC engine: malformed dealings, forged
//! outputs, and the exclusion machinery.
//!
//! Runs under the full `mediator-sim` `World` through [`MpcDriver`] and the
//! shared sans-IO adapter, so every attack is exercised against real
//! adversarial schedulers. Byzantine dealings that used to be pre-seeded
//! into the legacy `Net` queue are now the byzantine player's kickoff
//! batch. Assertions are stated against the asynchronous guarantee (the
//! agreed core has ≥ n − f members, excluded inputs default), which holds
//! under *every* legal schedule, not just uniform-random delivery.

use mediator_circuits::catalog;
use mediator_field::Fp;
use mediator_mpc::{MpcConfig, MpcDriver, MpcEvent, MpcMsg};
use mediator_sim::sansio::{run_machines, Behavior, ByzantineProcess};
use mediator_sim::SchedulerKind;
use mediator_vss::avss;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn no_op() -> Behavior<MpcMsg> {
    Box::new(|_, _, _| Vec::new())
}

fn schedulers() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Random,
        SchedulerKind::Lifo,
        SchedulerKind::TargetedDelay(vec![1]),
    ]
}

fn drivers(
    cfg: &MpcConfig,
    circuit: &Arc<mediator_circuits::Circuit>,
    inputs: &[Vec<Fp>],
) -> Vec<MpcDriver> {
    // One shared config allocation for all n drivers.
    let cfg = Arc::new(cfg.clone());
    (0..cfg.n)
        .map(|me| MpcDriver::new(Arc::clone(&cfg), circuit.clone(), me, inputs[me].clone()))
        .collect()
}

fn done_value(ev: &Option<MpcEvent>) -> Fp {
    match ev {
        Some(MpcEvent::Done(v)) => v[0],
        other => panic!("not done: {other:?}"),
    }
}

#[test]
fn wrong_arity_dealer_is_excluded_and_default_used() {
    // Byzantine dealer 4 hands out an AVSS sharing of the WRONG vector
    // length. Honest players complete the instance, notice the arity
    // mismatch, vote it out, and use the default input 0. The core then
    // contains every honest dealing that makes it in (≥ n − f members), so
    // at least 3 of the four honest 1-inputs count: majority 1 under every
    // scheduler.
    let n = 5;
    let f = 1;
    let cfg = MpcConfig::robust(n, f, 3, vec![vec![Fp::ZERO]; n]);
    let circuit = Arc::new(catalog::majority_circuit(n));
    let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
    for kind in schedulers() {
        for seed in 0..2 {
            // Craft a 1-coordinate dealing (the honest vector for the
            // majority circuit is longer: input + masks + pad).
            let mut rng = StdRng::seed_from_u64(1);
            let rows = avss::deal(&[Fp::new(9)], n, f, &mut rng);
            let kickoff: Vec<(usize, MpcMsg)> = rows
                .into_iter()
                .enumerate()
                .map(|(i, inner)| (i, MpcMsg::Avss { dealer: 4, inner }))
                .collect();
            let byz = ByzantineProcess::new(no_op()).with_kickoff(kickoff);
            let (_, outputs) = run_machines(
                drivers(&cfg, &circuit, &inputs),
                vec![(4, byz)],
                kind.build().as_mut(),
                seed,
                4_000_000,
            );
            for (i, ev) in outputs.iter().enumerate().take(4) {
                assert_eq!(
                    done_value(ev),
                    Fp::ONE,
                    "player {i} under {kind:?} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn forged_private_outputs_are_corrected() {
    // Byzantine player 3 sends garbage Output points to player 0 for every
    // output index. OEC at player 0 corrects a single bad point. Honest
    // inputs are (0,0,1,_,1); with the byzantine defaulting to 0 and at
    // most one further honest input excluded by the schedule, ones never
    // exceed two of five: majority 0.
    let n = 5;
    let cfg = MpcConfig::robust(n, 1, 11, vec![vec![Fp::ZERO]; n]);
    let circuit = Arc::new(catalog::majority_circuit(n));
    let inputs: Vec<Vec<Fp>> = (0..n).map(|i| vec![Fp::new((i >= 2) as u64)]).collect();
    let behavior: Behavior<MpcMsg> = Box::new(|_me, _from, msg| match msg {
        // Whenever byz sees any Output traffic, it forges more junk.
        MpcMsg::Output { idx, .. } => {
            vec![(
                0usize,
                MpcMsg::Output {
                    idx: *idx,
                    value: Fp::new(31337),
                },
            )]
        }
        _ => Vec::new(),
    });
    for kind in schedulers() {
        for seed in 0..2 {
            let byz = ByzantineProcess::new(behavior.clone_box()).with_kickoff(vec![(
                0,
                MpcMsg::Output {
                    idx: 0,
                    value: Fp::new(31337),
                },
            )]);
            let (_, outputs) = run_machines(
                drivers(&cfg, &circuit, &inputs),
                vec![(3, byz)],
                kind.build().as_mut(),
                seed,
                4_000_000,
            );
            for (i, ev) in outputs.iter().enumerate() {
                if i != 3 {
                    assert_eq!(
                        done_value(ev),
                        Fp::ZERO,
                        "player {i} under {kind:?} seed {seed}"
                    );
                }
            }
        }
    }
}

#[test]
fn stale_open_ids_from_byzantine_are_harmless() {
    // Byzantine floods Open points for ids that were never (or not yet)
    // created; honest engines buffer bounded junk and finish correctly.
    let n = 5;
    let cfg = MpcConfig::robust(n, 1, 17, vec![vec![Fp::ZERO]; n]);
    let circuit = Arc::new(catalog::majority_circuit(n));
    let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
    for kind in schedulers() {
        let kickoff: Vec<(usize, MpcMsg)> = (0..n)
            .flat_map(|p| {
                (1000u64..1005).map(move |id| {
                    (
                        p,
                        MpcMsg::Open {
                            id,
                            value: Fp::new(5),
                        },
                    )
                })
            })
            .collect();
        let byz = ByzantineProcess::new(no_op()).with_kickoff(kickoff);
        let (_, outputs) = run_machines(
            drivers(&cfg, &circuit, &inputs),
            vec![(2, byz)],
            kind.build().as_mut(),
            19,
            4_000_000,
        );
        for (i, ev) in outputs.iter().enumerate() {
            if i != 2 {
                assert_eq!(done_value(ev), Fp::ONE, "player {i} under {kind:?}");
            }
        }
    }
}

#[test]
fn randomness_contributions_of_excluded_players_do_not_matter() {
    // Two different silent sets must both yield a *valid* common coin (the
    // rand gate sums only core contributions) — and honest players agree on
    // it within each run.
    let n = 5;
    let mut b = mediator_circuits::CircuitBuilder::new(n, &[0; 5]);
    let r = b.rand();
    b.output_all(r);
    let circuit = Arc::new(b.build());
    for silent in [0usize, 4] {
        let cfg = MpcConfig::robust(n, 1, 23, vec![vec![]; n]);
        let inputs: Vec<Vec<Fp>> = vec![vec![]; n];
        let (_, outputs) = run_machines(
            drivers(&cfg, &circuit, &inputs),
            vec![(silent, no_op().into())],
            SchedulerKind::Random.build().as_mut(),
            29,
            4_000_000,
        );
        let honest: Vec<usize> = (0..n).filter(|&p| p != silent).collect();
        let v = done_value(&outputs[honest[0]]);
        for &p in &honest {
            assert_eq!(done_value(&outputs[p]), v, "disagreement at {p}");
        }
    }
}

#[test]
fn epsilon_mode_wrong_arity_detect_dealer_is_excluded() {
    use mediator_vss::detect::deal_detectable;
    // The sum circuit has no multiplications: this isolates the exclusion
    // machinery from the ε-mode mul-opening liveness gap (a silent player
    // at n = 3f+1 stalls deg-2f openings — the documented BKR divergence;
    // see DESIGN.md). The core must be all three honest dealings (the fake
    // one is voted out), so the sum is 3 under every scheduler.
    let n = 4;
    let cfg = MpcConfig::epsilon(n, 1, 1, 2, 31, vec![vec![Fp::ZERO]; n]);
    let circuit = Arc::new(catalog::sum_circuit(n));
    let inputs: Vec<Vec<Fp>> = vec![vec![Fp::ONE]; n];
    for kind in schedulers() {
        let mut rng = StdRng::seed_from_u64(3);
        // 1-coordinate dealing where the honest vector is longer (sum
        // circuit honest vectors are input + dummy pad = 2 coordinates).
        let deals = deal_detectable(&[Fp::new(5)], n, 1, 2, &mut rng);
        let kickoff: Vec<(usize, MpcMsg)> = deals
            .into_iter()
            .enumerate()
            .map(|(i, inner)| (i, MpcMsg::Detect { dealer: 3, inner }))
            .collect();
        let byz = ByzantineProcess::new(no_op()).with_kickoff(kickoff);
        let (_, outputs) = run_machines(
            drivers(&cfg, &circuit, &inputs),
            vec![(3, byz)],
            kind.build().as_mut(),
            37,
            4_000_000,
        );
        for (i, ev) in outputs.iter().enumerate().take(3) {
            assert_eq!(done_value(ev), Fp::new(3), "player {i} under {kind:?}");
        }
    }
}
