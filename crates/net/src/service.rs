//! The multi-session service runtime over the [`Session`] seam.
//!
//! A [`Service`] accepts connections on a [`Listener`], routes frames by
//! `(session-id, player-id)`, and hosts any number of concurrent
//! [`Session`]s, each driven by its own pump thread:
//!
//! ```text
//!             ┌────────────────────── Service ──────────────────────┐
//!   accept ──▶│ reader threads ──frames──▶ per-session inbox        │
//!             │                                    │                │
//!             │   pump (one thread per session):   ▼                │
//!             │     drain_outbox ──▶ ship Msg frames to relays      │
//!             │     inbound Msg  ──▶ inject + step (deliver)        │
//!             │     plane empty ∧ nothing in flight ──▶ finish()    │
//!             └─────────────────────────────────────────────────────┘
//! ```
//!
//! **The network is the scheduler.** In-process, a scheduler picks which
//! pending event is delivered next. Networked, every sent message is
//! drained off the plane, shipped to the relay connection attached for its
//! destination, and re-injected when the wire hands it back — so delivery
//! order is whatever order the network returns frames in (TCP interleaving
//! across connections, thread scheduling, or the service's own
//! [`DeliveryOrder::Shuffled`] buffer). That is *exactly* an adversarial
//! scheduler in the paper's §2 model: a message-pattern-visible adversary
//! choosing delivery order, constrained to eventual delivery. The paper's
//! theorems therefore transfer: a networked run yields the same outcome
//! *kinds* as the in-process runs — not the same byte-identical trace,
//! which no theorem promises (see DESIGN.md §9 and the parity suite).
//!
//! Quiescence detection is the pump's half of the bargain: the session has
//! terminated only when the local plane is drained **and** no shipped
//! frame is still on the wire (`in_flight == 0`) **and** the delivery
//! buffer is empty. Only then is the [`Session`]'s own termination verdict
//! (quiescent / deadlocked / budget-exhausted) trustworthy.

use crate::client::Client;
use crate::frame::{Frame, NetError, OutcomeSummary, RejectReason, SessionId};
use crate::transport::{ConnPair, FrameRx, FrameTx, Listener, MemTransport, TcpTransport};
use crate::wire::Wire;
use mediator_core::scenario::SessionPlan;
use mediator_sim::SchedulerKind;
use mediator_sim::{Envelope, Outcome, Session, SessionStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How a session pump turns frame arrivals into deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOrder {
    /// Deliver in arrival order (the network's own interleaving — already
    /// a nondeterministic schedule across connections).
    Arrival,
    /// Hold up to `depth` arrived frames and release them in seeded-random
    /// order — the paper's adversarial scheduler made literal, layered on
    /// top of whatever reordering the transport itself produced. Always
    /// live: the buffer force-drains whenever nothing is left in flight.
    Shuffled {
        /// RNG seed (XORed with the session id, so concurrent sessions
        /// shuffle independently).
        seed: u64,
        /// Maximum frames held back at once.
        depth: usize,
    },
}

/// Tunables for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// How long a pump waits for in-flight frames before declaring the
    /// network dead ([`NetError::IdleTimeout`]).
    pub idle_timeout: Duration,
    /// How long a hosted session waits for all players to attach.
    pub attach_timeout: Duration,
    /// How long a reader waits for a not-yet-hosted session named by an
    /// `Attach` before rejecting (smooths the host/connect race).
    pub attach_grace: Duration,
    /// The pump's delivery policy.
    pub delivery: DeliveryOrder,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            idle_timeout: Duration::from_secs(30),
            attach_timeout: Duration::from_secs(30),
            attach_grace: Duration::from_secs(5),
            delivery: DeliveryOrder::Arrival,
        }
    }
}

/// What reader threads feed a session pump.
enum Inbound<M> {
    /// A relay attached for `player`.
    Attached { player: usize },
    /// A frame arrived for `dst`. `returned` is true iff it came in on
    /// the connection attached as `dst`'s relay — only such a frame
    /// completes a shipped frame's network leg; anything else is an
    /// improvised (byzantine-network) injection that must not touch the
    /// in-flight accounting, or quiescence could be forged.
    Msg {
        src: usize,
        dst: usize,
        msg: M,
        returned: bool,
    },
    /// The relay for `player` disconnected.
    PeerGone { player: usize },
}

type Route<M> = Arc<Mutex<Box<dyn FrameTx<M>>>>;

/// Per-hosted-session routing state, shared between the reader threads
/// (which fill it) and the pump (which ships through it).
struct SessionEntry<M> {
    inbox: Sender<Inbound<M>>,
    routes: Mutex<HashMap<usize, Route<M>>>,
    expected: usize,
}

struct Shared<M> {
    sessions: Mutex<HashMap<SessionId, Arc<SessionEntry<M>>>>,
    cfg: ServiceConfig,
}

impl<M> Shared<M> {
    fn lookup(&self, id: SessionId) -> Option<Arc<SessionEntry<M>>> {
        self.sessions
            .lock()
            .expect("sessions poisoned")
            .get(&id)
            .cloned()
    }

    /// Looks a session up, waiting out the host/connect race for up to
    /// `attach_grace`.
    fn lookup_wait(&self, id: SessionId) -> Option<Arc<SessionEntry<M>>> {
        let deadline = Instant::now() + self.cfg.attach_grace;
        loop {
            if let Some(entry) = self.lookup(id) {
                return Some(entry);
            }
            if Instant::now() >= deadline {
                return None;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }
}

/// A ticket for a hosted session's result.
pub struct SessionHandle {
    id: SessionId,
    rx: Receiver<Result<Outcome, NetError>>,
}

impl SessionHandle {
    /// The hosted session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Blocks until the pump finishes and yields the networked
    /// [`Outcome`] (or the transport failure that ended the run).
    pub fn outcome(self) -> Result<Outcome, NetError> {
        self.rx.recv().unwrap_or(Err(NetError::ServiceGone))
    }
}

/// A networked multi-session runtime: one accept loop, one reader thread
/// per connection, one pump thread per hosted session.
pub struct Service<M: Wire + Send + 'static> {
    shared: Arc<Shared<M>>,
    accept: Option<JoinHandle<()>>,
    closer: Box<dyn Fn() + Send + Sync>,
}

impl<M: Wire + Send + 'static> Service<M> {
    /// Starts a service over `listener` with default tunables.
    pub fn start(listener: Box<dyn Listener<M>>) -> Self {
        Self::with_config(listener, ServiceConfig::default())
    }

    /// Starts a service with explicit tunables.
    pub fn with_config(mut listener: Box<dyn Listener<M>>, cfg: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            sessions: Mutex::new(HashMap::new()),
            cfg,
        });
        let closer = listener.closer();
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            while let Ok((tx, rx)) = listener.accept() {
                let shared = Arc::clone(&accept_shared);
                thread::spawn(move || reader_loop(shared, tx, rx));
            }
        });
        Service {
            shared,
            accept: Some(accept),
            closer,
        }
    }

    /// Hosts a session under `id`. The session is opened by `open` *inside*
    /// the pump's worker thread (processes need not be `Send` — the same
    /// rule the batch runner follows), which is why the world size
    /// (`processes`) travels separately: routing must know how many players
    /// have to attach before the pump starts. Returns immediately; the
    /// pump waits for all `processes` relays, runs the networked game, and
    /// delivers the result through the [`SessionHandle`].
    pub fn host(
        &self,
        id: SessionId,
        processes: usize,
        open: impl FnOnce() -> Session<M> + Send + 'static,
    ) -> SessionHandle {
        let (inbox_tx, inbox_rx) = mpsc::channel();
        let entry = Arc::new(SessionEntry {
            inbox: inbox_tx,
            routes: Mutex::new(HashMap::new()),
            expected: processes,
        });
        let (result_tx, result_rx) = mpsc::channel();
        {
            let mut sessions = self.shared.sessions.lock().expect("sessions poisoned");
            // Refuse to clobber a live session: re-registering an id would
            // orphan the running pump's routes, and that pump's eventual
            // unregister would then kill the newcomer's routing.
            if sessions.contains_key(&id) {
                let _ = result_tx.send(Err(NetError::SessionIdTaken { session: id }));
                return SessionHandle { id, rx: result_rx };
            }
            sessions.insert(id, Arc::clone(&entry));
        }
        let shared = Arc::clone(&self.shared);
        thread::spawn(move || {
            let cfg = shared.cfg.clone();
            let result = pump(id, open().with_session_id(id), &entry, inbox_rx, &cfg);
            // Unregister first: frames for a finished session are dead.
            // Guarded by identity (belt to the duplicate-id braces above):
            // only this pump's own entry may be removed.
            {
                let mut sessions = shared.sessions.lock().expect("sessions poisoned");
                if sessions
                    .get(&id)
                    .map(|e| Arc::ptr_eq(e, &entry))
                    .unwrap_or(false)
                {
                    sessions.remove(&id);
                }
            }
            match &result {
                Ok(outcome) => {
                    broadcast(
                        &entry,
                        &Frame::Outcome {
                            session: id,
                            summary: OutcomeSummary::from(outcome),
                        },
                    );
                }
                // A failed session will never yield an outcome: tell the
                // relays so none of them blocks forever.
                Err(_) => broadcast(&entry, &Frame::Abort { session: id }),
            }
            let _ = result_tx.send(result);
        });
        SessionHandle { id, rx: result_rx }
    }

    /// Hosts one `(scheduler, seed)` cell of `plan` under `id` — the
    /// networked mirror of `plan.session_with(kind, seed)`.
    pub fn host_plan<P>(
        &self,
        id: SessionId,
        plan: &P,
        kind: SchedulerKind,
        seed: u64,
    ) -> SessionHandle
    where
        P: SessionPlan<Msg = M>,
    {
        let plan = plan.clone();
        self.host(id, plan.processes(), move || plan.open_session(&kind, seed))
    }

    /// The batch entry: hosts every `(id, scheduler, seed)` cell of `plan`
    /// concurrently — one pump worker thread per session, all live at once,
    /// frames multiplexed by `(session-id, player-id)` — and blocks until
    /// every session has an outcome. All cells are registered before this
    /// call blocks, so relay clients may attach at any point (including
    /// before the call, thanks to the attach grace window).
    pub fn run_many<P>(
        &self,
        plan: &P,
        cells: impl IntoIterator<Item = (SessionId, SchedulerKind, u64)>,
    ) -> Vec<(SessionId, Result<Outcome, NetError>)>
    where
        P: SessionPlan<Msg = M>,
    {
        let handles: Vec<SessionHandle> = cells
            .into_iter()
            .map(|(id, kind, seed)| self.host_plan(id, plan, kind, seed))
            .collect();
        handles.into_iter().map(|h| (h.id(), h.outcome())).collect()
    }

    /// Stops accepting connections. Hosted sessions already pumping run to
    /// their outcomes; reader threads exit as their connections close.
    pub fn shutdown(mut self) {
        self.close_accept();
    }

    fn close_accept(&mut self) {
        (self.closer)();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl<M: Wire + Send + 'static> Drop for Service<M> {
    fn drop(&mut self) {
        self.close_accept();
    }
}

/// One connection's read loop: routes `Attach`/`Msg` frames into session
/// entries; on any stream error (orderly close, mid-frame drop, garbage
/// bytes) the connection is abandoned and its routes are torn down.
fn reader_loop<M: Wire + Send + 'static>(
    shared: Arc<Shared<M>>,
    tx: Box<dyn FrameTx<M>>,
    mut rx: Box<dyn FrameRx<M>>,
) {
    let tx: Route<M> = Arc::new(Mutex::new(tx));
    let mut claimed: Vec<(SessionId, usize)> = Vec::new();
    loop {
        match rx.recv() {
            Ok(Frame::Attach { session, player }) => {
                let reason = match shared.lookup_wait(session) {
                    None => Some(RejectReason::UnknownSession),
                    Some(entry) if player >= entry.expected => Some(RejectReason::PlayerOutOfRange),
                    Some(entry) => {
                        let mut routes = entry.routes.lock().expect("routes poisoned");
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            routes.entry(player)
                        {
                            slot.insert(Arc::clone(&tx));
                            drop(routes);
                            claimed.push((session, player));
                            let _ = entry.inbox.send(Inbound::Attached { player });
                            None
                        } else {
                            Some(RejectReason::PlayerTaken)
                        }
                    }
                };
                if let Some(reason) = reason {
                    let _ = tx
                        .lock()
                        .expect("route poisoned")
                        .send(&Frame::Reject { session, reason });
                }
            }
            Ok(Frame::Msg {
                session,
                src,
                dst,
                msg,
            }) => {
                // A frame for an unknown session is a late echo for a run
                // that already finished: dead, by design.
                if let Some(entry) = shared.lookup(session) {
                    // Range-check the addressing before it reaches the
                    // pump: `World::inject` panics on unknown process
                    // ids, and a hostile-but-well-formed frame must
                    // never panic a hosted session. (In-range forged
                    // frames stay deliverable on purpose — a byzantine
                    // network is an experiment, not a crash.)
                    if src >= entry.expected || dst >= entry.expected {
                        let _ = tx.lock().expect("route poisoned").send(&Frame::Reject {
                            session,
                            reason: RejectReason::PlayerOutOfRange,
                        });
                    } else {
                        // Only `dst`'s own relay can complete a shipped
                        // frame's network leg (see `Inbound::Msg`).
                        let returned = entry
                            .routes
                            .lock()
                            .expect("routes poisoned")
                            .get(&dst)
                            .map(|r| Arc::ptr_eq(r, &tx))
                            .unwrap_or(false);
                        let _ = entry.inbox.send(Inbound::Msg {
                            src,
                            dst,
                            msg,
                            returned,
                        });
                    }
                }
            }
            // `Outcome`/`Reject` only travel service → client.
            Ok(_) => {}
            Err(_) => break,
        }
    }
    for (sid, player) in claimed {
        if let Some(entry) = shared.lookup(sid) {
            let mut routes = entry.routes.lock().expect("routes poisoned");
            let mine = routes
                .get(&player)
                .map(|r| Arc::ptr_eq(r, &tx))
                .unwrap_or(false);
            if mine {
                routes.remove(&player);
                drop(routes);
                let _ = entry.inbox.send(Inbound::PeerGone { player });
            }
        }
    }
}

fn ship<M: Wire>(
    entry: &SessionEntry<M>,
    sid: SessionId,
    env: Envelope<M>,
) -> Result<(), NetError> {
    let dst = env.dst;
    let route = entry
        .routes
        .lock()
        .expect("routes poisoned")
        .get(&dst)
        .cloned()
        .ok_or(NetError::PeerVanished {
            session: sid,
            player: dst,
        })?;
    let frame = Frame::Msg {
        session: sid,
        src: env.src,
        dst,
        msg: env.msg,
    };
    let sent = route.lock().expect("route poisoned").send(&frame);
    sent.map_err(|_| NetError::PeerVanished {
        session: sid,
        player: dst,
    })
}

/// Sends `frame` once per distinct connection attached to the session (a
/// relay may serve several players of one session over one conn).
fn broadcast<M: Wire>(entry: &SessionEntry<M>, frame: &Frame<M>) {
    let routes: Vec<Route<M>> = entry
        .routes
        .lock()
        .expect("routes poisoned")
        .values()
        .cloned()
        .collect();
    let mut announced: Vec<*const Mutex<Box<dyn FrameTx<M>>>> = Vec::new();
    for route in routes {
        let ptr = Arc::as_ptr(&route);
        if announced.contains(&ptr) {
            continue;
        }
        announced.push(ptr);
        let _ = route.lock().expect("route poisoned").send(frame);
    }
}

/// The pump's wire-side bookkeeping: the delivery buffer, the shipped-but-
/// not-returned counts (total and per destination, kept in lockstep), and
/// the vanished-relay ledger. One `absorb` is the single place an inbound
/// event touches the accounting — the non-blocking and blocking receive
/// arms of the pump both call it, so they cannot drift apart.
struct FlightState<M> {
    held: Vec<Envelope<M>>,
    in_flight: u64,
    in_flight_by: Vec<u64>,
    gone: Vec<usize>,
}

impl<M> FlightState<M> {
    fn new(expected: usize) -> Self {
        FlightState {
            held: Vec::new(),
            in_flight: 0,
            in_flight_by: vec![0; expected],
            gone: Vec::new(),
        }
    }

    fn shipped(&mut self, dst: usize) {
        if let Some(slot) = self.in_flight_by.get_mut(dst) {
            *slot += 1;
            self.in_flight += 1;
        }
    }

    fn absorb(&mut self, inbound: Inbound<M>) {
        match inbound {
            Inbound::Msg {
                src,
                dst,
                msg,
                returned,
            } => {
                // Decrement only for a frame that (a) came back on dst's
                // own relay connection and (b) has a shipped frame to
                // account against — an improvised frame (forged, or a
                // stray client) is delivered but cannot fake quiescence.
                if returned {
                    if let Some(slot) = self.in_flight_by.get_mut(dst) {
                        if *slot > 0 {
                            *slot -= 1;
                            self.in_flight -= 1;
                        }
                    }
                }
                self.held.push(Envelope { src, dst, msg });
            }
            Inbound::Attached { player } => self.gone.retain(|&p| p != player),
            Inbound::PeerGone { player } => self.gone.push(player),
        }
    }

    /// A vanished relay whose player still owes shipped frames, if any.
    fn fatal_gone(&self) -> Option<usize> {
        self.gone
            .iter()
            .copied()
            .find(|&p| self.in_flight_by.get(p).copied().unwrap_or(0) > 0)
    }
}

/// The per-session engine: barrier on attaches, then the
/// ship / deliver / quiesce loop described in the module docs.
fn pump<M: Wire + Send>(
    sid: SessionId,
    mut session: Session<M>,
    entry: &SessionEntry<M>,
    inbox: Receiver<Inbound<M>>,
    cfg: &ServiceConfig,
) -> Result<Outcome, NetError> {
    let expected = entry.expected;
    let mut flight: FlightState<M> = FlightState::new(expected);
    let (depth, mut rng) = match cfg.delivery {
        DeliveryOrder::Arrival => (0usize, None),
        DeliveryOrder::Shuffled { seed, depth } => (depth, Some(StdRng::seed_from_u64(seed ^ sid))),
    };

    // Attach barrier: every world process needs a relay before the first
    // message leaves the plane.
    let mut attached = vec![false; expected];
    let mut nattached = 0usize;
    let deadline = Instant::now() + cfg.attach_timeout;
    while nattached < expected {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(NetError::AttachTimeout {
                session: sid,
                attached: nattached,
                expected,
            });
        }
        match inbox.recv_timeout(left) {
            Ok(Inbound::Attached { player }) => {
                if !attached[player] {
                    attached[player] = true;
                    nattached += 1;
                }
            }
            Ok(Inbound::PeerGone { player }) => {
                if attached[player] {
                    attached[player] = false;
                    nattached -= 1;
                }
            }
            // Nothing has been shipped yet, so any early frame is a peer
            // improvising; hold it — it will be delivered in order.
            Ok(msg @ Inbound::Msg { .. }) => flight.absorb(msg),
            Err(RecvTimeoutError::Timeout) => {
                return Err(NetError::AttachTimeout {
                    session: sid,
                    attached: nattached,
                    expected,
                });
            }
            Err(RecvTimeoutError::Disconnected) => return Err(NetError::ServiceGone),
        }
    }

    loop {
        // 1. Ship every freshly-sent message onto its network leg.
        for env in session.drain_outbox() {
            flight.shipped(env.dst);
            ship(entry, sid, env)?;
        }
        // 2. Dispatch local events (start signals stay on the plane).
        if !session.pending().is_empty() {
            if session.step().is_done() {
                // Mid-run Done can only be the budget guard: termination
                // with events pending is BudgetExhausted by construction.
                return Ok(session.finish());
            }
            continue;
        }
        // 3. Absorb everything the network has already handed back.
        loop {
            match inbox.try_recv() {
                Ok(inbound) => flight.absorb(inbound),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Err(NetError::ServiceGone),
            }
        }
        // 4. Deliver one held frame — immediately under Arrival order,
        //    through the shuffle buffer otherwise (force-drained once
        //    nothing is left in flight, so the policy is always live).
        if !flight.held.is_empty() && (flight.held.len() > depth || flight.in_flight == 0) {
            let i = match &mut rng {
                Some(r) => r.gen_range(0..flight.held.len()),
                None => 0,
            };
            let env = flight.held.remove(i);
            if session.inject(env.src, env.dst, env.msg).progressed() && session.step().is_done() {
                return Ok(session.finish()); // budget guard mid-delivery
            }
            continue;
        }
        // 5. Quiescence: plane drained, buffer empty, wire empty — the
        //    session's own verdict is now trustworthy.
        if flight.in_flight == 0 {
            debug_assert!(flight.held.is_empty());
            return match session.step() {
                SessionStatus::Done(_) => Ok(session.finish()),
                SessionStatus::Running => unreachable!("empty plane must terminate"),
            };
        }
        // 6. Traffic is in flight. A vanished relay is fatal only if its
        //    player still owes us frames (otherwise a replacement may yet
        //    attach, and sends to it will fail loudly at `ship`).
        if let Some(player) = flight.fatal_gone() {
            return Err(NetError::PeerVanished {
                session: sid,
                player,
            });
        }
        // 7. Block for the network.
        match inbox.recv_timeout(cfg.idle_timeout) {
            Ok(inbound) => flight.absorb(inbound),
            Err(RecvTimeoutError::Timeout) => {
                return Err(NetError::IdleTimeout {
                    session: sid,
                    in_flight: flight.in_flight,
                });
            }
            Err(RecvTimeoutError::Disconnected) => return Err(NetError::ServiceGone),
        }
    }
}

// ---------------------------------------------------------------------------
// One-call loopback runs
// ---------------------------------------------------------------------------

/// Runs `plan`'s `(kind, seed)` cell end-to-end over the in-memory
/// transport: a fresh single-session service, one relay client per world
/// process, outcome back on the caller's thread.
pub fn run_over_mem<P>(
    plan: &P,
    kind: &SchedulerKind,
    seed: u64,
    cfg: ServiceConfig,
) -> Result<Outcome, NetError>
where
    P: SessionPlan,
    P::Msg: Wire,
{
    let hub = MemTransport::new();
    let service = Service::with_config(Box::new(hub.listener()), cfg);
    run_session_with(plan, kind, seed, &service, || Ok(hub.connect()))
}

/// Runs `plan`'s `(kind, seed)` cell end-to-end over TCP loopback
/// (ephemeral port): real sockets, one relay connection per world process.
pub fn run_over_tcp<P>(
    plan: &P,
    kind: &SchedulerKind,
    seed: u64,
    cfg: ServiceConfig,
) -> Result<Outcome, NetError>
where
    P: SessionPlan,
    P::Msg: Wire,
{
    let transport = TcpTransport::bind_loopback()?;
    let addr = transport.addr();
    let service = Service::with_config(Box::new(transport), cfg);
    run_session_with(plan, kind, seed, &service, move || {
        TcpTransport::connect(addr)
    })
}

fn run_session_with<P, F>(
    plan: &P,
    kind: &SchedulerKind,
    seed: u64,
    service: &Service<P::Msg>,
    connect: F,
) -> Result<Outcome, NetError>
where
    P: SessionPlan,
    P::Msg: Wire,
    F: Fn() -> Result<ConnPair<P::Msg>, NetError> + Send + Sync,
{
    const SID: SessionId = 1;
    let handle = service.host_plan(SID, plan, kind.clone(), seed);
    let outcome = thread::scope(|scope| {
        let relays: Vec<_> = (0..plan.processes())
            .map(|player| {
                let connect = &connect;
                scope.spawn(move || -> Result<OutcomeSummary, NetError> {
                    let mut client = Client::from_pair(connect()?);
                    client.attach(SID, player)?;
                    client.relay()
                })
            })
            .collect();
        let outcome = handle.outcome();
        for relay in relays {
            // Relay results only matter when the hosted run itself failed
            // (they then carry the transport-side reason).
            let relay_result = relay.join().expect("relay panicked");
            if outcome.is_err() {
                relay_result?;
            }
        }
        outcome
    });
    outcome
}
