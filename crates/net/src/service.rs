//! The multi-session service runtime over the [`Session`] seam.
//!
//! A [`Service`] accepts connections on an [`NbListener`] and hosts any
//! number of concurrent [`Session`]s — all of it driven by **one reactor
//! thread** (see the `reactor` module):
//!
//! ```text
//!             ┌────────────────────── Service ─────────────────────────┐
//!   accept ──▶│            one reactor thread (readiness loop):        │
//!             │  conn read buffers ──frames──▶ per-session event queue │
//!             │                                       │                │
//!             │  session state machines:              ▼                │
//!             │    drain_outbox ──▶ conn write buffers (flushed when   │
//!             │    inbound Msg  ──▶ inject + step      writable)       │
//!             │    plane empty ∧ nothing in flight ──▶ finish()        │
//!             └────────────────────────────────────────────────────────┘
//! ```
//!
//! **The network is the scheduler.** In-process, a scheduler picks which
//! pending event is delivered next. Networked, every sent message is
//! drained off the plane, shipped to the relay connection attached for its
//! destination, and re-injected when the wire hands it back — so delivery
//! order is whatever order the network returns frames in (TCP interleaving
//! across connections, the reactor's dispatch order, or the service's own
//! [`DeliveryOrder::Shuffled`] buffer). That is *exactly* an adversarial
//! scheduler in the paper's §2 model: a message-pattern-visible adversary
//! choosing delivery order, constrained to eventual delivery. The paper's
//! theorems therefore transfer: a networked run yields the same outcome
//! *kinds* as the in-process runs — not the same byte-identical trace,
//! which no theorem promises (see DESIGN.md §9 and the parity suite).
//!
//! Quiescence detection is the pump's half of the bargain: the session has
//! terminated only when the local plane is drained **and** no shipped
//! frame is still on the wire (`in_flight == 0`) **and** the delivery
//! buffer is empty. Only then is the [`Session`]'s own termination verdict
//! (quiescent / deadlocked / budget-exhausted) trustworthy.
//!
//! [`Service::host`] drives the session on the reactor; the PR 5
//! thread-per-session engine survives as [`Service::host_threaded`], kept
//! deliberately so the differential suite can run the same plans through
//! both drivers and pin outcome-kind and failure-owner agreement.

use crate::auth::{AuthKey, AuthTag, TamperKind};
use crate::client::Client;
use crate::frame::{Frame, NetError, OutcomeSummary, SessionId};
use crate::reactor::{Command, ConnOut, Reactor, CMD_TOKEN};
use crate::readiness::{NbListener, Poller, Waker};
use crate::transport::{ConnPair, MemTransport, TcpTransport};
use crate::wire::Wire;
use mediator_core::scenario::SessionPlan;
use mediator_sim::SchedulerKind;
use mediator_sim::{Envelope, Outcome, RunMeta, Session, SessionStatus, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How a session pump turns frame arrivals into deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOrder {
    /// Deliver in arrival order (the network's own interleaving — already
    /// a nondeterministic schedule across connections).
    Arrival,
    /// Hold up to `depth` arrived frames and release them in seeded-random
    /// order — the paper's adversarial scheduler made literal, layered on
    /// top of whatever reordering the transport itself produced. Always
    /// live: the buffer force-drains whenever nothing is left in flight.
    Shuffled {
        /// RNG seed (XORed with the session id, so concurrent sessions
        /// shuffle independently).
        seed: u64,
        /// Maximum frames held back at once.
        depth: usize,
    },
}

/// Tunables for a [`Service`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// How long a pump waits for in-flight frames before declaring the
    /// network dead ([`NetError::IdleTimeout`]).
    pub idle_timeout: Duration,
    /// How long a hosted session waits for all players to attach.
    pub attach_timeout: Duration,
    /// How long an `Attach` naming a not-yet-hosted session is parked
    /// before rejecting (smooths the host/connect race; wakeup-driven,
    /// so a host arriving mid-grace attaches immediately).
    pub attach_grace: Duration,
    /// The pump's delivery policy.
    pub delivery: DeliveryOrder,
    /// When set, every shipped `Msg` frame is sealed with a per-pair MAC
    /// under this master key and verified on return (see the `auth`
    /// module): tampered, replayed, stripped, or truncated frames abort
    /// the affected session with [`NetError::AuthFailure`] instead of
    /// corrupting the run. `None` (the default) trusts relays, as the
    /// plane did before authenticated frames existed.
    pub auth: Option<AuthKey>,
    /// When set, every session that reaches an [`Outcome`] is handed to
    /// this sink exactly once, by whichever driver completed it (the
    /// reactor thread or a pump thread — sinks must be `Sync`). Failed
    /// sessions produce no outcome and are not recorded. Plan-hosted
    /// sessions ([`Service::host_plan`]) record their `(kind, seed)` cell
    /// so a store-backed sink can replay them; closure-hosted sessions
    /// record routing metadata only.
    pub sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("idle_timeout", &self.idle_timeout)
            .field("attach_timeout", &self.attach_timeout)
            .field("attach_grace", &self.attach_grace)
            .field("delivery", &self.delivery)
            .field("auth", &self.auth)
            .field("sink", &self.sink.as_ref().map(|_| "dyn TraceSink"))
            .finish()
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            idle_timeout: Duration::from_secs(30),
            attach_timeout: Duration::from_secs(30),
            attach_grace: Duration::from_secs(5),
            delivery: DeliveryOrder::Arrival,
            auth: None,
            sink: None,
        }
    }
}

impl ServiceConfig {
    /// This config with authenticated frames enabled under `key`.
    pub fn with_auth(mut self, key: AuthKey) -> Self {
        self.auth = Some(key);
        self
    }

    /// This config recording every completed session's outcome to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }
}

/// What the reactor feeds a session driver.
pub(crate) enum Inbound<M> {
    /// A relay attached for `player`.
    Attached { player: usize },
    /// A frame arrived for `dst`. `returned` is true iff it came in on
    /// the connection attached as `dst`'s relay — only such a frame
    /// completes a shipped frame's network leg; anything else is an
    /// improvised (byzantine-network) injection that must not touch the
    /// in-flight accounting, or quiescence could be forged.
    Msg {
        src: usize,
        dst: usize,
        msg: M,
        returned: bool,
        /// The authenticated sequence number, when the frame carried a
        /// verified MAC. The in-flight accounting checks it off against
        /// the outstanding set: a consumed number is a replay.
        seq: Option<u64>,
        /// Reactor-assigned id of the connection the frame arrived on
        /// (names the culprit in [`NetError::AuthFailure`]).
        conn: u64,
    },
    /// The relay for `player` disconnected.
    PeerGone { player: usize },
    /// The parse layer caught tampering on an authenticated frame for
    /// this session (bad MAC, stripped trailer, or truncated body). The
    /// driver turns it into [`NetError::AuthFailure`] — session-fatal,
    /// connection-preserving.
    Tampered { conn: u64, kind: TamperKind },
}

/// What drives a hosted session: the reactor's state machine, or a
/// dedicated pump thread (the PR 5 engine, kept for differential runs).
pub(crate) enum Driver<M> {
    Threaded(Sender<Inbound<M>>),
    Reactor,
}

/// Per-hosted-session routing state, shared between the reactor (which
/// fills it as relays attach) and whatever drives the session (which
/// ships through it).
pub(crate) struct SessionEntry<M> {
    pub(crate) driver: Driver<M>,
    pub(crate) routes: Mutex<HashMap<usize, Arc<ConnOut>>>,
    pub(crate) expected: usize,
    /// What the driver knew about the run at host time — handed to the
    /// configured [`TraceSink`] alongside the outcome. Plan-hosted
    /// sessions carry their `(kind, seed)` cell; closure-hosted sessions
    /// carry the routing id alone.
    pub(crate) meta: RunMeta,
}

pub(crate) struct Shared<M> {
    pub(crate) sessions: Mutex<HashMap<SessionId, Arc<SessionEntry<M>>>>,
    pub(crate) cfg: ServiceConfig,
    /// Threaded pumps still running (the reactor drains only once this
    /// hits zero *and* their final frames are flushed).
    pub(crate) live_pumps: AtomicUsize,
}

impl<M> Shared<M> {
    pub(crate) fn lookup(&self, id: SessionId) -> Option<Arc<SessionEntry<M>>> {
        self.sessions
            .lock()
            .expect("sessions poisoned")
            .get(&id)
            .cloned()
    }
}

/// A ticket for a hosted session's result.
pub struct SessionHandle {
    id: SessionId,
    rx: Receiver<Result<Outcome, NetError>>,
}

impl SessionHandle {
    /// The hosted session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Blocks until the session finishes and yields the networked
    /// [`Outcome`] (or the transport failure that ended the run).
    pub fn outcome(self) -> Result<Outcome, NetError> {
        self.rx.recv().unwrap_or(Err(NetError::ServiceGone))
    }
}

/// A networked multi-session runtime: one reactor thread servicing every
/// connection and every hosted session (thousands of concurrent sessions
/// on one core — see the `service_*` BENCH entries).
pub struct Service<M: Wire + Send + 'static> {
    shared: Arc<Shared<M>>,
    commands: Arc<Mutex<VecDeque<Command<M>>>>,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
}

impl<M: Wire + Send + 'static> Service<M> {
    /// Starts a service over `listener` with default tunables.
    pub fn start(listener: Box<dyn NbListener>) -> Self {
        Self::with_config(listener, ServiceConfig::default())
    }

    /// Starts a service with explicit tunables.
    pub fn with_config(listener: Box<dyn NbListener>, cfg: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            sessions: Mutex::new(HashMap::new()),
            cfg,
            live_pumps: AtomicUsize::new(0),
        });
        let commands: Arc<Mutex<VecDeque<Command<M>>>> = Arc::new(Mutex::new(VecDeque::new()));
        let poller = Poller::new().expect("reactor poller");
        let waker = poller.waker();
        // The `Reactor` is built *inside* the thread: hosted `Session`s
        // (and the processes within) are created and consumed there, so
        // they never cross a thread boundary and need not be `Send`.
        let reactor_shared = Arc::clone(&shared);
        let reactor_commands = Arc::clone(&commands);
        let handle = thread::Builder::new()
            .name("mediator-reactor".into())
            .spawn(move || Reactor::new(reactor_shared, listener, poller, reactor_commands).run())
            .expect("spawn reactor");
        Service {
            shared,
            commands,
            waker,
            reactor: Some(handle),
        }
    }

    /// Hosts a session under `id`, driven by the reactor's event loop (no
    /// dedicated thread). `open` runs *on the reactor thread* (processes
    /// need not be `Send` — the same rule the batch runner follows), which
    /// is why the world size (`processes`) travels separately: routing
    /// must know how many players have to attach before the run starts.
    /// Returns immediately; the session waits for all `processes` relays,
    /// runs the networked game, and delivers the result through the
    /// [`SessionHandle`].
    pub fn host(
        &self,
        id: SessionId,
        processes: usize,
        open: impl FnOnce() -> Session<M> + Send + 'static,
    ) -> SessionHandle {
        self.host_with_meta(id, processes, open, RunMeta::bare(id))
    }

    fn host_with_meta(
        &self,
        id: SessionId,
        processes: usize,
        open: impl FnOnce() -> Session<M> + Send + 'static,
        meta: RunMeta,
    ) -> SessionHandle {
        let (result_tx, result_rx) = mpsc::channel();
        let entry = Arc::new(SessionEntry {
            driver: Driver::Reactor,
            routes: Mutex::new(HashMap::new()),
            expected: processes,
            meta,
        });
        if !self.register(id, &entry, &result_tx) {
            return SessionHandle { id, rx: result_rx };
        }
        self.commands
            .lock()
            .expect("commands poisoned")
            .push_back(Command::Host {
                id,
                entry,
                open: Box::new(open),
                result: result_tx,
            });
        self.waker.wake(CMD_TOKEN);
        SessionHandle { id, rx: result_rx }
    }

    /// Hosts a session on a dedicated pump thread — the PR 5 engine,
    /// kept so the differential suite can pin reactor/threaded agreement
    /// on outcome kinds and failure owners. Same contract as
    /// [`Service::host`].
    pub fn host_threaded(
        &self,
        id: SessionId,
        processes: usize,
        open: impl FnOnce() -> Session<M> + Send + 'static,
    ) -> SessionHandle {
        self.host_threaded_with_meta(id, processes, open, RunMeta::bare(id))
    }

    fn host_threaded_with_meta(
        &self,
        id: SessionId,
        processes: usize,
        open: impl FnOnce() -> Session<M> + Send + 'static,
        meta: RunMeta,
    ) -> SessionHandle {
        let (result_tx, result_rx) = mpsc::channel();
        let (inbox_tx, inbox_rx) = mpsc::channel();
        let entry = Arc::new(SessionEntry {
            driver: Driver::Threaded(inbox_tx),
            routes: Mutex::new(HashMap::new()),
            expected: processes,
            meta,
        });
        if !self.register(id, &entry, &result_tx) {
            return SessionHandle { id, rx: result_rx };
        }
        self.shared.live_pumps.fetch_add(1, Ordering::AcqRel);
        let shared = Arc::clone(&self.shared);
        let waker = Arc::clone(&self.waker);
        thread::spawn(move || {
            let cfg = shared.cfg.clone();
            let result = pump(id, open().with_session_id(id), &entry, inbox_rx, &cfg);
            // Unregister first: frames for a finished session are dead.
            // Guarded by identity (belt to the duplicate-id braces in
            // `register`): only this pump's own entry may be removed.
            {
                let mut sessions = shared.sessions.lock().expect("sessions poisoned");
                if sessions
                    .get(&id)
                    .map(|e| Arc::ptr_eq(e, &entry))
                    .unwrap_or(false)
                {
                    sessions.remove(&id);
                }
            }
            match &result {
                Ok(outcome) => {
                    broadcast(
                        &entry,
                        &Frame::Outcome {
                            session: id,
                            summary: OutcomeSummary::from(outcome),
                        },
                    );
                }
                // A failed session will never yield an outcome: tell the
                // relays so none of them blocks forever.
                Err(_) => broadcast(&entry, &Frame::Abort { session: id }),
            }
            let _ = result_tx.send(result);
            // The decrement is last: the reactor must not drain while
            // this pump's final frames are still unqueued.
            shared.live_pumps.fetch_sub(1, Ordering::AcqRel);
            waker.wake(CMD_TOKEN);
        });
        // Wake the reactor so attaches parked for this id resolve now.
        self.waker.wake(CMD_TOKEN);
        SessionHandle { id, rx: result_rx }
    }

    /// Registers `entry` under `id`, refusing to clobber a live session
    /// (re-registering an id would orphan the running driver's routes).
    /// Wakes the reactor so parked attaches for `id` resolve immediately.
    fn register(
        &self,
        id: SessionId,
        entry: &Arc<SessionEntry<M>>,
        result_tx: &Sender<Result<Outcome, NetError>>,
    ) -> bool {
        let mut sessions = self.shared.sessions.lock().expect("sessions poisoned");
        if sessions.contains_key(&id) {
            let _ = result_tx.send(Err(NetError::SessionIdTaken { session: id }));
            return false;
        }
        sessions.insert(id, Arc::clone(entry));
        true
    }

    /// Hosts one `(scheduler, seed)` cell of `plan` under `id` — the
    /// networked mirror of `plan.session_with(kind, seed)`.
    pub fn host_plan<P>(
        &self,
        id: SessionId,
        plan: &P,
        kind: SchedulerKind,
        seed: u64,
    ) -> SessionHandle
    where
        P: SessionPlan<Msg = M>,
    {
        let plan = plan.clone();
        let meta = RunMeta::cell(id, kind.clone(), seed);
        self.host_with_meta(
            id,
            plan.processes(),
            move || plan.open_session(&kind, seed),
            meta,
        )
    }

    /// [`Service::host_plan`] on the thread-per-session engine — the cell
    /// metadata travels with the session either way, so a store-backed
    /// sink records replayable headers under both drivers (the
    /// differential replay suite leans on this).
    pub fn host_plan_threaded<P>(
        &self,
        id: SessionId,
        plan: &P,
        kind: SchedulerKind,
        seed: u64,
    ) -> SessionHandle
    where
        P: SessionPlan<Msg = M>,
    {
        let plan = plan.clone();
        let meta = RunMeta::cell(id, kind.clone(), seed);
        self.host_threaded_with_meta(
            id,
            plan.processes(),
            move || plan.open_session(&kind, seed),
            meta,
        )
    }

    /// The batch entry: hosts every `(id, scheduler, seed)` cell of `plan`
    /// concurrently — all sessions live at once on the reactor, frames
    /// multiplexed by `(session-id, player-id)` — and blocks until every
    /// session has an outcome. All cells are registered before this call
    /// blocks, so relay clients may attach at any point (including before
    /// the call, thanks to the attach grace window).
    pub fn run_many<P>(
        &self,
        plan: &P,
        cells: impl IntoIterator<Item = (SessionId, SchedulerKind, u64)>,
    ) -> Vec<(SessionId, Result<Outcome, NetError>)>
    where
        P: SessionPlan<Msg = M>,
    {
        let handles: Vec<SessionHandle> = cells
            .into_iter()
            .map(|(id, kind, seed)| self.host_plan(id, plan, kind, seed))
            .collect();
        handles.into_iter().map(|h| (h.id(), h.outcome())).collect()
    }

    /// Stops accepting connections and waits for the reactor to drain:
    /// hosted sessions run to their outcomes and final frames are flushed
    /// before this returns.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.reactor.take() {
            self.commands
                .lock()
                .expect("commands poisoned")
                .push_back(Command::Drain);
            self.waker.wake(CMD_TOKEN);
            let _ = handle.join();
        }
    }
}

impl<M: Wire + Send + 'static> Drop for Service<M> {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Ships one drained envelope to its destination's relay, recording it in
/// the flight accounting and — under an authenticated config — assigning
/// a fresh sequence number and sealing the frame's MAC. A missing route
/// or a dead connection is [`NetError::PeerVanished`] — the typed owner
/// the failure-mode suites assert on.
pub(crate) fn ship<M: Wire>(
    entry: &SessionEntry<M>,
    sid: SessionId,
    env: Envelope<M>,
    flight: &mut FlightState<M>,
) -> Result<(), NetError> {
    let dst = env.dst;
    flight.shipped(dst);
    let route = entry
        .routes
        .lock()
        .expect("routes poisoned")
        .get(&dst)
        .cloned()
        .ok_or(NetError::PeerVanished {
            session: sid,
            player: dst,
        })?;
    let auth = flight.auth.as_mut().map(|a| {
        let seq = a.next_seq;
        a.next_seq += 1;
        a.outstanding.insert(seq);
        AuthTag { seq, mac: [0; 8] }
    });
    let mut frame = Frame::Msg {
        session: sid,
        src: env.src,
        dst,
        msg: env.msg,
        auth,
    };
    if let Some(a) = &flight.auth {
        frame.seal(&a.key);
    }
    route
        .send_frame(&frame)
        .map_err(|_| NetError::PeerVanished {
            session: sid,
            player: dst,
        })
}

/// Sends `frame` once per distinct connection attached to the session (a
/// relay may serve several players of one session over one conn).
pub(crate) fn broadcast<M: Wire>(entry: &SessionEntry<M>, frame: &Frame<M>) {
    let routes: Vec<Arc<ConnOut>> = entry
        .routes
        .lock()
        .expect("routes poisoned")
        .values()
        .cloned()
        .collect();
    let mut announced: Vec<*const ConnOut> = Vec::new();
    for route in routes {
        let ptr = Arc::as_ptr(&route);
        if announced.contains(&ptr) {
            continue;
        }
        announced.push(ptr);
        let _ = route.send_frame(frame);
    }
}

/// The pump's wire-side bookkeeping: the delivery buffer, the shipped-but-
/// not-returned counts (total and per destination, kept in lockstep), and
/// the vanished-relay ledger. One `absorb` is the single place an inbound
/// event touches the accounting — the reactor state machine and the
/// threaded pump both call it, so they cannot drift apart.
pub(crate) struct FlightState<M> {
    pub(crate) held: Vec<Envelope<M>>,
    pub(crate) in_flight: u64,
    pub(crate) in_flight_by: Vec<u64>,
    pub(crate) gone: Vec<usize>,
    /// Authenticated-channel state, present iff the config carries a key.
    pub(crate) auth: Option<AuthState>,
    /// First tampering violation observed (parse-layer `Tampered` events
    /// and replay detection both land here); the driver turns it into
    /// [`NetError::AuthFailure`] at its next check.
    pub(crate) violation: Option<(u64, TamperKind)>,
}

/// Per-session sequencing state for authenticated frames: the next ship
/// sequence number, the numbers still on the wire, and the master key the
/// MACs derive from.
pub(crate) struct AuthState {
    pub(crate) key: AuthKey,
    pub(crate) next_seq: u64,
    pub(crate) outstanding: HashSet<u64>,
}

impl<M> FlightState<M> {
    pub(crate) fn new(expected: usize, auth: Option<AuthKey>) -> Self {
        FlightState {
            held: Vec::new(),
            in_flight: 0,
            in_flight_by: vec![0; expected],
            gone: Vec::new(),
            auth: auth.map(|key| AuthState {
                key,
                next_seq: 0,
                outstanding: HashSet::new(),
            }),
            violation: None,
        }
    }

    pub(crate) fn shipped(&mut self, dst: usize) {
        if let Some(slot) = self.in_flight_by.get_mut(dst) {
            *slot += 1;
            self.in_flight += 1;
        }
    }

    fn flag(&mut self, conn: u64, kind: TamperKind) {
        if self.violation.is_none() {
            self.violation = Some((conn, kind));
        }
    }

    pub(crate) fn absorb(&mut self, inbound: Inbound<M>) {
        match inbound {
            Inbound::Msg {
                src,
                dst,
                msg,
                returned,
                seq,
                conn,
            } => {
                match (&mut self.auth, seq) {
                    // Authenticated channel: the MAC was already verified
                    // at the parse layer; freshness is checked here, where
                    // the outstanding set lives. A consumed sequence
                    // number is a replay — flagged, not delivered.
                    (Some(a), Some(seq)) => {
                        if !a.outstanding.remove(&seq) {
                            self.flag(conn, TamperKind::Replayed);
                            return;
                        }
                        if returned {
                            if let Some(slot) = self.in_flight_by.get_mut(dst) {
                                if *slot > 0 {
                                    *slot -= 1;
                                    self.in_flight -= 1;
                                }
                            }
                        }
                        self.held.push(Envelope { src, dst, msg });
                    }
                    // An unauthenticated Msg reaching an authenticated
                    // driver: the parse layer rejects these, so this is
                    // defense in depth against a path drift.
                    (Some(_), None) => self.flag(conn, TamperKind::Downgrade),
                    // Plain channel. Decrement only for a frame that (a)
                    // came back on dst's own relay connection and (b) has
                    // a shipped frame to account against — an improvised
                    // frame (forged, or a stray client) is delivered but
                    // cannot fake quiescence.
                    (None, _) => {
                        if returned {
                            if let Some(slot) = self.in_flight_by.get_mut(dst) {
                                if *slot > 0 {
                                    *slot -= 1;
                                    self.in_flight -= 1;
                                }
                            }
                        }
                        self.held.push(Envelope { src, dst, msg });
                    }
                }
            }
            Inbound::Attached { player } => self.gone.retain(|&p| p != player),
            Inbound::PeerGone { player } => self.gone.push(player),
            Inbound::Tampered { conn, kind } => self.flag(conn, kind),
        }
    }

    /// A vanished relay whose player still owes shipped frames, if any.
    pub(crate) fn fatal_gone(&self) -> Option<usize> {
        self.gone
            .iter()
            .copied()
            .find(|&p| self.in_flight_by.get(p).copied().unwrap_or(0) > 0)
    }
}

/// Finishes a networked session, handing the outcome to the configured
/// sink first — the single recording site for the threaded driver, so a
/// session cannot be recorded twice no matter which pump arm ended it.
pub(crate) fn finish_recorded<M>(
    session: Session<M>,
    sink: Option<&Arc<dyn TraceSink>>,
    meta: &RunMeta,
) -> Outcome {
    let outcome = session.finish();
    if let Some(sink) = sink {
        sink.record(meta, &outcome);
    }
    outcome
}

/// The thread-per-session engine ([`Service::host_threaded`]): barrier on
/// attaches, then the ship / deliver / quiesce loop described in the
/// module docs. The reactor's `SessionSm` mirrors this arm for arm — the
/// differential suite pins the correspondence.
fn pump<M: Wire + Send>(
    sid: SessionId,
    mut session: Session<M>,
    entry: &SessionEntry<M>,
    inbox: Receiver<Inbound<M>>,
    cfg: &ServiceConfig,
) -> Result<Outcome, NetError> {
    let expected = entry.expected;
    let mut flight: FlightState<M> = FlightState::new(expected, cfg.auth);
    let (depth, mut rng) = match cfg.delivery {
        DeliveryOrder::Arrival => (0usize, None),
        DeliveryOrder::Shuffled { seed, depth } => (depth, Some(StdRng::seed_from_u64(seed ^ sid))),
    };

    // Attach barrier: every world process needs a relay before the first
    // message leaves the plane.
    let mut attached = vec![false; expected];
    let mut nattached = 0usize;
    let deadline = Instant::now() + cfg.attach_timeout;
    while nattached < expected {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(NetError::AttachTimeout {
                session: sid,
                attached: nattached,
                expected,
            });
        }
        match inbox.recv_timeout(left) {
            Ok(Inbound::Attached { player }) => {
                if !attached[player] {
                    attached[player] = true;
                    nattached += 1;
                }
            }
            Ok(Inbound::PeerGone { player }) => {
                if attached[player] {
                    attached[player] = false;
                    nattached -= 1;
                }
            }
            // Nothing has been shipped yet, so any early frame is a peer
            // improvising; hold it — it will be delivered in order.
            Ok(ev @ (Inbound::Msg { .. } | Inbound::Tampered { .. })) => {
                flight.absorb(ev);
                if let Some((conn, kind)) = flight.violation {
                    return Err(NetError::AuthFailure {
                        session: sid,
                        conn,
                        kind,
                    });
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                return Err(NetError::AttachTimeout {
                    session: sid,
                    attached: nattached,
                    expected,
                });
            }
            Err(RecvTimeoutError::Disconnected) => return Err(NetError::ServiceGone),
        }
    }

    loop {
        // 0. A tampering verdict (parse-layer event or replay detection)
        //    aborts the session with its typed owner before anything else.
        if let Some((conn, kind)) = flight.violation {
            return Err(NetError::AuthFailure {
                session: sid,
                conn,
                kind,
            });
        }
        // 1. Ship every freshly-sent message onto its network leg.
        for env in session.drain_outbox() {
            ship(entry, sid, env, &mut flight)?;
        }
        // 2. Dispatch local events (start signals stay on the plane).
        if !session.pending().is_empty() {
            if session.step().is_done() {
                // Mid-run Done can only be the budget guard: termination
                // with events pending is BudgetExhausted by construction.
                return Ok(finish_recorded(session, cfg.sink.as_ref(), &entry.meta));
            }
            continue;
        }
        // 3. Absorb everything the network has already handed back.
        loop {
            match inbox.try_recv() {
                Ok(inbound) => flight.absorb(inbound),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Err(NetError::ServiceGone),
            }
        }
        if let Some((conn, kind)) = flight.violation {
            return Err(NetError::AuthFailure {
                session: sid,
                conn,
                kind,
            });
        }
        // 4. Deliver one held frame — immediately under Arrival order,
        //    through the shuffle buffer otherwise (force-drained once
        //    nothing is left in flight, so the policy is always live).
        if !flight.held.is_empty() && (flight.held.len() > depth || flight.in_flight == 0) {
            let i = match &mut rng {
                Some(r) => r.gen_range(0..flight.held.len()),
                None => 0,
            };
            let env = flight.held.remove(i);
            if session.inject(env.src, env.dst, env.msg).progressed() && session.step().is_done() {
                // Budget guard mid-delivery.
                return Ok(finish_recorded(session, cfg.sink.as_ref(), &entry.meta));
            }
            continue;
        }
        // 5. Quiescence: plane drained, buffer empty, wire empty — the
        //    session's own verdict is now trustworthy.
        if flight.in_flight == 0 {
            debug_assert!(flight.held.is_empty());
            return match session.step() {
                SessionStatus::Done(_) => {
                    Ok(finish_recorded(session, cfg.sink.as_ref(), &entry.meta))
                }
                SessionStatus::Running => unreachable!("empty plane must terminate"),
            };
        }
        // 6. Traffic is in flight. A vanished relay is fatal only if its
        //    player still owes us frames (otherwise a replacement may yet
        //    attach, and sends to it will fail loudly at `ship`).
        if let Some(player) = flight.fatal_gone() {
            return Err(NetError::PeerVanished {
                session: sid,
                player,
            });
        }
        // 7. Block for the network.
        match inbox.recv_timeout(cfg.idle_timeout) {
            Ok(inbound) => flight.absorb(inbound),
            Err(RecvTimeoutError::Timeout) => {
                return Err(NetError::IdleTimeout {
                    session: sid,
                    in_flight: flight.in_flight,
                });
            }
            Err(RecvTimeoutError::Disconnected) => return Err(NetError::ServiceGone),
        }
    }
}

// ---------------------------------------------------------------------------
// One-call loopback runs
// ---------------------------------------------------------------------------

/// Runs `plan`'s `(kind, seed)` cell end-to-end over the in-memory
/// transport: a fresh single-session service, one relay client per world
/// process, outcome back on the caller's thread.
pub fn run_over_mem<P>(
    plan: &P,
    kind: &SchedulerKind,
    seed: u64,
    cfg: ServiceConfig,
) -> Result<Outcome, NetError>
where
    P: SessionPlan,
    P::Msg: Wire,
{
    let hub = MemTransport::new();
    let service = Service::with_config(Box::new(hub.listener()), cfg);
    run_session_with(plan, kind, seed, &service, || Ok(hub.connect()))
}

/// Runs `plan`'s `(kind, seed)` cell end-to-end over TCP loopback
/// (ephemeral port): real sockets, one relay connection per world process.
pub fn run_over_tcp<P>(
    plan: &P,
    kind: &SchedulerKind,
    seed: u64,
    cfg: ServiceConfig,
) -> Result<Outcome, NetError>
where
    P: SessionPlan,
    P::Msg: Wire,
{
    let transport = TcpTransport::bind_loopback()?;
    let addr = transport.addr();
    let service = Service::with_config(Box::new(transport), cfg);
    run_session_with(plan, kind, seed, &service, move || {
        TcpTransport::connect(addr)
    })
}

fn run_session_with<P, F>(
    plan: &P,
    kind: &SchedulerKind,
    seed: u64,
    service: &Service<P::Msg>,
    connect: F,
) -> Result<Outcome, NetError>
where
    P: SessionPlan,
    P::Msg: Wire,
    F: Fn() -> Result<ConnPair<P::Msg>, NetError> + Send + Sync,
{
    const SID: SessionId = 1;
    let handle = service.host_plan(SID, plan, kind.clone(), seed);
    let outcome = thread::scope(|scope| {
        let relays: Vec<_> = (0..plan.processes())
            .map(|player| {
                let connect = &connect;
                scope.spawn(move || -> Result<OutcomeSummary, NetError> {
                    let mut client = Client::from_pair(connect()?);
                    client.attach(SID, player)?;
                    client.relay()
                })
            })
            .collect();
        let outcome = handle.outcome();
        for relay in relays {
            // Relay results only matter when the hosted run itself failed
            // (they then carry the transport-side reason).
            let relay_result = relay.join().expect("relay panicked");
            if outcome.is_err() {
                relay_result?;
            }
        }
        outcome
    });
    outcome
}
