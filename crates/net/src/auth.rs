//! Authenticated frames: per-pair keyed MACs over the wire format.
//!
//! The paper's model assumes **reliable private channels** between every
//! pair of processes. The transport plane up to PR 6 only half-honored
//! that: relays are content-blind by *convention*, but the codec is public
//! and nothing stops a hostile relay from decoding, rewriting, and
//! re-encoding a frame (the `tamper` module makes that attack a one-line
//! battery entry). This module makes the assumption real.
//!
//! **Construction.** The build container has no crates.io, so the PRF is a
//! hand-rolled SipHash-2-4 — the standard short-input keyed hash designed
//! exactly for this job (64-bit MAC, 128-bit key, 2 compression + 4
//! finalization rounds). The implementation below is checked against the
//! reference vectors from the SipHash paper (`siphash24_reference_vectors`).
//!
//! **Key schedule.** The service holds one 128-bit master [`AuthKey`].
//! Each authenticated `Msg` frame is MACed under a *pair key* derived from
//! `(session, src, dst)` by two domain-separated SipHash invocations of
//! the master key — so every directed channel of every session has its own
//! key, the paper's "private channel per pair" made literal. Relays never
//! see any key: the service MACs a frame when it ships and verifies when
//! the echo returns, so the relay's content-blind contract is now
//! *enforced* rather than assumed — any decode/rewrite/re-encode round
//! trip that changes a byte (payload, header, or the sequence number)
//! fails verification.
//!
//! **What the MAC covers.** Everything: the version byte, kind tag,
//! session, src, dst, the per-session sequence number, and the payload —
//! i.e. the whole frame body minus the trailing 8 MAC bytes. The sequence
//! number (fresh per shipped frame, checked off on return) turns the MAC
//! into replay protection as well; see [`TamperKind::Replayed`].
//!
//! What a MAC *cannot* do: prove delivery. A relay that silently drops a
//! frame is indistinguishable from a slow network, and surfaces as the
//! same [`IdleTimeout`](crate::NetError::IdleTimeout) it always did —
//! detection of *withholding* is the accountability layer's job, not the
//! channel's (DESIGN.md §10).

use std::fmt;

/// A 128-bit master key for a service's authenticated channels.
///
/// Hold one per service (pass it in [`ServiceConfig::auth`]); per-pair
/// keys are derived from it internally. Relays and clients never need it.
///
/// [`ServiceConfig::auth`]: crate::ServiceConfig
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AuthKey {
    k0: u64,
    k1: u64,
}

impl fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "AuthKey(..)")
    }
}

impl AuthKey {
    /// Builds a key from 16 raw bytes (little-endian halves).
    pub fn new(bytes: [u8; 16]) -> Self {
        AuthKey {
            k0: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }

    /// Deterministically expands a seed into a key (tests and benches;
    /// real deployments should inject 16 random bytes via [`AuthKey::new`]).
    pub fn from_seed(seed: u64) -> Self {
        AuthKey {
            k0: siphash24(seed, !seed, b"mediator-auth-k0"),
            k1: siphash24(!seed, seed, b"mediator-auth-k1"),
        }
    }

    /// The pair key for directed channel `(session, src, dst)`: two
    /// domain-separated PRF calls on the master key.
    fn pair_key(&self, session: u64, src: usize, dst: usize) -> (u64, u64) {
        let mut input = [0u8; 25];
        input[0..8].copy_from_slice(&session.to_le_bytes());
        input[8..16].copy_from_slice(&(src as u64).to_le_bytes());
        input[16..24].copy_from_slice(&(dst as u64).to_le_bytes());
        input[24] = 0;
        let k0 = siphash24(self.k0, self.k1, &input);
        input[24] = 1;
        let k1 = siphash24(self.k0, self.k1, &input);
        (k0, k1)
    }

    /// MACs an authenticated `Msg` frame body prefix (everything up to
    /// but excluding the trailing 8 MAC bytes) for channel
    /// `(session, src, dst)`.
    pub fn msg_mac(&self, session: u64, src: usize, dst: usize, prefix: &[u8]) -> [u8; 8] {
        let (k0, k1) = self.pair_key(session, src, dst);
        siphash24(k0, k1, prefix).to_le_bytes()
    }

    /// Verifies a received MAC in constant time over the tag bytes.
    #[must_use = "an unchecked verdict defeats the authentication layer"]
    pub fn verify_msg(
        &self,
        session: u64,
        src: usize,
        dst: usize,
        prefix: &[u8],
        mac: [u8; 8],
    ) -> AuthVerdict {
        let expect = self.msg_mac(session, src, dst, prefix);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(mac.iter()) {
            diff |= a ^ b;
        }
        if diff == 0 {
            AuthVerdict::Authentic
        } else {
            AuthVerdict::Forged
        }
    }
}

/// The outcome of a MAC check. `#[must_use]`: dropping a verdict on the
/// floor silently accepts forged traffic, so the compiler flags it.
#[must_use = "an unchecked verdict defeats the authentication layer"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthVerdict {
    /// The MAC matches: the frame is byte-identical to one this service
    /// sealed for this channel.
    Authentic,
    /// The MAC does not match: some byte changed in transit.
    Forged,
}

impl AuthVerdict {
    /// True for [`AuthVerdict::Authentic`].
    pub fn is_authentic(self) -> bool {
        matches!(self, AuthVerdict::Authentic)
    }
}

/// The authentication trailer an authenticated `Msg` frame carries: the
/// per-session sequence number assigned at ship time, and the SipHash-2-4
/// MAC over the rest of the frame body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthTag {
    /// Ship-time sequence number, unique per session. Checked off on
    /// return: a sequence number seen twice is a replay.
    pub seq: u64,
    /// SipHash-2-4 output (little-endian) under the channel's pair key.
    pub mac: [u8; 8],
}

/// How an authenticated session detected relay tampering — the typed
/// payload of [`NetError::AuthFailure`](crate::NetError::AuthFailure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperKind {
    /// A `Msg` frame arrived without an authentication trailer on a
    /// service that requires one: a relay stripped the MAC (the classic
    /// downgrade attack) or an unauthenticated peer is improvising.
    Downgrade,
    /// The MAC check failed: payload, routing header, or sequence number
    /// was rewritten in transit.
    BadMac,
    /// A valid frame arrived whose sequence number was already consumed:
    /// a replayed (or duplicated) echo.
    Replayed,
    /// An authenticated frame's body was cut short (the MAC trailer or
    /// payload is missing bytes).
    Truncated,
}

impl fmt::Display for TamperKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperKind::Downgrade => write!(f, "authentication trailer stripped (downgrade)"),
            TamperKind::BadMac => write!(f, "MAC verification failed"),
            TamperKind::Replayed => write!(f, "sequence number replayed"),
            TamperKind::Truncated => write!(f, "authenticated frame truncated"),
        }
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 (64-bit output), straight from the paper: 2 compression
/// rounds per 8-byte word, 4 finalization rounds, length byte folded into
/// the final word.
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    let tail = chunks.remainder();
    let mut last = [0u8; 8];
    last[..tail.len()].copy_from_slice(tail);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= m;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The first rows of the reference vector table from the SipHash
    /// paper (key `00 01 .. 0f`, message `[]`, `[0]`, `[0,1]`, …), output
    /// bytes little-endian.
    #[test]
    fn siphash24_reference_vectors() {
        const VECTORS: [[u8; 8]; 8] = [
            [0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72],
            [0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74],
            [0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d],
            [0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85],
            [0xb7, 0x87, 0x71, 0x27, 0xe0, 0x94, 0x27, 0xcf],
            [0x8d, 0xa6, 0x99, 0xcd, 0x64, 0x55, 0x76, 0x18],
            [0xce, 0xe3, 0xfe, 0x58, 0x6e, 0x46, 0xc9, 0xcb],
            [0x37, 0xd1, 0x01, 0x8b, 0xf5, 0x00, 0x02, 0xab],
        ];
        let key: Vec<u8> = (0u8..16).collect();
        let k0 = u64::from_le_bytes(key[..8].try_into().unwrap());
        let k1 = u64::from_le_bytes(key[8..].try_into().unwrap());
        let msg: Vec<u8> = (0u8..8).collect();
        for (len, expect) in VECTORS.iter().enumerate() {
            assert_eq!(
                siphash24(k0, k1, &msg[..len]),
                u64::from_le_bytes(*expect),
                "vector {len}"
            );
        }
    }

    #[test]
    fn pair_keys_separate_channels() {
        let master = AuthKey::from_seed(7);
        let body = b"same bytes";
        let a = master.msg_mac(1, 0, 1, body);
        let b = master.msg_mac(1, 1, 0, body);
        let c = master.msg_mac(2, 0, 1, body);
        assert_ne!(a, b, "direction must separate keys");
        assert_ne!(a, c, "session must separate keys");
        assert!(master.verify_msg(1, 0, 1, body, a).is_authentic());
        assert!(!master.verify_msg(1, 0, 1, b"other bytes", a).is_authentic());
    }

    #[test]
    fn single_bit_flip_fails_verification() {
        let master = AuthKey::from_seed(42);
        let body: Vec<u8> = (0..64).collect();
        let mac = master.msg_mac(9, 2, 3, &body);
        for byte in 0..body.len() {
            let mut flipped = body.clone();
            flipped[byte] ^= 1;
            assert!(
                !master.verify_msg(9, 2, 3, &flipped, mac).is_authentic(),
                "flip at byte {byte} must be detected"
            );
        }
    }
}
