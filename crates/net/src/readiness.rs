//! Readiness plumbing for the reactor: a hand-rolled `poll(2)` wrapper,
//! a wake-up primitive that bridges fd-based and notify-based sources,
//! and the non-blocking listener seam the reactor (the private engine
//! behind [`Service`](crate::Service)) accepts connections through.
//!
//! The repo builds with no crates.io access, so there is no `mio` to
//! lean on. The fd side is a direct FFI binding to `poll(2)` plus a
//! self-pipe (the classic trick: notify-based sources wake a sleeping
//! `poll` by writing one byte to a pipe the poller always watches). The
//! notify side is a token queue guarded by a mutex: in-memory transports
//! have no fd, so their pipes push a token and wake whichever wait the
//! reactor is parked in. When the reactor has **no** fd sources at all —
//! the pure `MemTransport` configuration the multi-thousand-session
//! benches run — the waker skips the kernel entirely and parks on a
//! condvar instead, so a frame arriving costs one atomic load on the
//! fast path and never a syscall.
//!
//! Wake-ups are deduplicated at two levels: a token already queued is
//! not queued twice, and the self-pipe/condvar is only signalled when
//! the reactor is actually asleep (an atomic state flag, swapped to
//! "awake" by the first waker so concurrent wakers don't pile up
//! syscalls).

use crate::frame::NetError;
use crate::transport::{ConnPair, FramedRx, FramedTx, PipeReader, PipeWriter};
use crate::wire::Wire;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Token a [`Waker`] associates with the accept side of a listener.
pub const ACCEPT_TOKEN: usize = usize::MAX;

// ---------------------------------------------------------------------------
// poll(2), via FFI (unix only — the build container is Linux)
// ---------------------------------------------------------------------------

#[cfg(unix)]
pub(crate) mod sys {
    //! The minimal libc surface the reactor needs, declared by hand: the
    //! container has no `libc` crate, but every Rust std binary already
    //! links the C library, so direct `extern "C"` bindings resolve.

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        /// File descriptor to watch.
        pub fd: i32,
        /// Requested events (`POLLIN` / `POLLOUT`).
        pub events: i16,
        /// Returned events.
        pub revents: i16,
    }

    /// Data may be read without blocking.
    pub const POLLIN: i16 = 0x001;
    /// Data may be written without blocking.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (always checked, never requested).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (always checked, never requested).
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    pub const O_NONBLOCK: i32 = 0o4000;

    /// Marks `fd` non-blocking (best effort; the self-pipe must never
    /// block the reactor or a waker).
    pub fn set_nonblocking(fd: i32) {
        // SAFETY: fcntl on an owned, open fd with valid constants.
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags >= 0 {
                let _ = fcntl(fd, F_SETFL, flags | O_NONBLOCK);
            }
        }
    }
}

/// What the reactor is currently doing, from a waker's point of view.
const AWAKE: u8 = 0;
const PARKED_CONDVAR: u8 = 1;
const PARKED_POLL: u8 = 2;

struct WakerState {
    /// Tokens signalled ready since the reactor last drained them.
    ready: Vec<usize>,
}

/// The reactor's wake-up handle: notify-based readiness sources (memory
/// pipes, cross-thread frame senders, `Service::host` callers) push a
/// token and nudge whichever wait the reactor is parked in. Shared via
/// `Arc` between the poller, the service handle, and every pipe watcher.
pub struct Waker {
    state: Mutex<WakerState>,
    cvar: Condvar,
    /// One of [`AWAKE`] / [`PARKED_CONDVAR`] / [`PARKED_POLL`]. The first
    /// waker swaps it back to [`AWAKE`] so only one wake signal is paid
    /// per sleep cycle.
    park: AtomicU8,
    /// Write end of the self-pipe (unix), used to interrupt `poll(2)`.
    #[cfg(unix)]
    pipe_wr: i32,
}

impl Waker {
    /// Marks `token` ready and wakes the reactor if it is parked.
    pub fn wake(&self, token: usize) {
        {
            let mut st = self.state.lock().expect("waker poisoned");
            if !st.ready.contains(&token) {
                st.ready.push(token);
            }
        }
        match self.park.swap(AWAKE, Ordering::AcqRel) {
            PARKED_CONDVAR => self.cvar.notify_all(),
            #[cfg(unix)]
            PARKED_POLL => {
                // SAFETY: pipe_wr is an owned, open, non-blocking fd for
                // the lifetime of the Waker (closed only in Drop, which
                // cannot race a `wake` holding the same Arc).
                unsafe {
                    let byte = 1u8;
                    let _ = sys::write(self.pipe_wr, &byte, 1);
                }
            }
            _ => {}
        }
    }

    /// Drains every token signalled since the last call.
    pub fn take_ready(&self, out: &mut Vec<usize>) {
        let mut st = self.state.lock().expect("waker poisoned");
        out.append(&mut st.ready);
    }

    /// True if any token is queued (used to skip sleeping entirely).
    pub fn has_ready(&self) -> bool {
        !self.state.lock().expect("waker poisoned").ready.is_empty()
    }
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the source was registered under.
    pub token: usize,
    /// Readable (or hung up / errored — the read will surface it).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// An fd-based readiness interest for one [`Poller::wait`] call.
#[derive(Debug, Clone, Copy)]
pub struct Interest {
    /// Token to report events under.
    pub token: usize,
    /// The fd to watch.
    pub fd: i32,
    /// Watch for readability.
    pub read: bool,
    /// Watch for writability.
    pub write: bool,
}

/// The reactor's wait primitive: `poll(2)` over fd interests plus the
/// [`Waker`] token queue, degrading to a pure condvar park when no fd
/// sources exist (the in-memory transport configuration).
pub struct Poller {
    waker: Arc<Waker>,
    /// Read end of the self-pipe (unix).
    #[cfg(unix)]
    pipe_rd: i32,
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
}

impl Poller {
    /// Builds a poller and its waker (self-pipe included on unix).
    pub fn new() -> Result<Self, NetError> {
        #[cfg(unix)]
        {
            let mut fds = [0i32; 2];
            // SAFETY: pipe(2) with a valid out-array of two fds.
            let rc = unsafe { sys::pipe(fds.as_mut_ptr()) };
            if rc != 0 {
                return Err(NetError::Io(std::io::ErrorKind::Other));
            }
            sys::set_nonblocking(fds[0]);
            sys::set_nonblocking(fds[1]);
            Ok(Poller {
                waker: Arc::new(Waker {
                    state: Mutex::new(WakerState { ready: Vec::new() }),
                    cvar: Condvar::new(),
                    park: AtomicU8::new(AWAKE),
                    pipe_wr: fds[1],
                }),
                pipe_rd: fds[0],
                fds: Vec::new(),
            })
        }
        #[cfg(not(unix))]
        {
            Ok(Poller {
                waker: Arc::new(Waker {
                    state: Mutex::new(WakerState { ready: Vec::new() }),
                    cvar: Condvar::new(),
                    park: AtomicU8::new(AWAKE),
                }),
            })
        }
    }

    /// The waker notify-based sources signal through.
    pub fn waker(&self) -> Arc<Waker> {
        Arc::clone(&self.waker)
    }

    /// Waits for readiness on `interests` (fd sources) or the waker
    /// queue (notify sources), whichever fires first, up to `timeout`.
    /// Fd events land in `events`; notify tokens in `notified`. Returns
    /// immediately when a token is already queued.
    pub fn wait(
        &mut self,
        interests: &[Interest],
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
        notified: &mut Vec<usize>,
    ) {
        events.clear();
        notified.clear();

        // Tokens queued while we were working: don't sleep at all, but
        // still sweep the fds (timeout zero) so neither source starves.
        let pending = self.waker.has_ready();
        let timeout = if pending {
            Some(Duration::ZERO)
        } else {
            timeout
        };

        if interests.is_empty() {
            self.park_condvar(timeout, notified);
            return;
        }

        #[cfg(unix)]
        self.park_poll(interests, timeout, events, notified);
        #[cfg(not(unix))]
        {
            // No fd support off unix: the reactor only registers fd
            // interests for TCP, which the non-unix build routes to the
            // threaded transport instead.
            let _ = interests;
            self.park_condvar(timeout, notified);
        }
    }

    fn park_condvar(&self, timeout: Option<Duration>, notified: &mut Vec<usize>) {
        let mut st = self.waker.state.lock().expect("waker poisoned");
        if st.ready.is_empty() {
            self.waker.park.store(PARKED_CONDVAR, Ordering::Release);
            // Re-check under the lock: a waker that pushed before we set
            // the flag left the queue non-empty; one that pushes after
            // will see the flag and notify.
            let deadline = timeout.unwrap_or(Duration::from_secs(3600));
            let mut remaining = deadline;
            let start = std::time::Instant::now();
            while st.ready.is_empty() {
                let (guard, res) = self
                    .waker
                    .cvar
                    .wait_timeout(st, remaining)
                    .expect("waker poisoned");
                st = guard;
                if res.timed_out() {
                    break;
                }
                match deadline.checked_sub(start.elapsed()) {
                    Some(left) if !left.is_zero() => remaining = left,
                    _ => break,
                }
            }
            self.waker.park.store(AWAKE, Ordering::Release);
        }
        notified.append(&mut st.ready);
    }

    #[cfg(unix)]
    fn park_poll(
        &mut self,
        interests: &[Interest],
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
        notified: &mut Vec<usize>,
    ) {
        self.fds.clear();
        self.fds.push(sys::PollFd {
            fd: self.pipe_rd,
            events: sys::POLLIN,
            revents: 0,
        });
        for it in interests {
            let mut ev = 0i16;
            if it.read {
                ev |= sys::POLLIN;
            }
            if it.write {
                ev |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd {
                fd: it.fd,
                events: ev,
                revents: 0,
            });
        }
        self.waker.park.store(PARKED_POLL, Ordering::Release);
        if self.waker.has_ready() {
            // A token slipped in before the flag was visible: don't sleep.
            self.waker.park.store(AWAKE, Ordering::Release);
        }
        let timeout_ms = if self.waker.park.load(Ordering::Acquire) == AWAKE {
            0 // A token is already queued: poll once without sleeping.
        } else {
            match timeout {
                None => -1,
                Some(d) => i32::try_from(d.as_millis().min(3_600_000)).unwrap_or(i32::MAX),
            }
        };
        // SAFETY: fds points at an owned, correctly-sized pollfd array.
        let rc = unsafe { sys::poll(self.fds.as_mut_ptr(), self.fds.len() as u64, timeout_ms) };
        self.waker.park.store(AWAKE, Ordering::Release);
        if rc > 0 {
            if self.fds[0].revents != 0 {
                // Drain the self-pipe completely (it is non-blocking).
                let mut sink = [0u8; 64];
                // SAFETY: owned open fd, valid buffer.
                while unsafe { sys::read(self.pipe_rd, sink.as_mut_ptr(), sink.len()) } > 0 {}
            }
            for (pfd, it) in self.fds[1..].iter().zip(interests) {
                let re = pfd.revents;
                if re == 0 {
                    continue;
                }
                events.push(Event {
                    token: it.token,
                    // HUP/ERR surface as readability: the next read
                    // reports EOF or the error, which is the teardown
                    // signal the reactor wants.
                    readable: re & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
                    writable: re & (sys::POLLOUT | sys::POLLERR) != 0,
                });
            }
        }
        self.waker.take_ready(notified);
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: both fds are owned by this poller/waker pair and closed
        // exactly once; the waker's Arc cannot outlive the reactor that
        // owns the poller in this crate's usage, and a late `wake` on a
        // closed fd is harmless (EBADF is ignored).
        unsafe {
            let _ = sys::close(self.pipe_rd);
            let _ = sys::close(self.waker.pipe_wr);
        }
    }
}

// ---------------------------------------------------------------------------
// Non-blocking connections and listeners
// ---------------------------------------------------------------------------

/// What one non-blocking read attempt observed.
#[derive(Debug)]
pub enum TryRead {
    /// `n` bytes were copied out.
    Data(usize),
    /// Nothing available now; readiness will signal.
    WouldBlock,
    /// The peer hung up cleanly (no more bytes, ever).
    Eof,
    /// The stream died.
    Err(NetError),
}

/// What one non-blocking write attempt observed.
#[derive(Debug)]
pub enum TryWrite {
    /// `n` bytes were accepted.
    Wrote(usize),
    /// The sink is full; writability will signal.
    WouldBlock,
    /// The stream died.
    Err(NetError),
}

/// A raw byte-level connection the reactor drives: either a non-blocking
/// TCP stream (fd-polled) or an in-memory pipe pair (notify-based via
/// the pipe watcher shim). The reactor owns the framing on top.
pub enum ConnIo {
    /// A non-blocking `std::net` TCP stream.
    Tcp(TcpStream),
    /// An in-memory duplex endpoint.
    Mem {
        /// Inbound bytes (watched for readiness).
        rx: PipeReader,
        /// Outbound bytes (never blocks; unbounded).
        tx: PipeWriter,
    },
}

impl ConnIo {
    /// Registers readiness delivery: fd-based sources return their fd for
    /// the poll set; notify-based sources hook `waker`/`token` and return
    /// `None`.
    pub fn register(&mut self, waker: &Arc<Waker>, token: usize) -> Option<i32> {
        match self {
            ConnIo::Tcp(stream) => {
                let _ = stream.set_nonblocking(true);
                #[cfg(unix)]
                {
                    use std::os::unix::io::AsRawFd;
                    Some(stream.as_raw_fd())
                }
                #[cfg(not(unix))]
                None
            }
            ConnIo::Mem { rx, .. } => {
                rx.watch(Arc::clone(waker), token);
                None
            }
        }
    }

    /// Non-blocking read into `buf`.
    pub fn try_read(&mut self, buf: &mut [u8]) -> TryRead {
        match self {
            ConnIo::Tcp(stream) => loop {
                match stream.read(buf) {
                    Ok(0) => return TryRead::Eof,
                    Ok(n) => return TryRead::Data(n),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return TryRead::WouldBlock
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::ConnectionReset
                                | std::io::ErrorKind::ConnectionAborted
                                | std::io::ErrorKind::BrokenPipe
                                | std::io::ErrorKind::UnexpectedEof
                        ) =>
                    {
                        return TryRead::Eof
                    }
                    Err(e) => return TryRead::Err(e.into()),
                }
            },
            ConnIo::Mem { rx, .. } => rx.try_read(buf),
        }
    }

    /// Converts back into blocking framed halves (TCP streams are
    /// switched to blocking mode first). Useful for tests and tools that
    /// accept through an [`NbListener`] but want the simple blocking
    /// codec view.
    pub fn into_framed<M: Wire + 'static>(self) -> Result<ConnPair<M>, NetError> {
        match self {
            ConnIo::Tcp(stream) => {
                stream.set_nonblocking(false)?;
                let reader = stream.try_clone()?;
                Ok((
                    Box::new(FramedTx::new(stream)),
                    Box::new(FramedRx::new(reader)),
                ))
            }
            ConnIo::Mem { rx, tx } => {
                Ok((Box::new(FramedTx::new(tx)), Box::new(FramedRx::new(rx))))
            }
        }
    }

    /// Non-blocking write of `buf`.
    pub fn try_write(&mut self, buf: &[u8]) -> TryWrite {
        match self {
            ConnIo::Tcp(stream) => loop {
                match stream.write(buf) {
                    Ok(n) => return TryWrite::Wrote(n),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return TryWrite::WouldBlock
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return TryWrite::Err(e.into()),
                }
            },
            ConnIo::Mem { tx, .. } => match tx.write(buf) {
                Ok(n) => TryWrite::Wrote(n),
                Err(e) => TryWrite::Err(e.into()),
            },
        }
    }
}

/// The accept seam the reactor polls: a backend that can hand over raw
/// non-blocking connections as they arrive. Replaces the PR 5 blocking
/// `Listener` (whose dedicated accept thread the reactor absorbed).
pub trait NbListener: Send {
    /// Registers accept-readiness delivery under [`ACCEPT_TOKEN`];
    /// fd-based listeners return their fd for the poll set.
    fn register(&mut self, waker: &Arc<Waker>) -> Option<i32>;

    /// Accepts one pending connection, or `None` when the backlog is
    /// empty right now.
    fn try_accept(&mut self) -> Result<Option<ConnIo>, NetError>;

    /// Stops accepting: subsequent dials are refused the way a dead TCP
    /// port refuses them (idempotent).
    fn close(&mut self);
}

impl NbListener for TcpListener {
    fn register(&mut self, _waker: &Arc<Waker>) -> Option<i32> {
        let _ = self.set_nonblocking(true);
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            Some(self.as_raw_fd())
        }
        #[cfg(not(unix))]
        None
    }

    fn try_accept(&mut self) -> Result<Option<ConnIo>, NetError> {
        loop {
            match self.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(Some(ConnIo::Tcp(stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // A peer that vanished between SYN and accept is not an
                // accept-loop failure.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn close(&mut self) {
        // Nothing to do eagerly: the listener socket closes when the
        // reactor drops it, which refuses later dials at the OS level.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn waker_tokens_are_deduplicated_and_drained() {
        let poller = Poller::new().expect("poller");
        let waker = poller.waker();
        waker.wake(3);
        waker.wake(3);
        waker.wake(7);
        let mut out = Vec::new();
        waker.take_ready(&mut out);
        assert_eq!(out, vec![3, 7]);
        waker.take_ready(&mut out);
        assert_eq!(out, vec![3, 7], "drained queue appends nothing");
    }

    #[test]
    fn condvar_park_wakes_on_notify() {
        let mut poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake(5);
        });
        let (mut events, mut notified) = (Vec::new(), Vec::new());
        let start = Instant::now();
        poller.wait(
            &[],
            Some(Duration::from_secs(5)),
            &mut events,
            &mut notified,
        );
        assert!(start.elapsed() < Duration::from_secs(4), "woke early");
        assert_eq!(notified, vec![5]);
        t.join().expect("waker thread");
    }

    #[test]
    fn condvar_park_times_out() {
        let mut poller = Poller::new().expect("poller");
        let (mut events, mut notified) = (Vec::new(), Vec::new());
        let start = Instant::now();
        poller.wait(
            &[],
            Some(Duration::from_millis(30)),
            &mut events,
            &mut notified,
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert!(notified.is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn poll_park_sees_fd_readiness_and_waker_interrupt() {
        use std::io::Write as _;
        use std::os::unix::io::AsRawFd;
        // A real TCP socketpair gives us an fd with controllable
        // readability.
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("dial");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        let interests = [Interest {
            token: 9,
            fd: server.as_raw_fd(),
            read: true,
            write: false,
        }];
        let (mut events, mut notified) = (Vec::new(), Vec::new());

        // Nothing readable yet: times out.
        poller.wait(
            &interests,
            Some(Duration::from_millis(20)),
            &mut events,
            &mut notified,
        );
        assert!(events.is_empty());

        // Bytes arrive: poll reports the token readable.
        client.write_all(b"x").expect("write");
        poller.wait(
            &interests,
            Some(Duration::from_secs(5)),
            &mut events,
            &mut notified,
        );
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 9);
        assert!(events[0].readable);

        // A waker interrupts a poll park even with no fd activity.
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake(11);
        });
        // Drain the byte first so the fd is quiet.
        let mut sink = [0u8; 8];
        let mut server_rd = &server;
        let _ = std::io::Read::read(&mut server_rd, &mut sink);
        let start = Instant::now();
        poller.wait(
            &interests,
            Some(Duration::from_secs(5)),
            &mut events,
            &mut notified,
        );
        assert!(start.elapsed() < Duration::from_secs(4));
        assert_eq!(notified, vec![11]);
        t.join().expect("waker thread");
    }
}
