//! The sharding plane: one coordinator leasing conformance sweep units to
//! workers over the wire, with verdicts bit-identical to a local sweep.
//!
//! A [`Conformance`] sweep is embarrassingly parallel *if* the honest-
//! baseline pairing survives the split: every deviant cell's confidence
//! interval is paired run-by-run against the baseline grid (common random
//! numbers), so the unit of distribution must be a whole `(strategy,
//! coalition)` grid, never a slice of one. [`mediator_core::sweep_units`]
//! decomposes the sweep exactly that way, and workers ship back per-run
//! *resolved action profiles* — the portable integers utilities are a
//! deterministic function of — so [`mediator_core::render_sweep_report`]
//! on the coordinator reproduces the local float pipeline bit for bit.
//!
//! The protocol is pull-based and lease-oriented:
//!
//! 1. A worker sends [`Frame::ShardRequest`]; the coordinator answers with
//!    a [`Frame::ShardGrant`] lease on the next pending unit (or holds the
//!    request until one frees up).
//! 2. The worker runs the unit's whole grid and replies
//!    [`Frame::ShardResult`] — sealed under [`WIRE_VERSION_AUTH`] when the
//!    sweep runs authenticated — then requests again.
//! 3. A lease outlives its deadline, or its worker's connection drops:
//!    the coordinator reclaims the unit onto the queue (back of the FIFO)
//!    and records a typed owner — [`NetError::IdleTimeout`] for a lapsed
//!    lease, [`NetError::PeerVanished`] for a vanished worker. First
//!    result wins; late duplicates are discarded, never double-counted.
//! 4. When the grid is complete the coordinator renders the verdict. A
//!    `Violated` verdict triggers one more lease: the witness `(unit,
//!    run)` cell is re-enacted by a worker ([`Frame::ShardWitness`]),
//!    cross-checked against the verdict's deviant profile, and recorded
//!    to the worker's trace sink — sharded witnesses stay replayable.
//! 5. [`Frame::ShardDrain`] tells each worker the sweep is over.
//!
//! Liveness requires at least one live worker: the coordinator re-leases
//! reclaimed units forever rather than guessing a partial verdict.
//!
//! [`WIRE_VERSION_AUTH`]: crate::wire::WIRE_VERSION_AUTH

use crate::auth::{AuthKey, AuthTag, TamperKind};
use crate::frame::{Frame, NetError, RejectReason, SHARD_COORD};
use crate::tamper::TransportKind;
use crate::transport::{
    ConnPair, FrameRx, FrameTx, FramedRx, FramedTx, MemTransport, TcpTransport,
};
use mediator_core::{
    render_sweep_report, run_sweep_cell, run_sweep_unit, sweep_units, Conformance,
    ConformanceReport, ConformanceVerdict, LeaseLedger, SweepPlan, SweepUnit,
};
use mediator_games::BayesianGame;
use mediator_sim::{RunMeta, TraceSink};
use std::collections::{BTreeMap, BTreeSet};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The message type parameter shard connections carry. Shard frames never
/// embed a protocol message, so any [`crate::wire::Wire`] type would do;
/// pinning one keeps every coordinator/worker signature aligned.
pub type ShardFrame = Frame<u64>;

/// A deferred force-close for a worker connection (TCP socket shutdown;
/// `None` where dropping the sender half is teardown enough).
type Closer = Option<Box<dyn FnOnce() + Send>>;

/// How many times the witness re-enactment may disagree with the verdict's
/// recorded profile before the coordinator declares a determinism bug. One
/// disagreement is a hostile worker; the same disagreement from every
/// replacement worker means the grid itself is not reproducible.
const WITNESS_TRIES: usize = 3;

/// Knobs shared by the coordinator and its workers.
#[derive(Clone)]
pub struct ShardConfig {
    /// How long a leased unit may stay out before the coordinator
    /// reclaims and re-leases it ([`NetError::IdleTimeout`] owner).
    pub lease_deadline: Duration,
    /// When set, `ShardResult` frames travel sealed under
    /// [`crate::wire::WIRE_VERSION_AUTH`] and the coordinator rejects
    /// plain or forged results (typed [`NetError::AuthFailure`]).
    pub auth: Option<AuthKey>,
    /// Where a worker records the re-enacted witness cell's outcome, so a
    /// sharded `Violated` verdict replays like a local one.
    pub sink: Option<Arc<dyn TraceSink>>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            lease_deadline: Duration::from_secs(2),
            auth: None,
            sink: None,
        }
    }
}

impl ShardConfig {
    /// Sets the lease deadline.
    pub fn lease_deadline(mut self, deadline: Duration) -> Self {
        self.lease_deadline = deadline;
        self
    }

    /// Authenticates `ShardResult` frames under `key`.
    pub fn auth(mut self, key: AuthKey) -> Self {
        self.auth = Some(key);
        self
    }

    /// Records re-enacted witness cells to `sink`.
    pub fn sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }
}

/// What the coordinator saw while the sweep ran: every typed failure it
/// absorbed, and the lease-ledger accounting that proves no cell was
/// double-counted.
#[derive(Debug, Default)]
pub struct ShardLog {
    /// Typed failures absorbed without changing the verdict: vanished
    /// workers ([`NetError::PeerVanished`]), lapsed leases
    /// ([`NetError::IdleTimeout`]), tampered or malformed results
    /// ([`NetError::AuthFailure`] / [`NetError::Rejected`]).
    pub failures: Vec<NetError>,
    /// Units reclaimed and re-leased (expiry + vanish).
    pub releases: usize,
    /// Late or duplicate results discarded after a first result won.
    pub discarded: usize,
    /// Grid units the sweep decomposed into (baseline included; the
    /// witness re-enactment lease is not counted).
    pub units: usize,
    /// Distinct worker ids that requested leases.
    pub workers: usize,
    /// True when a `Violated` verdict's witness cell was re-enacted by a
    /// worker and matched the verdict's recorded profile.
    pub witness_reenacted: bool,
}

/// Where the coordinator listens for worker connections.
pub enum ShardListener {
    /// An in-memory hub ([`MemTransport`]); workers dial with
    /// [`worker_mem`].
    Mem(MemTransport),
    /// A loopback TCP listener; workers dial [`ShardListener::addr`] with
    /// [`worker_tcp`].
    Tcp {
        /// The bound listener.
        listener: TcpListener,
        /// Its bound address.
        addr: SocketAddr,
        /// Set on unblock: the next accepted connection is the
        /// coordinator's own wake-up dial, not a worker.
        stop: Arc<AtomicBool>,
    },
}

impl ShardListener {
    /// Listens on an in-memory hub.
    pub fn mem(hub: &MemTransport) -> Self {
        ShardListener::Mem(hub.clone())
    }

    /// Binds a fresh loopback TCP listener on an ephemeral port.
    pub fn tcp() -> Result<Self, NetError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        Ok(ShardListener::Tcp {
            listener,
            addr,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The TCP address workers should dial (`None` for the mem hub).
    pub fn addr(&self) -> Option<SocketAddr> {
        match self {
            ShardListener::Mem(_) => None,
            ShardListener::Tcp { addr, .. } => Some(*addr),
        }
    }

    /// Blocks for the next worker connection; `None` once unblocked. The
    /// second element force-closes the connection from the coordinator
    /// side (needed for TCP, where dropping one stream clone does not
    /// shut the socket down).
    fn accept(&self) -> Option<(ConnPair<u64>, Closer)> {
        match self {
            ShardListener::Mem(hub) => {
                let (w, r) = hub.accept()?;
                let conn: ConnPair<u64> = (Box::new(FramedTx::new(w)), Box::new(FramedRx::new(r)));
                // Mem pipes close a direction when its writer drops, so
                // dropping the registered tx half is teardown enough.
                Some((conn, None))
            }
            ShardListener::Tcp { listener, stop, .. } => {
                let (stream, _) = listener.accept().ok()?;
                if stop.load(Ordering::SeqCst) {
                    return None;
                }
                let _ = stream.set_nodelay(true);
                let read = stream.try_clone().ok()?;
                let closer = stream.try_clone().ok().map(|s| {
                    Box::new(move || {
                        let _ = s.shutdown(std::net::Shutdown::Both);
                    }) as Box<dyn FnOnce() + Send>
                });
                let conn: ConnPair<u64> = (
                    Box::new(FramedTx::new(stream)),
                    Box::new(FramedRx::new(read)),
                );
                Some((conn, closer))
            }
        }
    }

    /// Wakes a blocked [`ShardListener::accept`] so the accept loop can
    /// exit: closes the mem hub, or self-dials the TCP listener after
    /// raising the stop flag.
    fn unblock(&self) {
        match self {
            ShardListener::Mem(hub) => hub.close(),
            ShardListener::Tcp { addr, stop, .. } => {
                stop.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(*addr);
            }
        }
    }
}

/// The sweep's phase: leasing grid units, re-enacting the witness cell,
/// or telling workers to drain.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Grid,
    Witness,
    Drain,
}

/// The lease the witness re-enactment travels under: which sweep unit and
/// flat run index to re-run, and the profile the verdict recorded for it.
struct WitnessLease {
    unit: usize,
    run: usize,
    expect: Vec<usize>,
    tries: usize,
}

/// One live connection's coordinator-side send half plus its force-closer,
/// registered so drain can reach workers that are *not* holding a pending
/// request (a muted worker never requests again, yet still deserves the
/// drain frame — and its handler must not pin the coordinator's scope).
struct ConnSlot {
    tx: Option<Box<dyn FrameTx<u64>>>,
    close: Closer,
}

impl ConnSlot {
    /// Best-effort send; a send after teardown (or on a dead pipe) is
    /// surfaced by the connection's next recv instead.
    fn send(&mut self, frame: &ShardFrame) {
        if let Some(tx) = self.tx.as_mut() {
            let _ = tx.send(frame);
        }
    }
}

/// Everything the connection handlers share under one lock.
struct CoordState {
    ledger: LeaseLedger,
    profiles: Vec<Option<Vec<Vec<usize>>>>,
    phase: Phase,
    witness: Option<WitnessLease>,
    witness_ok: bool,
    failures: Vec<NetError>,
    workers: BTreeSet<u64>,
    /// Next acceptable `AuthTag::seq` per worker (strictly monotonic; a
    /// lower sequence number is a replay).
    seqs: BTreeMap<u64, u64>,
}

/// The coordinator's shared context: locked state, the wake-up Condvar,
/// and the immutable sweep geometry handlers validate results against.
struct Coord<'a> {
    state: Mutex<CoordState>,
    cvar: Condvar,
    conns: Mutex<Vec<Arc<Mutex<ConnSlot>>>>,
    units: &'a [SweepUnit],
    grid_units: usize,
    runs_per_unit: usize,
    players: usize,
    start: Instant,
    deadline: u64,
    auth: Option<&'a AuthKey>,
}

impl Coord<'_> {
    /// Milliseconds since the sweep started — the lease ledger's clock.
    fn now(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// The ledger id of the witness re-enactment lease (one past the
    /// grid).
    fn witness_id(&self) -> u64 {
        self.grid_units as u64
    }

    /// Records a refused result and reclaims the offending worker's
    /// leases back onto the queue (nothing is lost to a bad result — the
    /// unit is simply re-leased).
    fn refuse(&self, st: &mut CoordState, worker: Option<u64>, err: NetError) {
        st.failures.push(err);
        if let Some(w) = worker {
            let _ = st.ledger.vanish(w);
        }
        self.cvar.notify_all();
    }

    /// Builds the grant frame for a ledger id: a whole-grid lease for a
    /// grid unit, the single-run re-enactment lease for the witness id.
    fn grant_frame(&self, st: &CoordState, id: u64) -> ShardFrame {
        if (id as usize) < self.grid_units {
            let u = &self.units[id as usize];
            Frame::ShardGrant {
                unit: id,
                strategy: u.strategy.clone(),
                coalition: u.coalition.clone(),
                run: None,
            }
        } else {
            let w = st
                .witness
                .as_ref()
                .expect("the witness id is only enqueued with a witness lease");
            let u = &self.units[w.unit];
            Frame::ShardGrant {
                unit: w.unit as u64,
                strategy: u.strategy.clone(),
                coalition: u.coalition.clone(),
                run: Some(w.run as u64),
            }
        }
    }

    /// One connection's handler: hold requests until a grant (or drain)
    /// is available, settle results against the ledger, and reclaim the
    /// worker's leases when the connection dies.
    fn handle(&self, slot: Arc<Mutex<ConnSlot>>, mut rx: Box<dyn FrameRx<u64>>, conn: u64) {
        let mut me: Option<u64> = None;
        loop {
            match rx.recv() {
                Ok(Frame::ShardRequest { worker }) => {
                    me = Some(worker);
                    let frame = {
                        let mut st = self.state.lock().expect("coordinator state poisoned");
                        st.workers.insert(worker);
                        loop {
                            if st.phase == Phase::Drain {
                                break Frame::ShardDrain;
                            }
                            if let Some(id) = st.ledger.grant(worker, self.now(), self.deadline) {
                                break self.grant_frame(&st, id);
                            }
                            st = self.cvar.wait(st).expect("coordinator state poisoned");
                        }
                    };
                    // A failed send is not handled here: the next recv on
                    // this connection errors and the vanish path reclaims
                    // whatever lease the grant carried.
                    slot.lock().expect("conn slot poisoned").send(&frame);
                }
                Ok(Frame::ShardResult {
                    unit,
                    worker,
                    profiles,
                    auth,
                }) => {
                    let mut st = self.state.lock().expect("coordinator state poisoned");
                    if let Some(key) = self.auth {
                        match auth {
                            // An auth-configured sweep refuses plain
                            // results: accepting one would let a relay
                            // strip the trailer and forge a verdict.
                            None => {
                                self.refuse(
                                    &mut st,
                                    Some(worker),
                                    NetError::AuthFailure {
                                        session: unit,
                                        conn,
                                        kind: TamperKind::Downgrade,
                                    },
                                );
                                continue;
                            }
                            Some(tag) => {
                                let mut body = Vec::with_capacity(64);
                                Frame::<u64>::ShardResult {
                                    unit,
                                    worker,
                                    profiles: profiles.clone(),
                                    auth: Some(tag),
                                }
                                .encode_body(&mut body);
                                let prefix = &body[..body.len() - 8];
                                if !key
                                    .verify_msg(unit, worker as usize, SHARD_COORD, prefix, tag.mac)
                                    .is_authentic()
                                {
                                    self.refuse(
                                        &mut st,
                                        Some(worker),
                                        NetError::AuthFailure {
                                            session: unit,
                                            conn,
                                            kind: TamperKind::BadMac,
                                        },
                                    );
                                    continue;
                                }
                                let expected = st.seqs.entry(worker).or_insert(0);
                                if tag.seq < *expected {
                                    self.refuse(
                                        &mut st,
                                        Some(worker),
                                        NetError::AuthFailure {
                                            session: unit,
                                            conn,
                                            kind: TamperKind::Replayed,
                                        },
                                    );
                                    continue;
                                }
                                *expected = tag.seq + 1;
                            }
                        }
                    }
                    let shape_ok = (unit as usize) < self.grid_units
                        && profiles.len() == self.runs_per_unit
                        && profiles.iter().all(|p| p.len() == self.players);
                    if !shape_ok {
                        self.refuse(
                            &mut st,
                            Some(worker),
                            NetError::Rejected {
                                session: unit,
                                reason: RejectReason::TamperDetected,
                            },
                        );
                        continue;
                    }
                    // First result wins; `complete` refuses late
                    // duplicates (ledger `discarded`), so a re-leased
                    // unit can never be double-counted.
                    if st.ledger.complete(unit) {
                        st.profiles[unit as usize] = Some(profiles);
                        self.cvar.notify_all();
                    }
                }
                Ok(Frame::ShardWitness { unit, run, profile }) => {
                    let mut st = self.state.lock().expect("coordinator state poisoned");
                    let verdict = match &st.witness {
                        Some(w) if unit as usize == w.unit && run as usize == w.run => {
                            Some(profile == w.expect)
                        }
                        _ => None,
                    };
                    match verdict {
                        Some(true) => {
                            if st.ledger.complete(self.witness_id()) {
                                st.witness_ok = true;
                                self.cvar.notify_all();
                            }
                        }
                        Some(false) => {
                            let w = st.witness.as_mut().expect("checked above");
                            w.tries += 1;
                            if w.tries >= WITNESS_TRIES {
                                panic!(
                                    "witness re-enactment diverged {WITNESS_TRIES} times: \
                                     unit {unit} run {run} is not reproducible — the grid \
                                     determinism the verdict rests on is broken"
                                );
                            }
                            // One divergence is a hostile worker, not a
                            // determinism bug: refuse it and re-lease the
                            // cell to someone else.
                            self.refuse(
                                &mut st,
                                me,
                                NetError::Rejected {
                                    session: unit,
                                    reason: RejectReason::TamperDetected,
                                },
                            );
                        }
                        // A witness nobody asked for; count it discarded.
                        None => st.discard(),
                    }
                }
                // Request/grant/drain never travel worker → coordinator
                // in well-formed traffic; tolerate strays.
                Ok(_) => {}
                Err(_) => {
                    // Connection gone (orderly after drain, or a crash).
                    // Reclaim anything the worker still held; each
                    // reclaimed unit gets a typed vanish owner.
                    let mut st = self.state.lock().expect("coordinator state poisoned");
                    if let Some(w) = me {
                        let reclaims = st.ledger.vanish(w);
                        if !reclaims.is_empty() {
                            for r in reclaims {
                                st.failures.push(NetError::PeerVanished {
                                    session: r.unit(),
                                    player: w as usize,
                                });
                            }
                            self.cvar.notify_all();
                        }
                    }
                    return;
                }
            }
        }
    }

    /// The main loop: expire lapsed leases, render the report once the
    /// grid completes, run the witness phase, then flip to drain.
    fn drive(&self, game: &BayesianGame, types: &[usize], conf: &Conformance) -> ConformanceReport {
        let mut report: Option<ConformanceReport> = None;
        loop {
            let mut st = self.state.lock().expect("coordinator state poisoned");
            let now = self.now();
            let lapsed = st.ledger.expire(now);
            if !lapsed.is_empty() {
                for r in lapsed {
                    st.failures.push(NetError::IdleTimeout {
                        session: r.unit(),
                        in_flight: 1,
                    });
                }
                self.cvar.notify_all();
            }
            match st.phase {
                Phase::Grid => {
                    if st.profiles.iter().all(|p| p.is_some()) {
                        let profiles: Vec<Vec<Vec<usize>>> = st
                            .profiles
                            .iter()
                            .map(|p| p.clone().expect("all some"))
                            .collect();
                        let rep = render_sweep_report(game, types, conf, self.units, &profiles);
                        if let ConformanceVerdict::Violated(w) = &rep.verdict {
                            st.witness = Some(WitnessLease {
                                unit: w.unit,
                                run: w.run,
                                expect: w.deviant_profile.clone(),
                                tries: 0,
                            });
                            st.ledger.enqueue(self.witness_id());
                            st.phase = Phase::Witness;
                        } else {
                            st.phase = Phase::Drain;
                        }
                        report = Some(rep);
                        self.cvar.notify_all();
                    }
                }
                Phase::Witness => {
                    if st.witness_ok {
                        st.phase = Phase::Drain;
                        self.cvar.notify_all();
                    }
                }
                Phase::Drain => {}
            }
            if st.phase == Phase::Drain {
                return report.expect("drain is only reached after the report renders");
            }
            // Sleep until the earliest lease could lapse; completions
            // notify the Condvar, so the timeout only bounds expiry
            // latency.
            let wait = st
                .ledger
                .next_due()
                .map(|due| due.saturating_sub(now))
                .unwrap_or(1000)
                .clamp(1, 1000);
            let _ = self
                .cvar
                .wait_timeout(st, Duration::from_millis(wait))
                .expect("coordinator state poisoned");
        }
    }
}

impl CoordState {
    /// Counts a stray frame nobody asked for (same accounting bucket as
    /// the ledger's late-duplicate results).
    fn discard(&mut self) {
        self.ledger.discarded += 1;
    }
}

/// Runs a sharded conformance sweep as its coordinator: decomposes the
/// sweep into leasable units, serves workers arriving on `listener`, and
/// renders the verdict from their results.
///
/// The returned report is **bit-identical** to
/// `conf`'s local sweep of the same `(plan, game, types)` — the same
/// profiles flow through the same float pipeline — regardless of worker
/// count, scheduling, or how many leases were reclaimed along the way.
/// The [`ShardLog`] carries the typed failures and release/discard
/// accounting.
pub fn coordinate<P: SweepPlan>(
    listener: &ShardListener,
    plan: &P,
    game: &BayesianGame,
    types: &[usize],
    conf: &Conformance,
    cfg: &ShardConfig,
) -> (ConformanceReport, ShardLog) {
    let units = sweep_units(plan, conf);
    let grid_units = units.len();
    let runs_per_unit =
        conf.resolved_battery(plan.players()).len() * conf.seeds_per_kind() as usize;
    let mut ledger = LeaseLedger::new();
    for id in 0..grid_units as u64 {
        ledger.enqueue(id);
    }
    let coord = Coord {
        state: Mutex::new(CoordState {
            ledger,
            profiles: vec![None; grid_units],
            phase: Phase::Grid,
            witness: None,
            witness_ok: false,
            failures: Vec::new(),
            workers: BTreeSet::new(),
            seqs: BTreeMap::new(),
        }),
        cvar: Condvar::new(),
        conns: Mutex::new(Vec::new()),
        units: &units,
        grid_units,
        runs_per_unit,
        players: plan.players(),
        start: Instant::now(),
        deadline: cfg.lease_deadline.as_millis().max(1) as u64,
        auth: cfg.auth.as_ref(),
    };
    let report = std::thread::scope(|s| {
        let coord = &coord;
        s.spawn(move || {
            let mut conn = 0u64;
            while let Some(((tx, rx), close)) = listener.accept() {
                conn += 1;
                let slot = Arc::new(Mutex::new(ConnSlot {
                    tx: Some(tx),
                    close,
                }));
                coord
                    .conns
                    .lock()
                    .expect("conn registry poisoned")
                    .push(Arc::clone(&slot));
                s.spawn(move || coord.handle(slot, rx, conn));
            }
        });
        let report = coord.drive(game, types, conf);
        // Drain reached: wake the accept loop, then broadcast the drain
        // frame on every live connection and tear it down from this side
        // — a worker that stopped requesting (muted, hostile, wedged)
        // still hears the drain, and its handler cannot pin the scope.
        listener.unblock();
        for slot in coord
            .conns
            .lock()
            .expect("conn registry poisoned")
            .drain(..)
        {
            let mut slot = slot.lock().expect("conn slot poisoned");
            slot.send(&Frame::ShardDrain);
            slot.tx = None;
            if let Some(close) = slot.close.take() {
                close();
            }
        }
        report
    });
    let st = coord
        .state
        .into_inner()
        .expect("coordinator state poisoned");
    let log = ShardLog {
        failures: st.failures,
        releases: st.ledger.releases,
        discarded: st.ledger.discarded,
        units: grid_units,
        workers: st.workers.len(),
        witness_reenacted: st.witness_ok,
    };
    (report, log)
}

/// The worker side: request leases, run granted units (whole grids or
/// single witness cells), ship results, and return the number of leases
/// served once drained.
pub fn run_worker<P: SweepPlan>(
    mut tx: Box<dyn FrameTx<u64>>,
    mut rx: Box<dyn FrameRx<u64>>,
    worker: u64,
    plan: &P,
    conf: &Conformance,
    cfg: &ShardConfig,
) -> Result<u64, NetError> {
    let mut served = 0u64;
    let mut seq = 0u64;
    tx.send(&Frame::ShardRequest { worker })?;
    loop {
        match rx.recv()? {
            Frame::ShardGrant {
                unit,
                strategy,
                coalition,
                run,
            } => {
                let recipe = SweepUnit {
                    strategy,
                    coalition,
                };
                // A grant naming a strategy this plan cannot generate is
                // a coordinator/worker version mismatch (or a hostile
                // coordinator): refuse with a typed error, never panic on
                // wire input.
                let unknown = NetError::Rejected {
                    session: unit,
                    reason: RejectReason::UnknownSession,
                };
                match run {
                    None => {
                        let profiles = run_sweep_unit(plan, &recipe, conf).ok_or(unknown)?;
                        let mut frame = Frame::ShardResult {
                            unit,
                            worker,
                            profiles,
                            auth: cfg.auth.as_ref().map(|_| AuthTag { seq, mac: [0; 8] }),
                        };
                        if let Some(key) = &cfg.auth {
                            frame.seal(key);
                            seq += 1;
                        }
                        tx.send(&frame)?;
                    }
                    Some(r) => {
                        let (kind, seed, outcome, profile) =
                            run_sweep_cell(plan, &recipe, conf, r as usize).ok_or(unknown)?;
                        // Record before replying: the witness trace must
                        // be durable by the time the coordinator counts
                        // the re-enactment as done.
                        if let Some(sink) = &cfg.sink {
                            sink.record(&RunMeta::cell(unit, kind, seed), &outcome);
                        }
                        tx.send(&Frame::ShardWitness {
                            unit,
                            run: r,
                            profile,
                        })?;
                    }
                }
                served += 1;
                tx.send(&Frame::ShardRequest { worker })?;
            }
            Frame::ShardDrain => return Ok(served),
            // Anything else never travels coordinator → worker in
            // well-formed traffic; tolerate strays.
            _ => {}
        }
    }
}

/// Dials the coordinator's in-memory hub and serves as worker `worker`.
pub fn worker_mem<P: SweepPlan>(
    hub: &MemTransport,
    worker: u64,
    plan: &P,
    conf: &Conformance,
    cfg: &ShardConfig,
) -> Result<u64, NetError> {
    let (tx, rx) = hub.connect::<u64>();
    run_worker(tx, rx, worker, plan, conf, cfg)
}

/// Dials the coordinator's TCP listener and serves as worker `worker`.
pub fn worker_tcp<P: SweepPlan>(
    addr: SocketAddr,
    worker: u64,
    plan: &P,
    conf: &Conformance,
    cfg: &ShardConfig,
) -> Result<u64, NetError> {
    let (tx, rx) = TcpTransport::connect::<u64>(addr)?;
    run_worker(tx, rx, worker, plan, conf, cfg)
}

/// The one-call sharded sweep: `Conformance::sharded(...)` spawns `n`
/// in-process workers over the chosen transport and coordinates them,
/// returning the (bit-identical) report plus the shard log.
pub trait ShardedSweep {
    /// Runs this conformance sweep sharded over `n` workers.
    fn sharded<P: SweepPlan>(
        &self,
        plan: &P,
        game: &BayesianGame,
        types: &[usize],
        n: usize,
        transport: TransportKind,
        cfg: &ShardConfig,
    ) -> (ConformanceReport, ShardLog);
}

impl ShardedSweep for Conformance {
    fn sharded<P: SweepPlan>(
        &self,
        plan: &P,
        game: &BayesianGame,
        types: &[usize],
        n: usize,
        transport: TransportKind,
        cfg: &ShardConfig,
    ) -> (ConformanceReport, ShardLog) {
        assert!(n >= 1, "a sharded sweep needs at least one worker");
        match transport {
            TransportKind::Mem => {
                let hub = MemTransport::new();
                let listener = ShardListener::mem(&hub);
                std::thread::scope(|s| {
                    for w in 0..n {
                        let hub = hub.clone();
                        s.spawn(move || {
                            // Worker-side failures surface coordinator-
                            // side as typed ShardLog entries.
                            let _ = worker_mem(&hub, w as u64, plan, self, cfg);
                        });
                    }
                    coordinate(&listener, plan, game, types, self, cfg)
                })
            }
            TransportKind::Tcp => {
                let listener = ShardListener::tcp().expect("loopback bind");
                let addr = listener.addr().expect("tcp listener has an address");
                std::thread::scope(|s| {
                    for w in 0..n {
                        s.spawn(move || {
                            let _ = worker_tcp(addr, w as u64, plan, self, cfg);
                        });
                    }
                    coordinate(&listener, plan, game, types, self, cfg)
                })
            }
        }
    }
}
