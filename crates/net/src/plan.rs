//! Scenario-plan entry points into the transport plane.
//!
//! [`NetPlan`] gives every [`SessionPlan`] (that is, [`CheapTalkPlan`] and
//! [`MediatorPlan`]) networked mirrors of its `.session()` entry:
//! `.serve(…)` hosts the plan on a running [`Service`], `.connect_tcp(…)`
//! / `.connect_mem(…)` build a typed [`Client`] for it, and
//! `.run_over_tcp(…)` / `.run_over_mem(…)` do the whole loopback round
//! trip in one call.
//!
//! [`CheapTalkPlan`]: mediator_core::scenario::CheapTalkPlan
//! [`MediatorPlan`]: mediator_core::scenario::MediatorPlan

use crate::client::Client;
use crate::frame::{NetError, SessionId};
use crate::service::{self, Service, ServiceConfig, SessionHandle};
use crate::transport::MemTransport;
use crate::wire::Wire;
use mediator_core::scenario::SessionPlan;
use mediator_sim::{Outcome, SchedulerKind};
use std::net::SocketAddr;

/// Networked entries on a scenario plan, mirroring `.session()`.
pub trait NetPlan: SessionPlan
where
    Self::Msg: Wire,
{
    /// Hosts this plan's `(kind, seed)` cell on `service` under `id` — the
    /// networked `.session_with(kind, seed)`. The returned handle yields
    /// the outcome once every player's relay has attached and the pump has
    /// driven the run over the wire.
    fn serve(
        &self,
        service: &Service<Self::Msg>,
        id: SessionId,
        kind: SchedulerKind,
        seed: u64,
    ) -> SessionHandle {
        service.host_plan(id, self, kind, seed)
    }

    /// Dials a TCP service hosting this plan, with the client typed to the
    /// plan's message codec.
    fn connect_tcp(&self, addr: SocketAddr) -> Result<Client<Self::Msg>, NetError> {
        Client::tcp(addr)
    }

    /// Connects to an in-memory hub, typed to the plan's message codec.
    fn connect_mem(&self, hub: &MemTransport) -> Client<Self::Msg> {
        Client::mem(hub)
    }

    /// One-call loopback run over TCP (ephemeral port): service, one relay
    /// connection per world process, outcome.
    fn run_over_tcp(&self, kind: &SchedulerKind, seed: u64) -> Result<Outcome, NetError> {
        service::run_over_tcp(self, kind, seed, ServiceConfig::default())
    }

    /// One-call loopback run over the in-memory transport.
    fn run_over_mem(&self, kind: &SchedulerKind, seed: u64) -> Result<Outcome, NetError> {
        service::run_over_mem(self, kind, seed, ServiceConfig::default())
    }
}

impl<P: SessionPlan> NetPlan for P where P::Msg: Wire {}
