//! Transport backends: real byte streams under the frame codec.
//!
//! Both backends speak the *same* framing code over `std::io::Read`/
//! `Write`, so every codec property (length cap, version check, typed
//! truncation errors) holds identically on each:
//!
//! * **In-memory duplex pipes** ([`MemTransport`]) — a [`pipe`] is a
//!   `Mutex<VecDeque<u8>>` + condvar with hangup-aware ends; a connection
//!   is two pipes crossed. Used by tests and the multi-session benches:
//!   the full service stack runs, minus the kernel.
//! * **TCP loopback** ([`TcpTransport`]) — `std::net` sockets. Binds
//!   port 0 (ephemeral) so suites are sandbox/CI-safe; `TCP_NODELAY` is
//!   set because protocol frames are small and latency-bound.
//!
//! Two seams come out of here. Clients use the blocking framed halves
//! [`FrameTx`]/[`FrameRx`]. The service side is readiness-based: both
//! backends implement [`NbListener`], handing the reactor raw
//! non-blocking [`ConnIo`] endpoints — TCP via `poll(2)` on the socket
//! fd, memory pipes via a watcher hook ([`PipeReader::watch`]) that
//! wakes the reactor when bytes or a hangup arrive.

use crate::frame::{Frame, NetError, MAX_FRAME_LEN};
use crate::readiness::{ConnIo, NbListener, TryRead, Waker, ACCEPT_TOKEN};
use crate::wire::{CodecError, Wire};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};

/// The sending half of a framed connection.
pub trait FrameTx<M>: Send {
    /// Writes one frame (length prefix + body) to the stream.
    fn send(&mut self, frame: &Frame<M>) -> Result<(), NetError>;
}

/// The receiving half of a framed connection.
pub trait FrameRx<M>: Send {
    /// Blocks for the next frame. [`NetError::Closed`] means the peer
    /// shut down cleanly at a frame boundary; [`NetError::Disconnected`]
    /// means the stream died mid-frame.
    fn recv(&mut self) -> Result<Frame<M>, NetError>;
}

/// A connection, split into its two independently-owned halves.
pub type ConnPair<M> = (Box<dyn FrameTx<M>>, Box<dyn FrameRx<M>>);

// ---------------------------------------------------------------------------
// Framing over any byte stream
// ---------------------------------------------------------------------------

/// Frame writer over any byte sink.
pub struct FramedTx<W> {
    sink: W,
    buf: Vec<u8>,
}

impl<W: Write> FramedTx<W> {
    /// Wraps a byte sink.
    pub fn new(sink: W) -> Self {
        FramedTx {
            sink,
            buf: Vec::new(),
        }
    }
}

impl<W: Write + Send, M: Wire> FrameTx<M> for FramedTx<W> {
    fn send(&mut self, frame: &Frame<M>) -> Result<(), NetError> {
        self.buf.clear();
        frame.encode_body(&mut self.buf);
        debug_assert!(self.buf.len() <= MAX_FRAME_LEN as usize);
        let len = (self.buf.len() as u32).to_le_bytes();
        self.sink.write_all(&len)?;
        self.sink.write_all(&self.buf)?;
        self.sink.flush()?;
        Ok(())
    }
}

/// Frame reader over any byte source.
pub struct FramedRx<R> {
    source: R,
    buf: Vec<u8>,
}

impl<R: Read> FramedRx<R> {
    /// Wraps a byte source.
    pub fn new(source: R) -> Self {
        FramedRx {
            source,
            buf: Vec::new(),
        }
    }

    /// Reads exactly `n` bytes into the scratch buffer. `eof_ok`
    /// distinguishes a clean close (frame boundary) from a mid-frame drop.
    fn read_exact_n(&mut self, n: usize, eof_ok: bool) -> Result<(), NetError> {
        self.buf.clear();
        self.buf.resize(n, 0);
        let mut filled = 0;
        while filled < n {
            match self.source.read(&mut self.buf[filled..]) {
                Ok(0) => {
                    return Err(if eof_ok && filled == 0 {
                        NetError::Closed
                    } else {
                        NetError::Disconnected
                    });
                }
                Ok(k) => filled += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // A peer that vanished abruptly (process death, RST)
                // surfaces as reset/aborted — the same "dropped mid-
                // stream" condition as a silent EOF.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::BrokenPipe
                            | std::io::ErrorKind::UnexpectedEof
                    ) =>
                {
                    return Err(if eof_ok && filled == 0 {
                        NetError::Closed
                    } else {
                        NetError::Disconnected
                    });
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }
}

impl<R: Read + Send, M: Wire> FrameRx<M> for FramedRx<R> {
    fn recv(&mut self) -> Result<Frame<M>, NetError> {
        self.read_exact_n(4, true)?;
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > MAX_FRAME_LEN {
            // Reject before reading (let alone allocating) the announced
            // body: an oversized prefix is corruption or hostility.
            return Err(CodecError::LengthOverrun {
                announced: u64::from(len),
                remaining: MAX_FRAME_LEN as usize,
            }
            .into());
        }
        self.read_exact_n(len as usize, false)?;
        Ok(Frame::decode_body(&self.buf)?)
    }
}

// ---------------------------------------------------------------------------
// In-memory byte pipes
// ---------------------------------------------------------------------------

struct PipeState {
    buf: VecDeque<u8>,
    tx_alive: bool,
    rx_alive: bool,
    /// Readiness hook for the reactor: woken when bytes arrive *or* the
    /// writer hangs up, so a half-closed pipe surfaces as a readable EOF
    /// (→ `PeerVanished`) instead of an eternal `WouldBlock` spin.
    watcher: Option<(Arc<Waker>, usize)>,
}

type PipeShared = Arc<(Mutex<PipeState>, Condvar)>;

/// Copies up to `out.len()` bytes out of the deque in at most two
/// `copy_from_slice` calls (the deque's two contiguous halves) — the
/// per-byte `pop_front` loop this replaces dominated mem-transport
/// profiles at thousands of sessions.
fn drain_into(buf: &mut VecDeque<u8>, out: &mut [u8]) -> usize {
    let n = out.len().min(buf.len());
    let (front, back) = buf.as_slices();
    if n <= front.len() {
        out[..n].copy_from_slice(&front[..n]);
    } else {
        out[..front.len()].copy_from_slice(front);
        out[front.len()..n].copy_from_slice(&back[..n - front.len()]);
    }
    buf.drain(..n);
    n
}

/// The writing end of an in-memory byte pipe.
pub struct PipeWriter(PipeShared);

/// The reading end of an in-memory byte pipe.
pub struct PipeReader(PipeShared);

/// A unidirectional in-memory byte pipe. Writes never block (the buffer
/// is unbounded); reads block until bytes or hangup. Dropping the writer
/// EOFs the reader; dropping the reader makes writes fail with
/// `BrokenPipe` — the same observable semantics a socket pair gives the
/// framing layer.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let shared: PipeShared = Arc::new((
        Mutex::new(PipeState {
            buf: VecDeque::new(),
            tx_alive: true,
            rx_alive: true,
            watcher: None,
        }),
        Condvar::new(),
    ));
    (PipeWriter(Arc::clone(&shared)), PipeReader(shared))
}

/// A bidirectional in-memory connection: two pipes crossed. Returns the
/// two endpoints, each a `(writer, reader)` pair.
#[allow(clippy::type_complexity)]
pub fn duplex() -> ((PipeWriter, PipeReader), (PipeWriter, PipeReader)) {
    let (a_tx, b_rx) = pipe();
    let (b_tx, a_rx) = pipe();
    ((a_tx, a_rx), (b_tx, b_rx))
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let (lock, cvar) = &*self.0;
        let watcher;
        {
            let mut state = lock.lock().expect("pipe poisoned");
            if !state.rx_alive {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "pipe reader dropped",
                ));
            }
            state.buf.extend(data);
            cvar.notify_all();
            watcher = state.watcher.clone();
        }
        // Wake outside the pipe lock: the waker takes its own lock, and
        // holding both invites ordering trouble for no benefit.
        if let Some((waker, token)) = watcher {
            waker.wake(token);
        }
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.0;
        let watcher = if let Ok(mut state) = lock.lock() {
            state.tx_alive = false;
            cvar.notify_all();
            state.watcher.clone()
        } else {
            None
        };
        // Hangup is a readable event: the reader's next try_read reports
        // Eof, which the reactor maps to PeerVanished.
        if let Some((waker, token)) = watcher {
            waker.wake(token);
        }
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let (lock, cvar) = &*self.0;
        let mut state = lock.lock().expect("pipe poisoned");
        while state.buf.is_empty() && state.tx_alive {
            state = cvar.wait(state).expect("pipe poisoned");
        }
        if state.buf.is_empty() {
            return Ok(0); // hangup: EOF
        }
        Ok(drain_into(&mut state.buf, out))
    }
}

impl PipeReader {
    /// Hooks readiness delivery: `waker` is signalled with `token`
    /// whenever bytes arrive or the writer hangs up. Fires immediately
    /// if either condition already holds, so registration cannot lose a
    /// wakeup that raced the connect.
    pub fn watch(&self, waker: Arc<Waker>, token: usize) {
        let (lock, _) = &*self.0;
        let fire = {
            let mut state = lock.lock().expect("pipe poisoned");
            let fire = !state.buf.is_empty() || !state.tx_alive;
            state.watcher = Some((waker.clone(), token));
            fire
        };
        if fire {
            waker.wake(token);
        }
    }

    /// Non-blocking read. The half-closed distinction matters: an empty
    /// pipe whose writer is alive is [`TryRead::WouldBlock`] (readiness
    /// will signal), an empty pipe whose writer is gone is
    /// [`TryRead::Eof`] (nothing will ever signal again).
    pub fn try_read(&mut self, out: &mut [u8]) -> TryRead {
        let (lock, _) = &*self.0;
        let mut state = lock.lock().expect("pipe poisoned");
        if state.buf.is_empty() {
            if state.tx_alive {
                TryRead::WouldBlock
            } else {
                TryRead::Eof
            }
        } else {
            TryRead::Data(drain_into(&mut state.buf, out))
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.0;
        if let Ok(mut state) = lock.lock() {
            state.rx_alive = false;
            cvar.notify_all();
        }
    }
}

/// The in-memory transport: a connection hub whose `connect` side hands
/// out client endpoints and whose [`NbListener`] side accepts the
/// matching server endpoints. The whole service stack — framing included
/// — runs exactly as over TCP, minus the kernel.
pub struct MemTransport {
    inner: Arc<(Mutex<HubState>, Condvar)>,
}

struct HubState {
    queue: VecDeque<(PipeWriter, PipeReader)>,
    open: bool,
    /// Accept-readiness hook: woken with [`ACCEPT_TOKEN`] on each dial.
    watcher: Option<Arc<Waker>>,
}

impl Default for MemTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl MemTransport {
    /// A fresh hub.
    pub fn new() -> Self {
        MemTransport {
            inner: Arc::new((
                Mutex::new(HubState {
                    queue: VecDeque::new(),
                    open: true,
                    watcher: None,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Connects, returning the raw byte-level endpoint (tests use this to
    /// write malformed bytes straight at the service). Connecting to a
    /// closed hub fails fast the way TCP refuses a dead port: the server
    /// halves are dropped on the spot, so the endpoint's first read sees
    /// EOF ([`NetError::Closed`] through the framing) instead of blocking
    /// forever on a queue nobody will ever accept from.
    pub fn connect_raw(&self) -> (PipeWriter, PipeReader) {
        let (client, server) = duplex();
        let (lock, cvar) = &*self.inner;
        let watcher;
        {
            let mut hub = lock.lock().expect("hub poisoned");
            if hub.open {
                hub.queue.push_back(server);
                cvar.notify_all();
                watcher = hub.watcher.clone();
            } else {
                watcher = None;
            }
        }
        if let Some(waker) = watcher {
            waker.wake(ACCEPT_TOKEN);
        }
        client
    }

    /// Connects, returning framed halves for protocol use.
    pub fn connect<M: Wire + 'static>(&self) -> ConnPair<M> {
        let (tx, rx) = self.connect_raw();
        (Box::new(FramedTx::new(tx)), Box::new(FramedRx::new(rx)))
    }

    /// The accepting side (hand it to `Service::start`).
    pub fn listener(&self) -> MemListener {
        MemListener {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocking accept: parks until a dial arrives, returning the raw
    /// server endpoint, or `None` once the hub is [`Self::close`]d with
    /// an empty backlog. The thread-per-connection shard coordinator uses
    /// this — the readiness-based [`MemListener`] stays the reactor's.
    pub fn accept(&self) -> Option<(PipeWriter, PipeReader)> {
        let (lock, cvar) = &*self.inner;
        let mut hub = lock.lock().expect("hub poisoned");
        loop {
            if let Some(pair) = hub.queue.pop_front() {
                return Some(pair);
            }
            if !hub.open {
                return None;
            }
            hub = cvar.wait(hub).expect("hub poisoned");
        }
    }

    /// Closes the hub: blocked [`Self::accept`] calls return `None`,
    /// queued-but-unaccepted dials see EOF, and new dials fail fast.
    pub fn close(&self) {
        let (lock, cvar) = &*self.inner;
        if let Ok(mut hub) = lock.lock() {
            hub.open = false;
            hub.queue.clear();
            hub.watcher = None;
            cvar.notify_all();
        }
    }
}

/// Cloning a hub clones the handle, not the hub: both ends dial and
/// accept the same queue (how the shard coordinator and its in-process
/// workers share one transport).
impl Clone for MemTransport {
    fn clone(&self) -> Self {
        MemTransport {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The [`NbListener`] over a [`MemTransport`] hub.
pub struct MemListener {
    inner: Arc<(Mutex<HubState>, Condvar)>,
}

impl NbListener for MemListener {
    fn register(&mut self, waker: &Arc<Waker>) -> Option<i32> {
        let (lock, _) = &*self.inner;
        let backlog = {
            let mut hub = lock.lock().expect("hub poisoned");
            hub.watcher = Some(Arc::clone(waker));
            !hub.queue.is_empty()
        };
        if backlog {
            // Dials that landed before registration must not be lost.
            waker.wake(ACCEPT_TOKEN);
        }
        None
    }

    fn try_accept(&mut self) -> Result<Option<ConnIo>, NetError> {
        let (lock, _) = &*self.inner;
        let mut hub = lock.lock().expect("hub poisoned");
        match hub.queue.pop_front() {
            Some((tx, rx)) => Ok(Some(ConnIo::Mem { rx, tx })),
            None if hub.open => Ok(None),
            None => Err(NetError::Closed),
        }
    }

    fn close(&mut self) {
        let (lock, cvar) = &*self.inner;
        if let Ok(mut hub) = lock.lock() {
            hub.open = false;
            // Endpoints queued but never accepted would leave their
            // connectors blocked forever: drop them so the peers see
            // EOF immediately.
            hub.queue.clear();
            hub.watcher = None;
            cvar.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// TCP loopback
// ---------------------------------------------------------------------------

/// The TCP transport: binds an ephemeral loopback port (`127.0.0.1:0` —
/// never a fixed number, so parallel test runs and sandboxed CI cannot
/// collide). The accept side is non-blocking: the reactor polls the
/// listener fd and drains the backlog when it signals.
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpTransport {
    /// Binds `127.0.0.1:0`.
    pub fn bind_loopback() -> Result<Self, NetError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        Ok(TcpTransport { listener, addr })
    }

    /// The bound address clients dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Dials `addr`, returning framed halves (the stream is split with
    /// `try_clone`; `TCP_NODELAY` is set on both).
    pub fn connect<M: Wire + 'static>(addr: SocketAddr) -> Result<ConnPair<M>, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok((
            Box::new(FramedTx::new(stream)),
            Box::new(FramedRx::new(reader)),
        ))
    }
}

impl NbListener for TcpTransport {
    fn register(&mut self, waker: &Arc<Waker>) -> Option<i32> {
        self.listener.register(waker)
    }

    fn try_accept(&mut self) -> Result<Option<ConnIo>, NetError> {
        self.listener.try_accept()
    }

    fn close(&mut self) {
        self.listener.close();
    }
}
