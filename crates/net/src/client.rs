//! The client side of the transport plane: attach, relay, collect.
//!
//! A networked player endpoint is deliberately thin: the player's *state
//! machine* lives in the service-hosted [`Session`] (the sans-IO core
//! never moved), so the client's job is the **network leg** — every
//! message addressed to its players arrives as a `Msg` frame and is
//! relayed back to complete delivery. The interval between the service
//! shipping a frame and the relay returning it *is* the message's time in
//! transit; with one connection per player, the interleaving of those
//! round trips across connections is the delivery order the hosted run
//! observes.
//!
//! [`Session`]: mediator_sim::Session

use crate::frame::{Frame, NetError, OutcomeSummary, SessionId};
use crate::transport::{ConnPair, FrameRx, FrameTx, MemTransport, TcpTransport};
use crate::wire::Wire;
use std::net::SocketAddr;

/// A framed client connection to a [`Service`](crate::Service).
pub struct Client<M> {
    tx: Box<dyn FrameTx<M>>,
    rx: Box<dyn FrameRx<M>>,
}

impl<M: Wire + 'static> Client<M> {
    /// Wraps an established connection.
    pub fn from_pair((tx, rx): ConnPair<M>) -> Self {
        Client { tx, rx }
    }

    /// Dials a TCP service.
    pub fn tcp(addr: SocketAddr) -> Result<Self, NetError> {
        Ok(Client::from_pair(TcpTransport::connect(addr)?))
    }

    /// Connects through an in-memory hub.
    pub fn mem(hub: &MemTransport) -> Self {
        Client::from_pair(hub.connect())
    }

    /// Claims `(session, player)`: every message the hosted session sends
    /// to `player` will be routed to this connection. One connection may
    /// attach several players (of the same session) before relaying.
    ///
    /// Fire-and-forget: the service answers only on failure, and the
    /// `Reject` surfaces as [`NetError::Rejected`] from [`Client::relay`].
    pub fn attach(&mut self, session: SessionId, player: usize) -> Result<(), NetError> {
        self.tx.send(&Frame::Attach { session, player })
    }

    /// The relay loop: echoes every `Msg` frame back to the service
    /// (completing each message's network leg) until the service announces
    /// the session's end, then returns the outcome summary.
    pub fn relay(mut self) -> Result<OutcomeSummary, NetError> {
        loop {
            match self.rx.recv()? {
                frame @ Frame::Msg { .. } => self.tx.send(&frame)?,
                Frame::Outcome { summary, .. } => return Ok(summary),
                Frame::Reject { session, reason } => {
                    return Err(NetError::Rejected { session, reason })
                }
                Frame::Abort { session } => return Err(NetError::Aborted { session }),
                // `Attach` never travels service → client; tolerate it.
                Frame::Attach { .. } => {}
            }
        }
    }

    /// Receives one frame (for hand-rolled clients and tests).
    pub fn recv(&mut self) -> Result<Frame<M>, NetError> {
        self.rx.recv()
    }

    /// Sends one frame (for hand-rolled clients and tests).
    pub fn send(&mut self, frame: &Frame<M>) -> Result<(), NetError> {
        self.tx.send(frame)
    }
}
