//! The client side of the transport plane: attach, relay, collect.
//!
//! A networked player endpoint is deliberately thin: the player's *state
//! machine* lives in the service-hosted [`Session`] (the sans-IO core
//! never moved), so the client's job is the **network leg** — every
//! message addressed to its players arrives as a `Msg` frame and is
//! relayed back to complete delivery. The interval between the service
//! shipping a frame and the relay returning it *is* the message's time in
//! transit; with one connection per player, the interleaving of those
//! round trips across connections is the delivery order the hosted run
//! observes.
//!
//! [`Session`]: mediator_sim::Session

use crate::frame::{Frame, NetError, OutcomeSummary, RejectReason, SessionId, MAX_FRAME_LEN};
use crate::transport::{ConnPair, FrameRx, FrameTx, MemTransport, TcpTransport};
use crate::wire::{CodecError, Reader, Wire, WIRE_VERSION, WIRE_VERSION_AUTH};
use std::io::{Read, Write};
use std::net::SocketAddr;

/// A framed client connection to a [`Service`](crate::Service).
pub struct Client<M> {
    tx: Box<dyn FrameTx<M>>,
    rx: Box<dyn FrameRx<M>>,
}

impl<M: Wire + 'static> Client<M> {
    /// Wraps an established connection.
    pub fn from_pair((tx, rx): ConnPair<M>) -> Self {
        Client { tx, rx }
    }

    /// Dials a TCP service.
    pub fn tcp(addr: SocketAddr) -> Result<Self, NetError> {
        Ok(Client::from_pair(TcpTransport::connect(addr)?))
    }

    /// Connects through an in-memory hub.
    pub fn mem(hub: &MemTransport) -> Self {
        Client::from_pair(hub.connect())
    }

    /// Claims `(session, player)`: every message the hosted session sends
    /// to `player` will be routed to this connection. One connection may
    /// attach several players (of the same session) before relaying.
    ///
    /// Fire-and-forget: the service answers only on failure, and the
    /// `Reject` surfaces as [`NetError::Rejected`] from [`Client::relay`].
    pub fn attach(&mut self, session: SessionId, player: usize) -> Result<(), NetError> {
        self.tx.send(&Frame::Attach { session, player })
    }

    /// The relay loop: echoes every `Msg` frame back to the service
    /// (completing each message's network leg) until the service announces
    /// the session's end, then returns the outcome summary.
    pub fn relay(mut self) -> Result<OutcomeSummary, NetError> {
        loop {
            match self.rx.recv()? {
                frame @ Frame::Msg { .. } => self.tx.send(&frame)?,
                Frame::Outcome { summary, .. } => return Ok(summary),
                Frame::Reject { session, reason } => {
                    return Err(NetError::Rejected { session, reason })
                }
                Frame::Abort { session } => return Err(NetError::Aborted { session }),
                // `Attach` never travels service → client, and shard
                // lease frames never reach a session relay; tolerate.
                Frame::Attach { .. }
                | Frame::ShardRequest { .. }
                | Frame::ShardGrant { .. }
                | Frame::ShardResult { .. }
                | Frame::ShardWitness { .. }
                | Frame::ShardDrain => {}
            }
        }
    }

    /// Receives one frame (for hand-rolled clients and tests).
    pub fn recv(&mut self) -> Result<Frame<M>, NetError> {
        self.rx.recv()
    }

    /// Sends one frame (for hand-rolled clients and tests).
    pub fn send(&mut self, frame: &Frame<M>) -> Result<(), NetError> {
        self.tx.send(frame)
    }
}

/// A multi-session relay over one raw byte stream, blind to the message
/// type: attaches every `(session, player)` in `attaches`, then echoes
/// `Msg` frames **without decoding them** — the length prefix and body
/// bytes bounce back verbatim, which is the relay's "content-blind
/// network leg" role made literal (only the service reads protocol
/// messages; the network never needs to). Returns once `expected`
/// sessions have announced outcomes.
///
/// This is the client the multi-thousand-session benches run: one
/// connection, one thread, relaying for every player of every session, so
/// client-side thread count stays O(1) while the service hosts thousands
/// of concurrent sessions.
pub fn bulk_relay<R: Read, W: Write>(
    mut rx: R,
    mut tx: W,
    attaches: &[(SessionId, usize)],
    expected: usize,
) -> Result<Vec<(SessionId, OutcomeSummary)>, NetError> {
    // Hand-encoded Attach frames: body = version, tag 0, session, player.
    let mut wbuf: Vec<u8> = Vec::with_capacity(64 * 1024);
    for &(session, player) in attaches {
        let start = wbuf.len();
        wbuf.extend_from_slice(&[0u8; 4]);
        wbuf.push(WIRE_VERSION);
        wbuf.push(0);
        session.encode(&mut wbuf);
        player.encode(&mut wbuf);
        let len = (wbuf.len() - start - 4) as u32;
        wbuf[start..start + 4].copy_from_slice(&len.to_le_bytes());
    }
    tx.write_all(&wbuf)?;
    tx.flush()?;
    wbuf.clear();

    let mut outcomes: Vec<(SessionId, OutcomeSummary)> = Vec::with_capacity(expected);
    let mut rbuf: Vec<u8> = Vec::with_capacity(256 * 1024);
    let mut chunk = vec![0u8; 256 * 1024];
    loop {
        let n = loop {
            match rx.read(&mut chunk) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        };
        if n == 0 {
            return Err(if rbuf.is_empty() {
                NetError::Closed
            } else {
                NetError::Disconnected
            });
        }
        rbuf.extend_from_slice(&chunk[..n]);

        // Parse every complete frame; echo `Msg` bodies untouched.
        let mut off = 0usize;
        while rbuf.len() - off >= 4 {
            let len = u32::from_le_bytes([rbuf[off], rbuf[off + 1], rbuf[off + 2], rbuf[off + 3]]);
            if len > MAX_FRAME_LEN {
                return Err(CodecError::LengthOverrun {
                    announced: u64::from(len),
                    remaining: MAX_FRAME_LEN as usize,
                }
                .into());
            }
            let total = 4 + len as usize;
            if rbuf.len() - off < total {
                break;
            }
            let body = &rbuf[off + 4..off + total];
            if body.len() < 2 {
                return Err(CodecError::Truncated.into());
            }
            // Both layouts keep the kind tag at byte 1: the relay stays
            // content-blind whether or not frames carry MAC trailers.
            if body[0] != WIRE_VERSION && body[0] != WIRE_VERSION_AUTH {
                return Err(CodecError::UnknownVersion(body[0]).into());
            }
            match body[1] {
                // The network leg: bounce the frame back, bytes and all.
                1 => wbuf.extend_from_slice(&rbuf[off..off + total]),
                2 => {
                    let mut r = Reader::new(&body[2..]);
                    let session = u64::decode(&mut r)?;
                    let summary = OutcomeSummary::decode(&mut r)?;
                    r.finish()?;
                    outcomes.push((session, summary));
                }
                3 => {
                    let mut r = Reader::new(&body[2..]);
                    let session = u64::decode(&mut r)?;
                    let reason = RejectReason::decode(&mut r)?;
                    r.finish()?;
                    return Err(NetError::Rejected { session, reason });
                }
                4 => {
                    let mut r = Reader::new(&body[2..]);
                    let session = u64::decode(&mut r)?;
                    r.finish()?;
                    return Err(NetError::Aborted { session });
                }
                0 => {} // `Attach` never travels service → client; tolerate it.
                tag => return Err(CodecError::UnknownTag { what: "Frame", tag }.into()),
            }
            off += total;
        }
        if off > 0 {
            rbuf.copy_within(off.., 0);
            rbuf.truncate(rbuf.len() - off);
        }
        if !wbuf.is_empty() {
            // One write + flush per read burst: echo batching is most of
            // the bulk relay's syscall win over per-frame clients.
            tx.write_all(&wbuf)?;
            tx.flush()?;
            wbuf.clear();
        }
        if outcomes.len() >= expected {
            return Ok(outcomes);
        }
    }
}
