//! Frames: the unit the transport plane moves.
//!
//! A frame travels length-prefixed on the byte stream:
//!
//! ```text
//! ┌───────────────┬─────────────┬──────────┬─────────────────────────┐
//! │ len: u32 LE   │ version: u8 │ kind: u8 │ payload (kind-specific) │
//! └───────────────┴─────────────┴──────────┴─────────────────────────┘
//!                 └──────────────── len bytes ──────────────────────┘
//! ```
//!
//! `len` counts the body (version byte included, itself excluded) and is
//! capped at [`MAX_FRAME_LEN`]; a larger announcement is rejected before
//! any read is attempted ([`CodecError::LengthOverrun`]). The version byte
//! is checked before the kind tag, so a decoder never misparses a frame
//! from a future format. Kind tags and payload layouts are tabulated in
//! DESIGN.md §9.

use crate::auth::{AuthKey, AuthTag, TamperKind};
use crate::wire::{CodecError, Reader, Wire, WIRE_VERSION, WIRE_VERSION_AUTH};
use mediator_sim::{Outcome, TerminationKind};
use std::fmt;

/// Routing identifier of one hosted session.
pub type SessionId = u64;

/// A frame body cannot exceed 16 MiB. Protocol messages are a few KiB at
/// the largest (AVSS coefficient rows); anything bigger is a corrupted or
/// hostile length prefix and is rejected without allocating.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// One unit of transport-plane traffic, generic over the protocol message
/// type `M` (cheap-talk or mediator-game messages).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<M> {
    /// Client → service: claim `(session, player)`. A connection may
    /// attach any number of players (one relay per player or one relay
    /// for all of them — both are delivery orders the model allows).
    Attach {
        /// The session being joined.
        session: SessionId,
        /// The world process this connection will relay for.
        player: usize,
    },
    /// A protocol message in flight. Service → client: the message left
    /// `src`'s outbox and is now on the network leg toward `dst`.
    /// Client → service: the network leg completed; deliver to `dst`.
    Msg {
        /// The session the message belongs to.
        session: SessionId,
        /// Sending process.
        src: usize,
        /// Addressed process.
        dst: usize,
        /// The protocol payload.
        msg: M,
        /// The authentication trailer, present iff the frame travels
        /// under [`WIRE_VERSION_AUTH`]. Relays echo it verbatim (the
        /// decode → re-encode round trip is byte-identical); only the
        /// service can mint or verify it.
        auth: Option<AuthTag>,
    },
    /// Service → clients: the hosted session terminated; here is the
    /// result. Sent once per attached connection.
    Outcome {
        /// The finished session.
        session: SessionId,
        /// The run's result, minus the trace.
        summary: OutcomeSummary,
    },
    /// Service → client: a frame was refused (the connection stays up).
    Reject {
        /// The session the refused frame named.
        session: SessionId,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// Service → clients: the hosted session failed (attach timeout, a
    /// vanished relay, idle timeout) and will never produce an outcome —
    /// relays should stop waiting.
    Abort {
        /// The failed session.
        session: SessionId,
    },
    /// Worker → coordinator: ready for a lease. Sent once on connect and
    /// again after each result, so the coordinator paces grants to worker
    /// capacity (pull, not push).
    ShardRequest {
        /// Self-assigned worker id (unique per connection by convention;
        /// the coordinator keys leases on it for vanish reclaim).
        worker: u64,
    },
    /// Coordinator → worker: a lease on one sweep unit. The worker
    /// rebuilds the unit's plan from the `(strategy, coalition)` recipe —
    /// plans themselves never travel.
    ShardGrant {
        /// The leased unit id (index in `sweep_units` order).
        unit: u64,
        /// Generated strategy name; `None` leases the honest baseline.
        strategy: Option<String>,
        /// The deviating coalition (empty for the baseline).
        coalition: Vec<usize>,
        /// `None` leases the unit's whole grid (answer: `ShardResult`);
        /// `Some(r)` leases the single flat run `r` — the witness
        /// re-enactment path (answer: `ShardWitness`).
        run: Option<u64>,
    },
    /// Worker → coordinator: one completed unit's grid, as per-run
    /// resolved action profiles in kind-major, seed-minor order. The only
    /// shard frame that can travel authenticated ([`WIRE_VERSION_AUTH`]):
    /// its integrity decides a scientific verdict, where the lease
    /// control frames only pace work.
    ShardResult {
        /// The completed unit.
        unit: u64,
        /// The worker that ran it.
        worker: u64,
        /// Resolved action profile of every run in the unit's grid.
        profiles: Vec<Vec<usize>>,
        /// The authentication trailer, present iff the frame travels
        /// under [`WIRE_VERSION_AUTH`].
        auth: Option<AuthTag>,
    },
    /// Worker → coordinator: the re-enacted witness cell's resolved
    /// profile (reply to a single-run grant).
    ShardWitness {
        /// The unit the witness run belongs to.
        unit: u64,
        /// The flat run index re-enacted.
        run: u64,
        /// The run's resolved action profile.
        profile: Vec<usize>,
    },
    /// Coordinator → worker: the sweep is complete; drain and disconnect.
    ShardDrain,
}

/// Why the service refused a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// No session with that id is hosted (or it already finished).
    UnknownSession,
    /// Another connection already relays for that player.
    PlayerTaken,
    /// The player id is outside the session's world.
    PlayerOutOfRange,
    /// The frame failed authentication (bad MAC, stripped trailer,
    /// replayed sequence number, or truncated trailer). Sent to the
    /// offending connection before the session aborts, so a tampering
    /// relay learns it was caught, with a typed reason.
    TamperDetected,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::UnknownSession => write!(f, "unknown session"),
            RejectReason::PlayerTaken => write!(f, "player already attached"),
            RejectReason::PlayerOutOfRange => write!(f, "player out of range"),
            RejectReason::TamperDetected => write!(f, "frame failed authentication"),
        }
    }
}

/// Everything in an [`Outcome`] except the trace: what the service
/// announces to attached clients when a session terminates. (The trace
/// stays server-side — it can be arbitrarily large, and the networked
/// trace is one delivery order among many anyway; see DESIGN.md §9.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeSummary {
    /// How the run ended.
    pub termination: TerminationKind,
    /// The move each process made, if any.
    pub moves: Vec<Option<u64>>,
    /// The will each process left, if any.
    pub wills: Vec<Option<u64>>,
    /// Which processes halted.
    pub halted: Vec<bool>,
    /// Messages sent during the run.
    pub messages_sent: u64,
    /// Messages delivered during the run.
    pub messages_delivered: u64,
    /// Events dispatched.
    pub steps: u64,
}

impl From<&Outcome> for OutcomeSummary {
    fn from(out: &Outcome) -> Self {
        OutcomeSummary {
            termination: out.termination,
            moves: out.moves.clone(),
            wills: out.wills.clone(),
            halted: out.halted.clone(),
            messages_sent: out.messages_sent,
            messages_delivered: out.messages_delivered,
            steps: out.steps,
        }
    }
}

impl Wire for OutcomeSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.termination.encode(out);
        self.moves.encode(out);
        self.wills.encode(out);
        self.halted.encode(out);
        self.messages_sent.encode(out);
        self.messages_delivered.encode(out);
        self.steps.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(OutcomeSummary {
            termination: Wire::decode(r)?,
            moves: Wire::decode(r)?,
            wills: Wire::decode(r)?,
            halted: Wire::decode(r)?,
            messages_sent: Wire::decode(r)?,
            messages_delivered: Wire::decode(r)?,
            steps: Wire::decode(r)?,
        })
    }
}

impl Wire for RejectReason {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            RejectReason::UnknownSession => 0,
            RejectReason::PlayerTaken => 1,
            RejectReason::PlayerOutOfRange => 2,
            RejectReason::TamperDetected => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(RejectReason::UnknownSession),
            1 => Ok(RejectReason::PlayerTaken),
            2 => Ok(RejectReason::PlayerOutOfRange),
            3 => Ok(RejectReason::TamperDetected),
            tag => Err(CodecError::UnknownTag {
                what: "RejectReason",
                tag,
            }),
        }
    }
}

impl<M: Wire> Frame<M> {
    /// Encodes the frame *body* (version byte + kind + payload) — the
    /// length prefix is the transport's job (`write_frame`). A `Msg`
    /// carrying an [`AuthTag`] encodes under [`WIRE_VERSION_AUTH`]:
    ///
    /// ```text
    /// [2][kind=1][session][src][dst][seq][msg][mac: 8 raw bytes]
    /// ```
    ///
    /// so the layout is a strict extension of version 1 (kind stays at
    /// byte 1, session at byte 2 — content-blind relays parse both the
    /// same way) and a decode → re-encode round trip is byte-identical,
    /// which is what lets typed relays echo authenticated frames without
    /// holding any key.
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        if let Frame::Msg {
            session,
            src,
            dst,
            msg,
            auth: Some(tag),
        } = self
        {
            out.push(WIRE_VERSION_AUTH);
            out.push(1);
            session.encode(out);
            src.encode(out);
            dst.encode(out);
            tag.seq.encode(out);
            msg.encode(out);
            out.extend_from_slice(&tag.mac);
            return;
        }
        if let Frame::ShardResult {
            unit,
            worker,
            profiles,
            auth: Some(tag),
        } = self
        {
            // Same trailer discipline as an authenticated Msg:
            // [2][kind=7][unit][worker][seq][profiles][mac: 8 raw bytes].
            out.push(WIRE_VERSION_AUTH);
            out.push(7);
            unit.encode(out);
            worker.encode(out);
            tag.seq.encode(out);
            profiles.encode(out);
            out.extend_from_slice(&tag.mac);
            return;
        }
        out.push(WIRE_VERSION);
        match self {
            Frame::Attach { session, player } => {
                out.push(0);
                session.encode(out);
                player.encode(out);
            }
            Frame::Msg {
                session,
                src,
                dst,
                msg,
                auth: _,
            } => {
                out.push(1);
                session.encode(out);
                src.encode(out);
                dst.encode(out);
                msg.encode(out);
            }
            Frame::Outcome { session, summary } => {
                out.push(2);
                session.encode(out);
                summary.encode(out);
            }
            Frame::Reject { session, reason } => {
                out.push(3);
                session.encode(out);
                reason.encode(out);
            }
            Frame::Abort { session } => {
                out.push(4);
                session.encode(out);
            }
            Frame::ShardRequest { worker } => {
                out.push(5);
                worker.encode(out);
            }
            Frame::ShardGrant {
                unit,
                strategy,
                coalition,
                run,
            } => {
                out.push(6);
                unit.encode(out);
                strategy.encode(out);
                coalition.encode(out);
                run.encode(out);
            }
            Frame::ShardResult {
                unit,
                worker,
                profiles,
                auth: _,
            } => {
                out.push(7);
                unit.encode(out);
                worker.encode(out);
                profiles.encode(out);
            }
            Frame::ShardWitness { unit, run, profile } => {
                out.push(8);
                unit.encode(out);
                run.encode(out);
                profile.encode(out);
            }
            Frame::ShardDrain => {
                out.push(9);
            }
        }
    }

    /// Decodes one frame body (as framed by `read_frame`): checks the
    /// version byte, then the kind tag, and insists the body is fully
    /// consumed.
    pub fn decode_body(body: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(body);
        let version = r.u8()?;
        if version == WIRE_VERSION_AUTH {
            // Authenticated layout: exactly `Msg` and `ShardResult`
            // travel under it — any other kind byte is malformed.
            match r.u8()? {
                1 => {
                    let session = Wire::decode(&mut r)?;
                    let src = Wire::decode(&mut r)?;
                    let dst = Wire::decode(&mut r)?;
                    let seq = Wire::decode(&mut r)?;
                    let msg = Wire::decode(&mut r)?;
                    let mac: [u8; 8] = r.bytes(8)?.try_into().expect("8 bytes");
                    r.finish()?;
                    return Ok(Frame::Msg {
                        session,
                        src,
                        dst,
                        msg,
                        auth: Some(AuthTag { seq, mac }),
                    });
                }
                7 => {
                    let unit = Wire::decode(&mut r)?;
                    let worker = Wire::decode(&mut r)?;
                    let seq = Wire::decode(&mut r)?;
                    let profiles = Wire::decode(&mut r)?;
                    let mac: [u8; 8] = r.bytes(8)?.try_into().expect("8 bytes");
                    r.finish()?;
                    return Ok(Frame::ShardResult {
                        unit,
                        worker,
                        profiles,
                        auth: Some(AuthTag { seq, mac }),
                    });
                }
                tag => return Err(CodecError::UnknownTag { what: "Frame", tag }),
            }
        }
        if version != WIRE_VERSION {
            return Err(CodecError::UnknownVersion(version));
        }
        let frame = match r.u8()? {
            0 => Frame::Attach {
                session: Wire::decode(&mut r)?,
                player: Wire::decode(&mut r)?,
            },
            1 => Frame::Msg {
                session: Wire::decode(&mut r)?,
                src: Wire::decode(&mut r)?,
                dst: Wire::decode(&mut r)?,
                msg: Wire::decode(&mut r)?,
                auth: None,
            },
            2 => Frame::Outcome {
                session: Wire::decode(&mut r)?,
                summary: Wire::decode(&mut r)?,
            },
            3 => Frame::Reject {
                session: Wire::decode(&mut r)?,
                reason: Wire::decode(&mut r)?,
            },
            4 => Frame::Abort {
                session: Wire::decode(&mut r)?,
            },
            5 => Frame::ShardRequest {
                worker: Wire::decode(&mut r)?,
            },
            6 => Frame::ShardGrant {
                unit: Wire::decode(&mut r)?,
                strategy: Wire::decode(&mut r)?,
                coalition: Wire::decode(&mut r)?,
                run: Wire::decode(&mut r)?,
            },
            7 => Frame::ShardResult {
                unit: Wire::decode(&mut r)?,
                worker: Wire::decode(&mut r)?,
                profiles: Wire::decode(&mut r)?,
                auth: None,
            },
            8 => Frame::ShardWitness {
                unit: Wire::decode(&mut r)?,
                run: Wire::decode(&mut r)?,
                profile: Wire::decode(&mut r)?,
            },
            9 => Frame::ShardDrain,
            tag => return Err(CodecError::UnknownTag { what: "Frame", tag }),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Seals an authenticable frame under `key`: encodes the
    /// authenticated body, MACs everything up to the trailer, and patches
    /// the tag in place. `Msg` MACs under its `(session, src, dst)`
    /// domain; `ShardResult` under `(unit, worker, SHARD_COORD)` — the
    /// differing kind byte inside the MAC'd prefix keeps the two domains
    /// disjoint even on colliding ids. The frame must already carry an
    /// [`AuthTag`] (the ship path assigns the sequence number); no-op for
    /// any other frame.
    pub fn seal(&mut self, key: &AuthKey) {
        let domain = match self {
            Frame::Msg {
                session, src, dst, ..
            } => (*session, *src, *dst),
            Frame::ShardResult { unit, worker, .. } => (*unit, *worker as usize, SHARD_COORD),
            _ => return,
        };
        let mut body = Vec::with_capacity(64);
        self.encode_body(&mut body);
        if body.first() != Some(&WIRE_VERSION_AUTH) {
            return; // no trailer to seal
        }
        let mac = key.msg_mac(domain.0, domain.1, domain.2, &body[..body.len() - 8]);
        match self {
            Frame::Msg {
                auth: Some(tag), ..
            }
            | Frame::ShardResult {
                auth: Some(tag), ..
            } => tag.mac = mac,
            _ => {}
        }
    }
}

/// The `dst` slot of a [`Frame::ShardResult`] MAC domain: shard results
/// always address the coordinator, which has no player id — this sentinel
/// stands in for it.
pub const SHARD_COORD: usize = usize::MAX;

/// Extracts the session id from an authenticated `Msg` body without fully
/// decoding it — the scoping probe for damaged frames. A truncated
/// authenticated frame usually still has its intact header (version, kind,
/// session come first), so the reactor can abort *that session* with a
/// typed [`NetError::AuthFailure`] instead of killing the connection and
/// every honest session multiplexed on it.
pub fn peek_auth_session(body: &[u8]) -> Option<SessionId> {
    if body.len() < 3 || body[0] != WIRE_VERSION_AUTH || body[1] != 1 {
        return None;
    }
    let mut r = Reader::new(&body[2..]);
    r.varint().ok()
}

/// Every way the transport plane can fail, as one typed error. `PartialEq`
/// so tests can assert exact failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The byte stream carried something the codec rejects.
    Codec(CodecError),
    /// The peer closed the stream at a frame boundary (orderly shutdown).
    Closed,
    /// The stream ended mid-frame: the connection dropped while a frame
    /// was in transit.
    Disconnected,
    /// An underlying I/O failure.
    Io(std::io::ErrorKind),
    /// The service refused a frame this endpoint sent.
    Rejected {
        /// The session named in the refused frame.
        session: SessionId,
        /// The service's reason.
        reason: RejectReason,
    },
    /// An authenticated session detected relay tampering: a frame failed
    /// its MAC check, arrived with the trailer stripped, replayed a
    /// consumed sequence number, or was cut short. The session aborts
    /// with this typed verdict; other sessions on the same connection
    /// are unaffected (the tamper is session-scoped, not connection-
    /// fatal — graceful degradation under a Byzantine relay).
    AuthFailure {
        /// The session whose channel was tampered with.
        session: SessionId,
        /// The reactor-assigned id of the offending connection.
        conn: u64,
        /// What the authentication layer caught.
        kind: TamperKind,
    },
    /// A relay connection vanished while its player still had traffic in
    /// flight — the networked run can no longer make progress.
    PeerVanished {
        /// The stalled session.
        session: SessionId,
        /// The player whose relay is gone.
        player: usize,
    },
    /// The session pump waited longer than the configured idle timeout
    /// for in-flight frames that never returned.
    IdleTimeout {
        /// The stalled session.
        session: SessionId,
        /// Frames shipped but never returned.
        in_flight: u64,
    },
    /// Not every player attached within the configured window.
    AttachTimeout {
        /// The session that never filled up.
        session: SessionId,
        /// Players attached when the window closed.
        attached: usize,
        /// Players the session's world needs.
        expected: usize,
    },
    /// The service announced that the hosted session failed and will
    /// never produce an outcome.
    Aborted {
        /// The failed session.
        session: SessionId,
    },
    /// `Service::host` refused the id: a session with it is still live
    /// (re-registering would orphan the running pump's routing).
    SessionIdTaken {
        /// The contested id.
        session: SessionId,
    },
    /// The service (or its pump) went away before producing an outcome.
    ServiceGone,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "codec: {e}"),
            NetError::Closed => write!(f, "peer closed the stream"),
            NetError::Disconnected => write!(f, "connection dropped mid-frame"),
            NetError::Io(kind) => write!(f, "i/o error: {kind:?}"),
            NetError::Rejected { session, reason } => {
                write!(
                    f,
                    "service rejected a frame for session {session}: {reason}"
                )
            }
            NetError::AuthFailure {
                session,
                conn,
                kind,
            } => write!(
                f,
                "session {session}: tampering detected on connection {conn}: {kind}"
            ),
            NetError::PeerVanished { session, player } => write!(
                f,
                "relay for session {session} player {player} vanished with traffic in flight"
            ),
            NetError::IdleTimeout { session, in_flight } => write!(
                f,
                "session {session} idle-timed out with {in_flight} frames in flight"
            ),
            NetError::AttachTimeout {
                session,
                attached,
                expected,
            } => write!(
                f,
                "session {session}: only {attached}/{expected} players attached in time"
            ),
            NetError::Aborted { session } => {
                write!(f, "service aborted session {session} without an outcome")
            }
            NetError::SessionIdTaken { session } => {
                write!(f, "session id {session} is already hosted and still live")
            }
            NetError::ServiceGone => write!(f, "service went away before the outcome"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.kind())
    }
}
