//! The versioned wire codec: a compact, hand-rolled binary encoding.
//!
//! The build container carries no crates.io registry, so there is no serde
//! derive to lean on; instead every wire type implements [`Wire`] by hand
//! against two tiny primitives:
//!
//! * **varint** — unsigned LEB128 (7 data bits per byte, continuation in
//!   the high bit). Every integer on the wire — lengths, ids, rounds,
//!   field elements — is a varint: protocol traffic is dominated by small
//!   numbers, and a `GF(2^61−1)` element fits 9 bytes worst-case against
//!   a meaningful saving on the common small values.
//! * **tag byte** — every enum writes one `u8` discriminant. The tag
//!   tables are pinned in DESIGN.md §9; adding a variant appends a tag
//!   (and bumps [`WIRE_VERSION`] only for incompatible changes).
//!
//! Decoding is strict: unknown tags, truncated buffers, lengths that
//! exceed the remaining bytes, and trailing garbage all surface a typed
//! [`CodecError`] — never a panic, never a silent best-effort value. The
//! round-trip property suite (`tests/codec.rs`) pins `decode(encode(x)) ==
//! x` across randomly generated protocol messages.

use mediator_field::Fp;
use std::fmt;

/// The wire-format version, written as the first byte of every frame body.
/// Decoders reject anything else with [`CodecError::UnknownVersion`] —
/// except [`WIRE_VERSION_AUTH`], the authenticated `Msg` layout.
pub const WIRE_VERSION: u8 = 1;

/// The authenticated wire-format version: a frame whose body ends in a
/// per-session sequence number and an 8-byte SipHash-2-4 MAC (see the
/// `auth` module). Exactly two frame kinds travel under this version —
/// `Msg` (session traffic) and `ShardResult` (sweep results, whose
/// integrity decides a scientific verdict). Control frames
/// (`Attach`/`Outcome`/`Reject`/`Abort`) and the other shard lease frames
/// originate at the endpoint that also judges them, so they stay on
/// [`WIRE_VERSION`]. A receiver running with authentication enabled
/// rejects the version-1 form of an authenticable frame (downgrade
/// rejection): stripping the MAC is itself a detected tamper.
pub const WIRE_VERSION_AUTH: u8 = 2;

/// A typed decode failure. Every malformed input maps to one of these —
/// the codec never panics on attacker-controlled bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value did.
    Truncated,
    /// The frame body announced a version this decoder does not speak.
    UnknownVersion(u8),
    /// An enum tag byte outside the known range. `what` names the type.
    UnknownTag {
        /// The type whose tag table was violated.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A varint ran past 10 bytes (no `u64` needs more).
    VarintOverflow,
    /// A length field exceeds the bytes actually available — either a
    /// corrupted stream or a hostile allocation-amplification attempt;
    /// both are rejected before any allocation happens.
    LengthOverrun {
        /// The announced element count.
        announced: u64,
        /// The bytes remaining in the buffer.
        remaining: usize,
    },
    /// Decoding finished with unconsumed bytes left over.
    TrailingBytes {
        /// How many bytes were never consumed.
        extra: usize,
    },
    /// A length-prefixed string whose bytes are not valid UTF-8. Strategy
    /// names travel the shard lease frames as strings; a hostile byte
    /// sequence must not reach `String` unchecked.
    BadString,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer ended before the value did"),
            CodecError::UnknownVersion(v) => {
                write!(f, "unknown wire version {v} (speaking {WIRE_VERSION})")
            }
            CodecError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::LengthOverrun {
                announced,
                remaining,
            } => write!(
                f,
                "length {announced} exceeds the {remaining} bytes remaining"
            ),
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the value")
            }
            CodecError::BadString => write!(f, "string bytes are not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over a received byte buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned LEB128 varint. Strict: the 10th byte may only
    /// carry the single bit that still fits in a `u64` (9 × 7 = 63 bits
    /// precede it) — an encoding claiming more than 64 bits is rejected,
    /// never silently truncated, so no two accepted byte strings decode
    /// to the same value by bit loss.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut value: u64 = 0;
        for i in 0..10 {
            let b = self.u8()?;
            if i == 9 && b > 0x01 {
                return Err(CodecError::VarintOverflow);
            }
            value |= u64::from(b & 0x7F) << (7 * i);
            if b & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError::VarintOverflow)
    }

    /// Reads a `bool` (strict: only 0 and 1 are valid).
    pub fn boolean(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::UnknownTag { what: "bool", tag }),
        }
    }

    /// Reads a collection length and vets it against the bytes actually
    /// remaining (each element needs at least one byte), so a hostile
    /// length can never drive an allocation.
    pub fn length(&mut self) -> Result<usize, CodecError> {
        let announced = self.varint()?;
        if announced > self.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                announced,
                remaining: self.remaining(),
            });
        }
        Ok(announced as usize)
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Asserts the buffer is fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

/// Appends an unsigned LEB128 varint to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A type with a binary wire form. Implementations must round-trip:
/// `decode(encode(x)) == x` (pinned by the codec property suite).
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value from the cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a buffer that must contain exactly one value.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.varint()
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // No silent truncation on 32-bit targets: a value that does not
        // fit `usize` must error, or two distinct encodings would alias
        // (and slip past downstream range checks).
        usize::try_from(r.varint()?).map_err(|_| CodecError::VarintOverflow)
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.boolean()
    }
}

/// A field element travels as the varint of its canonical representative
/// (`< 2^61 − 1`); [`Fp::new`] re-canonicalises on decode, so a
/// non-canonical residue on the wire still yields a valid element rather
/// than an error — the field is closed under reduction.
impl Wire for Fp {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.as_u64());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Fp::new(r.varint()?))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.length()?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

/// A string travels as a varint byte length followed by its UTF-8 bytes
/// (the same shape as `Vec<u8>`, with validity enforced on decode). Used
/// by the shard lease frames for generated strategy names.
impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.length()?;
        let bytes = r.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadString)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::UnknownTag {
                what: "Option",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol messages (tag tables pinned in DESIGN.md §9)
// ---------------------------------------------------------------------------

/// A shared-fanout payload travels by value; decode re-wraps it (the
/// refcount is a process-local optimisation, not a wire concept).
impl<T: Wire + Clone> Wire for mediator_sim::Payload<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(mediator_sim::Payload::new(T::decode(r)?))
    }
}

impl Wire for mediator_bcast::AbaMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        use mediator_bcast::AbaMsg::*;
        match self {
            BVal { round, v } => {
                out.push(0);
                round.encode(out);
                v.encode(out);
            }
            Aux { round, v } => {
                out.push(1);
                round.encode(out);
                v.encode(out);
            }
            Done { v } => {
                out.push(2);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use mediator_bcast::AbaMsg::*;
        match r.u8()? {
            0 => Ok(BVal {
                round: u64::decode(r)?,
                v: bool::decode(r)?,
            }),
            1 => Ok(Aux {
                round: u64::decode(r)?,
                v: bool::decode(r)?,
            }),
            2 => Ok(Done {
                v: bool::decode(r)?,
            }),
            tag => Err(CodecError::UnknownTag {
                what: "AbaMsg",
                tag,
            }),
        }
    }
}

impl Wire for mediator_vss::AvssMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        use mediator_vss::AvssMsg::*;
        match self {
            Rows(rows) => {
                out.push(0);
                rows.encode(out);
            }
            Echo(points) => {
                out.push(1);
                points.encode(out);
            }
            Ready => out.push(2),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use mediator_vss::AvssMsg::*;
        match r.u8()? {
            0 => Ok(Rows(Wire::decode(r)?)),
            1 => Ok(Echo(Wire::decode(r)?)),
            2 => Ok(Ready),
            tag => Err(CodecError::UnknownTag {
                what: "AvssMsg",
                tag,
            }),
        }
    }
}

impl Wire for mediator_vss::DetectMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        use mediator_vss::DetectMsg::*;
        match self {
            Deal { shares, blinds } => {
                out.push(0);
                shares.encode(out);
                blinds.encode(out);
            }
            Open { points } => {
                out.push(1);
                points.encode(out);
            }
            Accuse => out.push(2),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use mediator_vss::DetectMsg::*;
        match r.u8()? {
            0 => Ok(Deal {
                shares: Wire::decode(r)?,
                blinds: Wire::decode(r)?,
            }),
            1 => Ok(Open {
                points: Wire::decode(r)?,
            }),
            2 => Ok(Accuse),
            tag => Err(CodecError::UnknownTag {
                what: "DetectMsg",
                tag,
            }),
        }
    }
}

impl Wire for mediator_mpc::MpcMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        use mediator_mpc::MpcMsg::*;
        match self {
            Avss { dealer, inner } => {
                out.push(0);
                dealer.encode(out);
                inner.encode(out);
            }
            Detect { dealer, inner } => {
                out.push(1);
                dealer.encode(out);
                inner.encode(out);
            }
            Core { dealer, inner } => {
                out.push(2);
                dealer.encode(out);
                inner.encode(out);
            }
            Open { id, value } => {
                out.push(3);
                id.encode(out);
                value.encode(out);
            }
            Output { idx, value } => {
                out.push(4);
                idx.encode(out);
                value.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use mediator_mpc::MpcMsg::*;
        match r.u8()? {
            0 => Ok(Avss {
                dealer: Wire::decode(r)?,
                inner: Wire::decode(r)?,
            }),
            1 => Ok(Detect {
                dealer: Wire::decode(r)?,
                inner: Wire::decode(r)?,
            }),
            2 => Ok(Core {
                dealer: Wire::decode(r)?,
                inner: Wire::decode(r)?,
            }),
            3 => Ok(Open {
                id: Wire::decode(r)?,
                value: Wire::decode(r)?,
            }),
            4 => Ok(Output {
                idx: Wire::decode(r)?,
                value: Wire::decode(r)?,
            }),
            tag => Err(CodecError::UnknownTag {
                what: "MpcMsg",
                tag,
            }),
        }
    }
}

impl Wire for mediator_core::cheap_talk::CtMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        use mediator_core::cheap_talk::CtMsg::*;
        match self {
            Mpc(inner) => {
                out.push(0);
                inner.encode(out);
            }
            Finished => out.push(1),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use mediator_core::cheap_talk::CtMsg::*;
        match r.u8()? {
            0 => Ok(Mpc(Wire::decode(r)?)),
            1 => Ok(Finished),
            tag => Err(CodecError::UnknownTag { what: "CtMsg", tag }),
        }
    }
}

impl Wire for mediator_core::MedMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        use mediator_core::MedMsg::*;
        match self {
            Input { round, value } => {
                out.push(0);
                round.encode(out);
                value.encode(out);
            }
            Round { round, payload } => {
                out.push(1);
                round.encode(out);
                payload.encode(out);
            }
            Stop { action } => {
                out.push(2);
                action.encode(out);
            }
            Gossip { payload } => {
                out.push(3);
                payload.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use mediator_core::MedMsg::*;
        match r.u8()? {
            0 => Ok(Input {
                round: Wire::decode(r)?,
                value: Wire::decode(r)?,
            }),
            1 => Ok(Round {
                round: Wire::decode(r)?,
                payload: Wire::decode(r)?,
            }),
            2 => Ok(Stop {
                action: Wire::decode(r)?,
            }),
            3 => Ok(Gossip {
                payload: Wire::decode(r)?,
            }),
            tag => Err(CodecError::UnknownTag {
                what: "MedMsg",
                tag,
            }),
        }
    }
}

impl Wire for mediator_sim::TerminationKind {
    fn encode(&self, out: &mut Vec<u8>) {
        use mediator_sim::TerminationKind::*;
        out.push(match self {
            Quiescent => 0,
            Deadlock => 1,
            BudgetExhausted => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use mediator_sim::TerminationKind::*;
        match r.u8()? {
            0 => Ok(Quiescent),
            1 => Ok(Deadlock),
            2 => Ok(BudgetExhausted),
            tag => Err(CodecError::UnknownTag {
                what: "TerminationKind",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_at_the_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn varint_overflow_is_typed() {
        let buf = [0xFFu8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(r.varint(), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn varint_tenth_byte_overflow_bits_are_rejected_not_truncated() {
        // 9 continuation bytes put the 10th byte's contribution at bit 63:
        // only 0x00 / 0x01 still fit a u64. 0x40 would silently vanish
        // under a truncating decoder — it must error instead.
        let mut bad = vec![0x80u8; 9];
        bad.push(0x40);
        let mut r = Reader::new(&bad);
        assert_eq!(r.varint(), Err(CodecError::VarintOverflow));
        // The one legal 10-byte encoding: the top bit itself.
        let mut top = vec![0x80u8; 9];
        top.push(0x01);
        let mut r = Reader::new(&top);
        assert_eq!(r.varint(), Ok(1u64 << 63));
    }

    #[test]
    fn hostile_length_cannot_drive_allocation() {
        // A Vec<u64> announcing 2^40 elements in a 3-byte buffer.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        let err = Vec::<u64>::from_bytes(&buf).unwrap_err();
        assert!(matches!(err, CodecError::LengthOverrun { announced, .. } if announced == 1 << 40));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = 7u64.to_bytes();
        buf.push(0);
        assert_eq!(
            u64::from_bytes(&buf),
            Err(CodecError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn fp_decodes_to_canonical_form() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX); // non-canonical residue
        let fp = Fp::from_bytes(&buf).unwrap();
        assert_eq!(fp, Fp::new(u64::MAX));
    }
}
