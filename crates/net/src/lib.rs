//! The transport plane: the paper's asynchronous message-passing model
//! carried over real byte streams.
//!
//! Everything below PR 5 ran the protocols inside the in-process `World`
//! loop; this crate attaches the promised network backend to the
//! [`Session`](mediator_sim::Session) seam without moving a single state
//! machine:
//!
//! * [`wire`] — the versioned wire codec: length-prefixed frames, a
//!   compact hand-rolled binary encoding (varints + tag bytes; the build
//!   container has no serde derive to lean on), typed [`CodecError`]s for
//!   every malformed input.
//! * [`frame`] — the frame vocabulary (`Attach` / `Msg` / `Outcome` /
//!   `Reject` / `Abort`) and the one [`NetError`] every failure maps to.
//! * [`transport`] — two interchangeable backends under the same framing
//!   code: in-memory duplex pipes ([`MemTransport`]) and TCP loopback
//!   ([`TcpTransport`], always port 0 — sandbox/CI-safe).
//! * [`readiness`] — the reactor's event plumbing: a hand-rolled
//!   `poll(2)` wrapper (no `mio` in the container), a [`Waker`] bridging
//!   fd- and notify-based sources, and the [`NbListener`] accept seam.
//! * [`service`] — the multi-session [`Service`] runtime: **one reactor
//!   thread** accepts connections, routes frames by `(session-id,
//!   player-id)`, drives every hosted session as a state machine over
//!   per-connection read/write buffers, detects quiescence, surfaces
//!   outcomes ([`Service::run_many`] drives thousands of sessions
//!   concurrently on one core; `Service::host_threaded` keeps the PR 5
//!   thread-per-session engine for differential testing).
//! * [`client`] — the thin relay endpoint ([`Client`]): the network leg
//!   of every message addressed to its players.
//! * [`auth`] — authenticated frames: per-pair keyed MACs (hand-rolled
//!   SipHash-2-4) sealing every shipped `Msg` under [`WIRE_VERSION_AUTH`],
//!   with sequence numbers for replay protection and downgrade rejection.
//!   Enable via [`ServiceConfig::auth`]; tampering surfaces as the typed
//!   [`NetError::AuthFailure`] and aborts only the tampered session.
//! * [`tamper`] — the Byzantine-relay battery: [`tamper_relay`] mirrors
//!   the content-blind `bulk_relay` but applies wire-level tactics
//!   (rewrite / replay / redirect / truncate / reorder / drop / delay /
//!   strip) over frame-counter windows — the adversary plane's combinator
//!   style pointed at the transport (DESIGN.md §10).
//! * [`plan`] — [`NetPlan`]: `.serve(…)` / `.connect_tcp(…)` /
//!   `.run_over_tcp(…)` entries on every scenario plan, mirroring
//!   `.session()`.
//! * [`shard`] — the conformance sharding plane: a coordinator leases
//!   sweep units (whole `(strategy, coalition)` grids, so honest-baseline
//!   pairing survives) to workers over mem or TCP, reclaims lapsed or
//!   orphaned leases with typed owners, re-enacts `Violated` witnesses,
//!   and renders verdicts **bit-identical** to a local sweep
//!   ([`ShardedSweep`], DESIGN.md §12).
//! * [`frontier`] — the lower-bound atlas over that plane:
//!   [`run_frontier_sharded`] executes every grid cell's sweep through the
//!   coordinator/worker machinery and must render a `FRONTIER.json`
//!   byte-identical to the local fan-out (DESIGN.md §13).
//!
//! **The network is an adversarial scheduler.** A networked run delivers
//! messages in whatever order the wire returns them — which is precisely a
//! §2 scheduler choice, so Theorem 4.1's guarantee transfers as *outcome-
//! kind* agreement with in-process runs, not byte-identical traces. See
//! the `service` module docs and DESIGN.md §9 for the argument, and the
//! parity suite (`tests/parity.rs`) for the pin.
//!
//! # Example: a cheap-talk game over TCP loopback
//!
//! ```
//! use mediator_circuits::catalog;
//! use mediator_core::scenario::Scenario;
//! use mediator_field::Fp;
//! use mediator_net::NetPlan;
//! use mediator_sim::{SchedulerKind, TerminationKind};
//!
//! let n = 5;
//! let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
//!     .players(n)
//!     .tolerance(1, 0)
//!     .inputs(vec![vec![Fp::ONE]; n])
//!     .build()
//!     .expect("n = 5 > 4k+4t = 4");
//! // Real sockets: a service on an ephemeral loopback port, one relay
//! // connection per player, ~2k protocol messages over the wire.
//! let out = plan
//!     .run_over_tcp(&SchedulerKind::Fifo, 7)
//!     .expect("networked run completes");
//! assert_eq!(out.termination, TerminationKind::Quiescent);
//! assert_eq!(out.resolve_default(&vec![0; n]), vec![1; n]);
//! ```

#![warn(missing_docs)]

pub mod auth;
pub mod client;
pub mod frame;
pub mod frontier;
pub mod plan;
mod reactor;
pub mod readiness;
pub mod service;
pub mod shard;
pub mod tamper;
pub mod transport;
pub mod wire;

pub use auth::{siphash24, AuthKey, AuthTag, AuthVerdict, TamperKind};
pub use client::{bulk_relay, Client};
pub use frame::{
    peek_auth_session, Frame, NetError, OutcomeSummary, RejectReason, SessionId, MAX_FRAME_LEN,
    SHARD_COORD,
};
pub use frontier::{run_frontier_sharded, FrontierShardLog};
pub use plan::NetPlan;
pub use readiness::{ConnIo, NbListener, Poller, TryRead, TryWrite, Waker, ACCEPT_TOKEN};
pub use service::{
    run_over_mem, run_over_tcp, DeliveryOrder, Service, ServiceConfig, SessionHandle,
};
// Re-exported so sink-wiring callers need not name `mediator_sim` at all.
pub use mediator_sim::{RunMeta, TraceSink};
pub use shard::{
    coordinate, run_worker, worker_mem, worker_tcp, ShardConfig, ShardFrame, ShardListener,
    ShardLog, ShardedSweep,
};
pub use tamper::{tamper_relay, DriverMode, TamperPlan, TamperReport, TransportKind, WireTactic};
pub use transport::{
    duplex, pipe, ConnPair, FrameRx, FrameTx, FramedRx, FramedTx, MemTransport, PipeReader,
    PipeWriter, TcpTransport,
};
pub use wire::{CodecError, Wire, WIRE_VERSION, WIRE_VERSION_AUTH};
