//! The frontier atlas over the sharded plane: every cell's conformance
//! sweep leased to the PR 9 coordinator/worker machinery instead of the
//! local thread fan-out.
//!
//! Cells are heterogeneous — each carries its own `(n, k, t)`, plan kind
//! and sweep configuration — so the plane is engaged *per cell*: the
//! coordinator/worker pool is stood up for a cell's sweep, drained, and
//! torn down before the next cell starts. Classification goes through the
//! same [`mediator_core::frontier::cell_result`] fold as the local runner,
//! and the sharded verdicts are bit-identical (the `ShardedSweep`
//! guarantee), so the rendered `FRONTIER.json` must match the local
//! artifact **byte for byte** — pinned by `tests/frontier_parity.rs` on
//! both transports.

use mediator_core::frontier::{
    cell_result, cell_skipped, prepare_cell, CellExperiment, FrontierAtlas, FrontierSpec,
};

use crate::shard::{ShardConfig, ShardLog, ShardedSweep};
use crate::tamper::TransportKind;

/// Aggregate log of a sharded atlas run: one [`ShardLog`] per executed
/// cell, keyed by the cell's stable identifier.
#[derive(Debug, Default)]
pub struct FrontierShardLog {
    /// `(cell key, shard log)` for every cell whose sweep went over the
    /// plane (skipped cells contribute nothing).
    pub cells: Vec<(String, ShardLog)>,
}

impl FrontierShardLog {
    /// Total absorbed failures across all cells.
    pub fn failures(&self) -> usize {
        self.cells.iter().map(|(_, l)| l.failures.len()).sum()
    }

    /// Total sweep units leased across all cells.
    pub fn units(&self) -> usize {
        self.cells.iter().map(|(_, l)| l.units).sum()
    }

    /// How many violated cells had their witness re-enacted by a worker.
    pub fn witnesses_reenacted(&self) -> usize {
        self.cells
            .iter()
            .filter(|(_, l)| l.witness_reenacted)
            .count()
    }
}

/// Runs the whole grid with every cell's sweep sharded over `workers`
/// in-process workers on the chosen transport. The returned atlas must be
/// byte-identical (via `to_json`) to [`mediator_core::run_frontier_local`]
/// on the same spec.
pub fn run_frontier_sharded(
    spec: &FrontierSpec,
    workers: usize,
    transport: TransportKind,
    cfg: &ShardConfig,
) -> (FrontierAtlas, FrontierShardLog) {
    let mut log = FrontierShardLog::default();
    let results = spec
        .cells()
        .iter()
        .map(|cell| {
            let prepared = prepare_cell(cell, spec);
            match prepared.experiment {
                CellExperiment::CheapTalk {
                    plan,
                    label,
                    game,
                    types,
                    conf,
                } => {
                    let (report, cell_log) =
                        conf.sharded(&plan, &game, &types, workers, transport, cfg);
                    log.cells.push((prepared.cell.key(), cell_log));
                    cell_result(prepared.cell, prepared.evidence, label, &report)
                }
                CellExperiment::Companion {
                    plan,
                    game,
                    types,
                    conf,
                } => {
                    let (report, cell_log) =
                        conf.sharded(&plan, &game, &types, workers, transport, cfg);
                    log.cells.push((prepared.cell.key(), cell_log));
                    cell_result(prepared.cell, prepared.evidence, "companion", &report)
                }
                CellExperiment::Undecidable { reason } => {
                    cell_skipped(prepared.cell, prepared.evidence, reason)
                }
            }
        })
        .collect();
    (
        FrontierAtlas {
            spec: spec.clone(),
            results,
        },
        log,
    )
}
