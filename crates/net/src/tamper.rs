//! The Byzantine-relay battery: wire-level tampering as an injectable
//! fault.
//!
//! PR 4's adversary plane deviates *processes* — a Byzantine player lies
//! in its openings, equivocates, goes silent. This module deviates the
//! **network**: [`tamper_relay`] mirrors the content-blind `bulk_relay`
//! (one raw byte stream, many sessions, echo every `Msg`) but applies
//! [`WireTactic`]s to the frames of one *target session*, scheduled over
//! frame-counter [`Window`]s — the same combinator grammar the adversary
//! DSL uses for send-counter windows, pointed at the transport.
//!
//! The battery exists to demonstrate both halves of the channel
//! assumption (DESIGN.md §10):
//!
//! * **Without authentication** a rewriting relay flips cheap-talk
//!   outcomes at paper-valid `n` — the paper's theorems assume reliable
//!   private channels, and a hostile relay violates exactly that.
//! * **With authentication** ([`ServiceConfig::auth`]) every
//!   content-changing tactic is detected at the frame it touches: the
//!   target session aborts with a typed
//!   [`crate::NetError::AuthFailure`], and honest
//!   sessions multiplexed on the *same* hostile connection complete
//!   unaffected.
//!
//! Reorder and delay are deliberately *not* detectable: they are delivery
//! orders the asynchronous model already allows (any schedule is legal),
//! so an authenticated run under them must complete with an unchanged
//! outcome kind — the battery's negative control. Selective drop is
//! detectable by nobody (a withheld frame looks like a slow network) and
//! surfaces as the usual `IdleTimeout` in both modes.
//!
//! [`ServiceConfig::auth`]: crate::ServiceConfig
//! [`Window`]: mediator_core::adversary::Window

use crate::frame::{Frame, NetError, OutcomeSummary, RejectReason, SessionId, MAX_FRAME_LEN};
use crate::service::{Service, ServiceConfig};
use crate::transport::{MemTransport, TcpTransport};
use crate::wire::{CodecError, Reader, Wire, WIRE_VERSION, WIRE_VERSION_AUTH};
use mediator_core::adversary::{TamperableMsg, Window};
use mediator_core::scenario::SessionPlan;
use mediator_sim::{Outcome, SchedulerKind};
use std::collections::HashSet;
use std::io::{Read, Write};

/// One wire-level deviation, applied to a target-session `Msg` frame
/// whose per-session arrival index falls in the tactic's [`Window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireTactic {
    /// Swallow the frame (selective drop): undetectable by any MAC,
    /// surfaces as `IdleTimeout` — the model's "slow network" twin.
    Drop,
    /// Hold the frame until the target counter reaches `release_at`,
    /// then echo it late. Scheduler-legal: must not flip outcomes.
    Delay {
        /// Target-session frame index at which the held frame is freed.
        release_at: u64,
    },
    /// Buffer up to `depth` frames and echo them in reverse order.
    /// Scheduler-legal: must not flip outcomes, with or without MACs.
    Reorder {
        /// Frames buffered before the reversed flush.
        depth: usize,
    },
    /// Echo the frame twice. The duplicate replays an already-consumed
    /// sequence number — detected as `Replayed` under authentication;
    /// combined with a later [`WireTactic::Drop`] window it is the
    /// classic splice attack (substitute a stale message for a fresh
    /// one) that flips outcomes on plain channels.
    Replay,
    /// Decode the frame, apply the protocol-aware corruption
    /// ([`TamperableMsg::corrupt`] — the adversary plane's lie-in-the-
    /// openings primitive), re-encode, echo. The attack the paper's
    /// private-channel assumption exists to exclude.
    Rewrite {
        /// Additive field offset handed to [`TamperableMsg::corrupt`].
        offset: u64,
    },
    /// Decode the frame and rotate its destination header to the next
    /// player, re-encode, echo — a routing lie rather than a payload lie.
    Redirect,
    /// Echo the frame with `cut` trailing bytes removed (length prefix
    /// rewritten to match): stream damage rather than a content lie.
    Truncate {
        /// Bytes removed from the end of the frame body.
        cut: usize,
    },
    /// Decode an authenticated frame and re-encode it *without* its MAC
    /// trailer — the downgrade attack. Meaningless on plain channels;
    /// detected as `Downgrade` on authenticated ones.
    Strip,
}

/// Which sessions a [`tamper_relay`] attacks, and how: tactics are tried
/// in order against each target-session frame's arrival index, first
/// matching window wins. Frames of other sessions are echoed verbatim —
/// the honest-neighbor contrast is the point of the paired suite.
#[derive(Debug, Clone)]
pub struct TamperPlan {
    /// The session whose frames are tampered with.
    pub target: SessionId,
    /// `(window, tactic)` pairs over the target's frame counter.
    pub tactics: Vec<(Window, WireTactic)>,
}

impl TamperPlan {
    /// A plan against `target` with no tactics (echoes everything).
    pub fn against(target: SessionId) -> Self {
        TamperPlan {
            target,
            tactics: Vec::new(),
        }
    }

    /// Adds a tactic over `window` (builder style).
    pub fn tactic(mut self, window: Window, tactic: WireTactic) -> Self {
        self.tactics.push((window, tactic));
        self
    }
}

/// What a tampering relay saw: the outcomes and aborts it collected, the
/// typed rejections the service sent it, and how many frames it touched.
#[derive(Debug, Clone)]
pub struct TamperReport {
    /// Sessions that announced an outcome, with their summaries.
    pub outcomes: Vec<(SessionId, OutcomeSummary)>,
    /// Sessions the service aborted (the expected fate of a tampered
    /// session on an authenticated service).
    pub aborted: Vec<SessionId>,
    /// Typed `Reject`s received — `TamperDetected` is the service
    /// telling this relay it was caught.
    pub rejections: Vec<(SessionId, RejectReason)>,
    /// Frames a tactic touched (dropped, held, duplicated, or mutated).
    pub tampered: u64,
}

/// A multi-session relay that misbehaves: attaches every `(session,
/// player)` pair, echoes frames like `bulk_relay`, but runs `plan`'s
/// tactics against the target session's frames. Returns once `expected`
/// sessions have resolved (outcome *or* abort — a tampered session's
/// abort is a resolution here, not an error, because observing the
/// paired fates is the battery's job).
pub fn tamper_relay<M, R, W>(
    mut rx: R,
    mut tx: W,
    attaches: &[(SessionId, usize)],
    expected: usize,
    plan: &TamperPlan,
) -> Result<TamperReport, NetError>
where
    M: Wire + TamperableMsg,
    R: Read,
    W: Write,
{
    // World size of the target session (for Redirect's rotation).
    let players = attaches
        .iter()
        .filter(|(sid, _)| *sid == plan.target)
        .map(|&(_, p)| p + 1)
        .max()
        .unwrap_or(1);

    let mut wbuf: Vec<u8> = Vec::with_capacity(64 * 1024);
    for &(session, player) in attaches {
        let start = wbuf.len();
        wbuf.extend_from_slice(&[0u8; 4]);
        wbuf.push(WIRE_VERSION);
        wbuf.push(0);
        session.encode(&mut wbuf);
        player.encode(&mut wbuf);
        let len = (wbuf.len() - start - 4) as u32;
        wbuf[start..start + 4].copy_from_slice(&len.to_le_bytes());
    }
    tx.write_all(&wbuf)?;
    tx.flush()?;
    wbuf.clear();

    let mut report = TamperReport {
        outcomes: Vec::new(),
        aborted: Vec::new(),
        rejections: Vec::new(),
        tampered: 0,
    };
    let mut resolved: HashSet<SessionId> = HashSet::new();
    let mut counter: u64 = 0;
    // Frames held by Delay (release index) and Reorder (flush buffer).
    let mut delayed: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut reorder: Vec<Vec<u8>> = Vec::new();

    let mut rbuf: Vec<u8> = Vec::with_capacity(256 * 1024);
    let mut chunk = vec![0u8; 256 * 1024];
    loop {
        let n = loop {
            match rx.read(&mut chunk) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        };
        if n == 0 {
            return Err(if rbuf.is_empty() {
                NetError::Closed
            } else {
                NetError::Disconnected
            });
        }
        rbuf.extend_from_slice(&chunk[..n]);

        let mut off = 0usize;
        while rbuf.len() - off >= 4 {
            let len = u32::from_le_bytes([rbuf[off], rbuf[off + 1], rbuf[off + 2], rbuf[off + 3]]);
            if len > MAX_FRAME_LEN {
                return Err(CodecError::LengthOverrun {
                    announced: u64::from(len),
                    remaining: MAX_FRAME_LEN as usize,
                }
                .into());
            }
            let total = 4 + len as usize;
            if rbuf.len() - off < total {
                break;
            }
            let framed = &rbuf[off..off + total];
            let body = &framed[4..];
            if body.len() < 2 {
                return Err(CodecError::Truncated.into());
            }
            if body[0] != WIRE_VERSION && body[0] != WIRE_VERSION_AUTH {
                return Err(CodecError::UnknownVersion(body[0]).into());
            }
            match body[1] {
                1 => {
                    // Session id sits at byte 2 in both wire versions.
                    let session = Reader::new(&body[2..]).varint()?;
                    if session != plan.target {
                        wbuf.extend_from_slice(framed);
                    } else {
                        let i = counter;
                        counter += 1;
                        let tactic = plan
                            .tactics
                            .iter()
                            .find(|(w, _)| w.contains(i))
                            .map(|&(_, t)| t);
                        // A non-reorder frame flushes any reorder buffer
                        // first (the window closed), reversed.
                        if !matches!(tactic, Some(WireTactic::Reorder { .. })) {
                            for held in reorder.drain(..).rev() {
                                wbuf.extend_from_slice(&held);
                            }
                        }
                        match tactic {
                            None => wbuf.extend_from_slice(framed),
                            Some(WireTactic::Drop) => report.tampered += 1,
                            Some(WireTactic::Delay { release_at }) => {
                                report.tampered += 1;
                                delayed.push((release_at, framed.to_vec()));
                            }
                            Some(WireTactic::Reorder { depth }) => {
                                report.tampered += 1;
                                reorder.push(framed.to_vec());
                                if reorder.len() >= depth {
                                    for held in reorder.drain(..).rev() {
                                        wbuf.extend_from_slice(&held);
                                    }
                                }
                            }
                            Some(WireTactic::Replay) => {
                                report.tampered += 1;
                                wbuf.extend_from_slice(framed);
                                wbuf.extend_from_slice(framed);
                            }
                            Some(WireTactic::Rewrite { offset }) => {
                                report.tampered += 1;
                                let frame = Frame::<M>::decode_body(body)?;
                                if let Frame::Msg {
                                    session,
                                    src,
                                    dst,
                                    msg,
                                    auth,
                                } = frame
                                {
                                    emit(
                                        &mut wbuf,
                                        &Frame::Msg {
                                            session,
                                            src,
                                            dst,
                                            msg: msg.corrupt(offset),
                                            auth,
                                        },
                                    );
                                }
                            }
                            Some(WireTactic::Redirect) => {
                                report.tampered += 1;
                                let frame = Frame::<M>::decode_body(body)?;
                                if let Frame::Msg {
                                    session,
                                    src,
                                    dst,
                                    msg,
                                    auth,
                                } = frame
                                {
                                    emit(
                                        &mut wbuf,
                                        &Frame::Msg {
                                            session,
                                            src,
                                            dst: (dst + 1) % players,
                                            msg,
                                            auth,
                                        },
                                    );
                                }
                            }
                            Some(WireTactic::Truncate { cut }) => {
                                report.tampered += 1;
                                let keep = body.len().saturating_sub(cut).max(2);
                                let start = wbuf.len();
                                wbuf.extend_from_slice(&(keep as u32).to_le_bytes());
                                wbuf.extend_from_slice(&body[..keep]);
                                debug_assert_eq!(wbuf.len() - start, 4 + keep);
                            }
                            Some(WireTactic::Strip) => {
                                report.tampered += 1;
                                let frame = Frame::<M>::decode_body(body)?;
                                if let Frame::Msg {
                                    session,
                                    src,
                                    dst,
                                    msg,
                                    ..
                                } = frame
                                {
                                    emit(
                                        &mut wbuf,
                                        &Frame::Msg {
                                            session,
                                            src,
                                            dst,
                                            msg,
                                            auth: None,
                                        },
                                    );
                                }
                            }
                        }
                        // Free any delayed frames whose release index has
                        // arrived.
                        let due = counter;
                        let mut j = 0;
                        while j < delayed.len() {
                            if delayed[j].0 <= due {
                                let (_, bytes) = delayed.swap_remove(j);
                                wbuf.extend_from_slice(&bytes);
                            } else {
                                j += 1;
                            }
                        }
                    }
                }
                2 => {
                    let mut r = Reader::new(&body[2..]);
                    let session = u64::decode(&mut r)?;
                    let summary = OutcomeSummary::decode(&mut r)?;
                    r.finish()?;
                    report.outcomes.push((session, summary));
                    resolved.insert(session);
                    if session == plan.target {
                        delayed.clear();
                        reorder.clear();
                    }
                }
                3 => {
                    let mut r = Reader::new(&body[2..]);
                    let session = u64::decode(&mut r)?;
                    let reason = RejectReason::decode(&mut r)?;
                    r.finish()?;
                    report.rejections.push((session, reason));
                }
                4 => {
                    let mut r = Reader::new(&body[2..]);
                    let session = u64::decode(&mut r)?;
                    r.finish()?;
                    report.aborted.push(session);
                    resolved.insert(session);
                    if session == plan.target {
                        delayed.clear();
                        reorder.clear();
                    }
                }
                0 => {}
                tag => return Err(CodecError::UnknownTag { what: "Frame", tag }.into()),
            }
            off += total;
        }
        if off > 0 {
            rbuf.copy_within(off.., 0);
            rbuf.truncate(rbuf.len() - off);
        }
        if !wbuf.is_empty() {
            tx.write_all(&wbuf)?;
            tx.flush()?;
            wbuf.clear();
        }
        if resolved.len() >= expected {
            return Ok(report);
        }
    }
}

/// Appends one length-prefixed frame to `wbuf`.
fn emit<M: Wire>(wbuf: &mut Vec<u8>, frame: &Frame<M>) {
    let start = wbuf.len();
    wbuf.extend_from_slice(&[0u8; 4]);
    frame.encode_body(wbuf);
    let len = (wbuf.len() - start - 4) as u32;
    wbuf[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

// ---------------------------------------------------------------------------
// The paired-run harness
// ---------------------------------------------------------------------------

/// Which transport a paired tamper run crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-memory duplex pipes through a [`MemTransport`] hub.
    Mem,
    /// Real sockets over TCP loopback (ephemeral port).
    Tcp,
}

/// Which service driver hosts the paired sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverMode {
    /// The reactor event loop (`Service::host`).
    Reactor,
    /// The PR 5 thread-per-session engine (`Service::host_threaded`).
    Threaded,
}

/// The session id [`run_tampered_pair`] tampers with.
pub const TARGET_SID: SessionId = 1;
/// The honest session multiplexed on the same hostile connection.
pub const HONEST_SID: SessionId = 2;

/// What a paired run produced: the tampered target's fate, the honest
/// neighbor's fate, and the relay's own report.
#[derive(Debug)]
pub struct TamperedPair {
    /// The tampered session's result as the host saw it.
    pub target: Result<Outcome, NetError>,
    /// The honest session's result — the blast-radius probe: under
    /// authentication it must complete untouched.
    pub honest: Result<Outcome, NetError>,
    /// The tampering relay's own view.
    pub relay: Result<TamperReport, NetError>,
}

/// Runs the canonical paired cell: two sessions of `plan` (ids
/// [`TARGET_SID`] and [`HONEST_SID`]) hosted on one service, every player
/// of both relayed over **one** [`tamper_relay`] connection that attacks
/// only the target. The contrast between `target` and `honest` fates —
/// across transports, drivers, and `cfg.auth` — is the paired conformance
/// suite's entire subject.
pub fn run_tampered_pair<P>(
    plan: &P,
    transport: TransportKind,
    driver: DriverMode,
    cfg: ServiceConfig,
    tamper: TamperPlan,
    kind: SchedulerKind,
    seed: u64,
) -> TamperedPair
where
    P: SessionPlan,
    P::Msg: Wire + TamperableMsg + Send,
{
    let n = plan.processes();
    let attaches: Vec<(SessionId, usize)> = [TARGET_SID, HONEST_SID]
        .into_iter()
        .flat_map(|sid| (0..n).map(move |p| (sid, p)))
        .collect();

    let host = |service: &Service<P::Msg>, sid: SessionId| {
        let plan = plan.clone();
        let k = kind.clone();
        let open = move || plan.open_session(&k, seed);
        match driver {
            DriverMode::Reactor => service.host(sid, n, open),
            DriverMode::Threaded => service.host_threaded(sid, n, open),
        }
    };

    match transport {
        TransportKind::Mem => {
            let hub = MemTransport::new();
            let service = Service::with_config(Box::new(hub.listener()), cfg);
            let target = host(&service, TARGET_SID);
            let honest = host(&service, HONEST_SID);
            let (tx, rx) = hub.connect_raw();
            let relay = std::thread::spawn(move || {
                tamper_relay::<P::Msg, _, _>(rx, tx, &attaches, 2, &tamper)
            });
            let pair = TamperedPair {
                target: target.outcome(),
                honest: honest.outcome(),
                relay: relay.join().expect("tamper relay panicked"),
            };
            service.shutdown();
            pair
        }
        TransportKind::Tcp => {
            let listener = TcpTransport::bind_loopback().expect("bind loopback");
            let addr = listener.addr();
            let service = Service::with_config(Box::new(listener), cfg);
            let target = host(&service, TARGET_SID);
            let honest = host(&service, HONEST_SID);
            let relay = std::thread::spawn(move || {
                let sock = std::net::TcpStream::connect(addr)?;
                sock.set_nodelay(true).ok();
                let rx = sock.try_clone()?;
                tamper_relay::<P::Msg, _, _>(rx, sock, &attaches, 2, &tamper)
            });
            let pair = TamperedPair {
                target: target.outcome(),
                honest: honest.outcome(),
                relay: relay.join().expect("tamper relay panicked"),
            };
            service.shutdown();
            pair
        }
    }
}
