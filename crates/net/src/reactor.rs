//! The reactor: one thread, every connection, every hosted session.
//!
//! PR 5's service spent one reader thread per connection plus one pump
//! thread per session (~130 OS threads at 64 sessions, with wakeup and
//! handoff dominating the profile). The reactor replaces all of it with a
//! single readiness loop:
//!
//! * **Connections** own a read buffer (incremental frame parsing — a
//!   partial frame simply waits for more bytes, so a stalled peer cannot
//!   block anyone else) and a shared write buffer ([`ConnOut`]) that any
//!   thread may append frames to; the loop flushes it when the transport
//!   signals writable.
//! * **Sessions** run as state machines ([`SessionSm`]) executing exactly
//!   the threaded pump's ship → step → deliver → quiesce loop, but
//!   returning to the loop instead of blocking; timeouts become timer
//!   entries instead of `recv_timeout` calls.
//! * **Timers** live in a lazily-revalidated heap: idle deadlines are
//!   *updated* in place as events arrive and only re-pushed when a stale
//!   entry fires, so a session's thousands of frames cost one heap entry,
//!   not thousands.
//!
//! The single-threaded interleaving is not a compromise — it is the
//! paper's §2 asynchronous model made literal: one adversarial scheduler
//! (the loop's dispatch order) choosing which session advances next,
//! constrained only by eventual delivery. See DESIGN.md §9.

use crate::auth::TamperKind;
use crate::frame::{
    peek_auth_session, Frame, NetError, OutcomeSummary, RejectReason, SessionId, MAX_FRAME_LEN,
};
use crate::readiness::{
    ConnIo, Event, Interest, NbListener, Poller, TryRead, TryWrite, Waker, ACCEPT_TOKEN,
};
use crate::service::{broadcast, finish_recorded, DeliveryOrder, ServiceConfig};
use crate::service::{ship, Driver, FlightState, Inbound, SessionEntry, Shared};
use crate::wire::Wire;
use mediator_sim::{Outcome, Session, SessionStatus, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Token the reactor's command queue (and registry changes) wake.
pub(crate) const CMD_TOKEN: usize = usize::MAX - 1;

/// How long a draining reactor keeps trying to flush final frames to
/// peers that have stopped reading before giving up and exiting.
const DRAIN_FLUSH_CAP: Duration = Duration::from_secs(5);

fn read_token(slot: usize) -> usize {
    slot * 2
}
fn write_token(slot: usize) -> usize {
    slot * 2 + 1
}

// ---------------------------------------------------------------------------
// Shared outbound buffer
// ---------------------------------------------------------------------------

struct OutBuf {
    bytes: Vec<u8>,
    sent: usize,
    closed: bool,
}

/// A connection's outbound side, shareable across threads: threaded pumps
/// and the reactor's own session machines append length-prefixed frames;
/// the reactor flushes when the transport can take them. Appending never
/// blocks on the network — backpressure is the buffer growing, which for
/// this protocol is bounded by the sessions' own in-flight accounting.
pub(crate) struct ConnOut {
    buf: Mutex<OutBuf>,
    waker: Arc<Waker>,
    token: usize,
}

impl ConnOut {
    fn new(waker: Arc<Waker>, token: usize) -> Self {
        ConnOut {
            buf: Mutex::new(OutBuf {
                bytes: Vec::new(),
                sent: 0,
                closed: false,
            }),
            waker,
            token,
        }
    }

    /// Encodes `frame` (length prefix included) into the buffer and wakes
    /// the reactor to flush. Fails once the connection is gone — exactly
    /// the signal `ship` turns into `PeerVanished`.
    pub(crate) fn send_frame<M: Wire>(&self, frame: &Frame<M>) -> Result<(), NetError> {
        {
            let mut b = self.buf.lock().expect("conn out poisoned");
            if b.closed {
                return Err(NetError::Disconnected);
            }
            let start = b.bytes.len();
            b.bytes.extend_from_slice(&[0u8; 4]);
            frame.encode_body(&mut b.bytes);
            let len = (b.bytes.len() - start - 4) as u32;
            debug_assert!(len <= MAX_FRAME_LEN);
            b.bytes[start..start + 4].copy_from_slice(&len.to_le_bytes());
        }
        self.waker.wake(self.token);
        Ok(())
    }

    fn close(&self) {
        let mut b = self.buf.lock().expect("conn out poisoned");
        b.closed = true;
        b.bytes.clear();
        b.sent = 0;
    }

    fn is_idle(&self) -> bool {
        let b = self.buf.lock().expect("conn out poisoned");
        b.closed || b.sent == b.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// Reactor-hosted session state machine
// ---------------------------------------------------------------------------

enum SmPhase {
    /// Waiting for every world process to have a relay.
    Attaching {
        attached: Vec<bool>,
        nattached: usize,
    },
    /// The pump loop proper.
    Running,
}

/// One hosted session as a state machine: the exact ship / step / deliver
/// / quiesce loop of the threaded `pump`, with every blocking receive
/// replaced by "return to the loop and wait for events".
pub(crate) struct SessionSm<M: Wire + Send> {
    sid: SessionId,
    entry: Arc<SessionEntry<M>>,
    session: Option<Session<M>>,
    flight: FlightState<M>,
    depth: usize,
    rng: Option<StdRng>,
    phase: SmPhase,
    queue: VecDeque<Inbound<M>>,
    result: Sender<Result<Outcome, NetError>>,
    /// The service-wide outcome recorder, cloned out of the config so the
    /// finish site needs no reach back into shared state.
    sink: Option<Arc<dyn TraceSink>>,
    /// Rolls forward on every absorbed event; the heap entry is lazily
    /// revalidated against it.
    idle_deadline: Option<Instant>,
    idle_queued: bool,
}

impl<M: Wire + Send> SessionSm<M> {
    fn new(
        sid: SessionId,
        session: Session<M>,
        entry: Arc<SessionEntry<M>>,
        result: Sender<Result<Outcome, NetError>>,
        cfg: &ServiceConfig,
    ) -> Self {
        let expected = entry.expected;
        let (depth, rng) = match cfg.delivery {
            DeliveryOrder::Arrival => (0usize, None),
            DeliveryOrder::Shuffled { seed, depth } => {
                (depth, Some(StdRng::seed_from_u64(seed ^ sid)))
            }
        };
        SessionSm {
            sid,
            entry,
            session: Some(session),
            flight: FlightState::new(expected, cfg.auth),
            depth,
            rng,
            phase: SmPhase::Attaching {
                attached: vec![false; expected],
                nattached: 0,
            },
            queue: VecDeque::new(),
            result,
            sink: cfg.sink.clone(),
            idle_deadline: None,
            idle_queued: false,
        }
    }

    fn finish_now(&mut self) -> Outcome {
        let session = self.session.take().expect("session present until finish");
        finish_recorded(session, self.sink.as_ref(), &self.entry.meta)
    }

    /// Runs until the session either blocks on the network (`None`) or
    /// reaches its result. Mirrors the threaded `pump` arm for arm; the
    /// parity and differential suites pin the correspondence.
    fn run(&mut self) -> Option<Result<Outcome, NetError>> {
        let expected = self.entry.expected;
        // Attach barrier: every world process needs a relay before the
        // first message leaves the plane. (The attach-timeout timer owns
        // the deadline; blocking here is just "wait for more events".)
        if let SmPhase::Attaching {
            attached,
            nattached,
        } = &mut self.phase
        {
            while let Some(ev) = self.queue.pop_front() {
                match ev {
                    Inbound::Attached { player } => {
                        if !attached[player] {
                            attached[player] = true;
                            *nattached += 1;
                        }
                    }
                    Inbound::PeerGone { player } => {
                        if attached[player] {
                            attached[player] = false;
                            *nattached -= 1;
                        }
                    }
                    // Nothing has been shipped yet, so any early frame is
                    // a peer improvising; hold it — it will be delivered
                    // in order.
                    ev @ (Inbound::Msg { .. } | Inbound::Tampered { .. }) => self.flight.absorb(ev),
                }
            }
            if let Some((conn, kind)) = self.flight.violation {
                return Some(Err(NetError::AuthFailure {
                    session: self.sid,
                    conn,
                    kind,
                }));
            }
            if *nattached != expected {
                return None;
            }
            self.phase = SmPhase::Running;
        }
        loop {
            // 0. A tampering verdict (parse-layer event or replay
            //    detection) aborts the session with its typed owner.
            if let Some((conn, kind)) = self.flight.violation {
                return Some(Err(NetError::AuthFailure {
                    session: self.sid,
                    conn,
                    kind,
                }));
            }
            let session = self.session.as_mut().expect("session present until finish");
            // 1. Ship every freshly-sent message onto its network leg.
            for env in session.drain_outbox() {
                if let Err(e) = ship(&self.entry, self.sid, env, &mut self.flight) {
                    return Some(Err(e));
                }
            }
            // 2. Dispatch local events (start signals stay on the plane).
            if session.pump_ready() {
                if session.wants() == mediator_sim::SessionWants::Finished {
                    // Mid-run Done can only be the budget guard.
                    return Some(Ok(self.finish_now()));
                }
                continue;
            }
            // 3. Absorb everything the network has already handed back.
            while let Some(ev) = self.queue.pop_front() {
                self.flight.absorb(ev);
            }
            if let Some((conn, kind)) = self.flight.violation {
                return Some(Err(NetError::AuthFailure {
                    session: self.sid,
                    conn,
                    kind,
                }));
            }
            // 4. Deliver one held frame — immediately under Arrival order,
            //    through the shuffle buffer otherwise (force-drained once
            //    nothing is left in flight, so the policy is always live).
            if !self.flight.held.is_empty()
                && (self.flight.held.len() > self.depth || self.flight.in_flight == 0)
            {
                let i = match &mut self.rng {
                    Some(r) => r.gen_range(0..self.flight.held.len()),
                    None => 0,
                };
                let env = self.flight.held.remove(i);
                if session.inject(env.src, env.dst, env.msg).progressed()
                    && session.step().is_done()
                {
                    return Some(Ok(self.finish_now())); // budget guard
                }
                continue;
            }
            // 5. Quiescence: plane drained, buffer empty, wire empty.
            if self.flight.in_flight == 0 {
                debug_assert!(self.flight.held.is_empty());
                return Some(match session.step() {
                    SessionStatus::Done(_) => Ok(self.finish_now()),
                    SessionStatus::Running => unreachable!("empty plane must terminate"),
                });
            }
            // 6. Traffic is in flight. A vanished relay is fatal only if
            //    its player still owes frames.
            if let Some(player) = self.flight.fatal_gone() {
                return Some(Err(NetError::PeerVanished {
                    session: self.sid,
                    player,
                }));
            }
            // 7. Blocked for the network: the caller arms the idle timer.
            return None;
        }
    }
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

struct Conn {
    /// Stable reactor-assigned id (slots are recycled; ids are not) —
    /// names the culprit connection in [`NetError::AuthFailure`].
    id: u64,
    io: ConnIo,
    fd: Option<i32>,
    out: Arc<ConnOut>,
    /// Unparsed inbound bytes (a partial frame lives here until complete).
    rbuf: Vec<u8>,
    /// `(session, player)` routes this connection claimed.
    claimed: Vec<(SessionId, usize)>,
    /// TCP only: the last flush hit `WouldBlock`; poll for writability.
    want_write: bool,
}

/// An `Attach` for a not-yet-hosted session, parked for the grace window
/// (the host/connect race smoother). Replaces PR 5's 5 ms sleep-poll: the
/// parked list is swept on every host registration (wakeup-driven), and
/// the grace timer rejects only if the session truly never appeared.
struct Parked {
    session: SessionId,
    player: usize,
    conn: usize,
}

// ---------------------------------------------------------------------------
// Commands (caller thread → reactor)
// ---------------------------------------------------------------------------

/// What `Service` asks the reactor to do.
pub(crate) enum Command<M: Wire + Send> {
    /// Open and drive a session on the reactor (the entry is already in
    /// the shared registry; `open` runs on the reactor thread, so worlds
    /// need not be `Send`-friendly beyond the closure itself).
    Host {
        id: SessionId,
        entry: Arc<SessionEntry<M>>,
        open: Box<dyn FnOnce() -> Session<M> + Send>,
        result: Sender<Result<Outcome, NetError>>,
    },
    /// Stop accepting; exit once every session has resolved and every
    /// final frame is flushed.
    Drain,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Timer {
    /// A parked attach's grace window closed.
    AttachGrace {
        conn: usize,
        session: SessionId,
        player: usize,
    },
    /// A hosted session's attach barrier deadline.
    Attach { session: SessionId },
    /// A blocked session's idle deadline (lazily revalidated).
    Idle { session: SessionId },
}

// ---------------------------------------------------------------------------
// The reactor proper
// ---------------------------------------------------------------------------

pub(crate) struct Reactor<M: Wire + Send + 'static> {
    shared: Arc<Shared<M>>,
    listener: Box<dyn NbListener>,
    listener_fd: Option<i32>,
    poller: Poller,
    waker: Arc<Waker>,
    commands: Arc<Mutex<VecDeque<Command<M>>>>,
    conns: Vec<Option<Conn>>,
    sms: HashMap<SessionId, SessionSm<M>>,
    /// Events for sessions registered but whose `Host` command has not
    /// been processed yet (the registry insert happens on the caller's
    /// thread, so an attach can beat the command here).
    staged: HashMap<SessionId, Vec<Inbound<M>>>,
    parked: Vec<Parked>,
    timers: BinaryHeap<Reverse<(Instant, Timer)>>,
    draining: bool,
    drain_deadline: Option<Instant>,
    scratch: Vec<u8>,
    next_conn_id: u64,
}

impl<M: Wire + Send + 'static> Reactor<M> {
    pub(crate) fn new(
        shared: Arc<Shared<M>>,
        listener: Box<dyn NbListener>,
        poller: Poller,
        commands: Arc<Mutex<VecDeque<Command<M>>>>,
    ) -> Self {
        let waker = poller.waker();
        Reactor {
            shared,
            listener,
            listener_fd: None,
            poller,
            waker,
            commands,
            conns: Vec::new(),
            sms: HashMap::new(),
            staged: HashMap::new(),
            parked: Vec::new(),
            timers: BinaryHeap::new(),
            draining: false,
            drain_deadline: None,
            scratch: vec![0u8; 64 * 1024],
            next_conn_id: 0,
        }
    }

    pub(crate) fn run(mut self) {
        self.listener_fd = self.listener.register(&self.waker);
        let mut events: Vec<Event> = Vec::new();
        let mut notified: Vec<usize> = Vec::new();
        let mut interests: Vec<Interest> = Vec::new();
        let mut runnable: HashSet<SessionId> = HashSet::new();

        loop {
            runnable.clear();
            self.process_commands(&mut runnable);
            self.sweep_parked(&mut runnable);
            self.fire_timers(&mut runnable);
            self.advance(&mut runnable);

            if self.draining && self.sms.is_empty() && self.quiet() {
                let flushed = self
                    .conns
                    .iter()
                    .flatten()
                    .all(|c| c.out.is_idle() && !c.want_write);
                let gave_up = self
                    .drain_deadline
                    .map(|d| Instant::now() >= d)
                    .unwrap_or(false);
                if flushed || gave_up {
                    break;
                }
            }

            interests.clear();
            if let Some(fd) = self.listener_fd {
                if !self.draining {
                    interests.push(Interest {
                        token: ACCEPT_TOKEN,
                        fd,
                        read: true,
                        write: false,
                    });
                }
            }
            for (slot, conn) in self.conns.iter().enumerate() {
                if let Some(conn) = conn {
                    if let Some(fd) = conn.fd {
                        interests.push(Interest {
                            token: read_token(slot),
                            fd,
                            read: true,
                            write: conn.want_write,
                        });
                    }
                }
            }
            let timeout = self.next_deadline().map(|d| {
                d.saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1))
            });

            self.poller
                .wait(&interests, timeout, &mut events, &mut notified);

            for ev in events.drain(..) {
                if ev.token == ACCEPT_TOKEN {
                    self.accept_ready(&mut runnable);
                    continue;
                }
                let slot = ev.token / 2;
                if ev.readable {
                    self.conn_readable(slot, &mut runnable);
                }
                if ev.writable {
                    self.conn_flush(slot, &mut runnable);
                }
            }
            for token in notified.drain(..) {
                match token {
                    ACCEPT_TOKEN => self.accept_ready(&mut runnable),
                    CMD_TOKEN => {} // commands drain at the top of the loop
                    t if t % 2 == 0 => self.conn_readable(t / 2, &mut runnable),
                    t => self.conn_flush(t / 2, &mut runnable),
                }
            }
            self.advance(&mut runnable);
        }
    }

    /// True when no threaded pump is still running (they hold the final
    /// frames the drain must flush).
    fn quiet(&self) -> bool {
        self.shared.live_pumps.load(Ordering::Acquire) == 0
            && self
                .shared
                .sessions
                .lock()
                .expect("sessions poisoned")
                .is_empty()
    }

    // -- commands / registry ------------------------------------------------

    fn process_commands(&mut self, runnable: &mut HashSet<SessionId>) {
        loop {
            let cmd = self.commands.lock().expect("commands poisoned").pop_front();
            match cmd {
                Some(Command::Host {
                    id,
                    entry,
                    open,
                    result,
                }) => {
                    let session = open().with_session_id(id);
                    let mut sm = SessionSm::new(id, session, entry, result, &self.shared.cfg);
                    if let Some(evs) = self.staged.remove(&id) {
                        sm.queue.extend(evs);
                    }
                    self.timers.push(Reverse((
                        Instant::now() + self.shared.cfg.attach_timeout,
                        Timer::Attach { session: id },
                    )));
                    self.sms.insert(id, sm);
                    runnable.insert(id);
                }
                Some(Command::Drain) => {
                    self.draining = true;
                    self.drain_deadline = Some(Instant::now() + DRAIN_FLUSH_CAP);
                    self.listener.close();
                    self.listener_fd = None;
                }
                None => break,
            }
        }
    }

    /// Re-tries parked attaches against the registry — woken by every
    /// `host` call, so a session registered mid-grace attaches immediately
    /// instead of after a poll interval.
    fn sweep_parked(&mut self, runnable: &mut HashSet<SessionId>) {
        let mut i = 0;
        while i < self.parked.len() {
            let sid = self.parked[i].session;
            if let Some(entry) = self.shared.lookup(sid) {
                let p = self.parked.swap_remove(i);
                self.attach_player(&entry, p.session, p.player, p.conn, runnable);
            } else {
                i += 1;
            }
        }
    }

    // -- timers -------------------------------------------------------------

    fn next_deadline(&self) -> Option<Instant> {
        self.timers.peek().map(|Reverse((d, _))| *d)
    }

    fn fire_timers(&mut self, runnable: &mut HashSet<SessionId>) {
        let now = Instant::now();
        while let Some(Reverse((deadline, _))) = self.timers.peek() {
            if *deadline > now {
                break;
            }
            let Reverse((_, timer)) = self.timers.pop().expect("peeked");
            match timer {
                Timer::AttachGrace {
                    conn,
                    session,
                    player,
                } => {
                    let Some(i) = self
                        .parked
                        .iter()
                        .position(|p| p.conn == conn && p.session == session && p.player == player)
                    else {
                        continue; // already swept
                    };
                    let p = self.parked.swap_remove(i);
                    match self.shared.lookup(session) {
                        Some(entry) => {
                            self.attach_player(&entry, session, p.player, p.conn, runnable)
                        }
                        None => {
                            if let Some(conn) = self.conns.get(conn).and_then(|c| c.as_ref()) {
                                let _ = conn.out.send_frame::<M>(&Frame::Reject {
                                    session,
                                    reason: RejectReason::UnknownSession,
                                });
                            }
                        }
                    }
                }
                Timer::Attach { session } => {
                    let attach_failed = match self.sms.get(&session) {
                        Some(sm) => match &sm.phase {
                            SmPhase::Attaching { nattached, .. } => Some(*nattached),
                            SmPhase::Running => None,
                        },
                        None => None,
                    };
                    if let Some(attached) = attach_failed {
                        let expected = self
                            .sms
                            .get(&session)
                            .map(|sm| sm.entry.expected)
                            .unwrap_or(0);
                        self.finish_session(
                            session,
                            Err(NetError::AttachTimeout {
                                session,
                                attached,
                                expected,
                            }),
                        );
                    }
                }
                Timer::Idle { session } => {
                    let verdict = match self.sms.get_mut(&session) {
                        Some(sm) => match sm.idle_deadline {
                            Some(d) if d <= now => Some(sm.flight.in_flight),
                            Some(d) => {
                                // Stale: events pushed the deadline out.
                                self.timers.push(Reverse((d, Timer::Idle { session })));
                                None
                            }
                            None => {
                                sm.idle_queued = false;
                                None
                            }
                        },
                        None => None,
                    };
                    if let Some(in_flight) = verdict {
                        self.finish_session(
                            session,
                            Err(NetError::IdleTimeout { session, in_flight }),
                        );
                    }
                }
            }
        }
    }

    // -- session driving ----------------------------------------------------

    fn advance(&mut self, runnable: &mut HashSet<SessionId>) {
        if runnable.is_empty() {
            return;
        }
        let ids: Vec<SessionId> = runnable.drain().collect();
        for sid in ids {
            let outcome = match self.sms.get_mut(&sid) {
                Some(sm) => {
                    let outcome = sm.run();
                    if outcome.is_none() {
                        // Blocked. Arm (or roll) the idle deadline only in
                        // the running phase — attach has its own timer.
                        if matches!(sm.phase, SmPhase::Running) {
                            let d = Instant::now() + self.shared.cfg.idle_timeout;
                            sm.idle_deadline = Some(d);
                            if !sm.idle_queued {
                                sm.idle_queued = true;
                                self.timers.push(Reverse((d, Timer::Idle { session: sid })));
                            }
                        }
                    }
                    outcome
                }
                None => None,
            };
            if let Some(result) = outcome {
                self.finish_session(sid, result);
            }
        }
    }

    fn finish_session(&mut self, sid: SessionId, result: Result<Outcome, NetError>) {
        let Some(sm) = self.sms.remove(&sid) else {
            return;
        };
        // Unregister first: frames for a finished session are dead.
        // Identity-guarded — only this session's own entry may be removed.
        {
            let mut sessions = self.shared.sessions.lock().expect("sessions poisoned");
            if sessions
                .get(&sid)
                .map(|e| Arc::ptr_eq(e, &sm.entry))
                .unwrap_or(false)
            {
                sessions.remove(&sid);
            }
        }
        match &result {
            Ok(outcome) => broadcast(
                &sm.entry,
                &Frame::Outcome {
                    session: sid,
                    summary: OutcomeSummary::from(outcome),
                },
            ),
            // A failed session will never yield an outcome: tell the
            // relays so none of them blocks forever.
            Err(_) => broadcast(&sm.entry, &Frame::Abort { session: sid }),
        }
        let _ = sm.result.send(result);
        self.staged.remove(&sid);
    }

    /// Routes an inbound event to whatever drives the session.
    fn deliver(
        &mut self,
        entry: &SessionEntry<M>,
        sid: SessionId,
        ev: Inbound<M>,
        runnable: &mut HashSet<SessionId>,
    ) {
        match &entry.driver {
            Driver::Threaded(tx) => {
                let _ = tx.send(ev);
            }
            Driver::Reactor => {
                if let Some(sm) = self.sms.get_mut(&sid) {
                    sm.queue.push_back(ev);
                    // Every absorbed event restarts the idle window, the
                    // way `recv_timeout` restarted per received event.
                    if sm.idle_deadline.is_some() {
                        sm.idle_deadline = Some(Instant::now() + self.shared.cfg.idle_timeout);
                    }
                    runnable.insert(sid);
                } else {
                    self.staged.entry(sid).or_default().push(ev);
                }
            }
        }
    }

    // -- accept / read / write ----------------------------------------------

    fn accept_ready(&mut self, _runnable: &mut HashSet<SessionId>) {
        loop {
            match self.listener.try_accept() {
                Ok(Some(io)) => self.add_conn(io),
                Ok(None) => break,
                Err(_) => {
                    self.listener_fd = None;
                    break;
                }
            }
        }
    }

    fn add_conn(&mut self, mut io: ConnIo) {
        let slot = self
            .conns
            .iter()
            .position(|c| c.is_none())
            .unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
        let fd = io.register(&self.waker, read_token(slot));
        let out = Arc::new(ConnOut::new(Arc::clone(&self.waker), write_token(slot)));
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        self.conns[slot] = Some(Conn {
            id,
            io,
            fd,
            out,
            rbuf: Vec::new(),
            claimed: Vec::new(),
            want_write: false,
        });
    }

    fn conn_readable(&mut self, slot: usize, runnable: &mut HashSet<SessionId>) {
        let Some(mut conn) = self.conns.get_mut(slot).and_then(|c| c.take()) else {
            return;
        };
        let mut dead = false;
        loop {
            match conn.io.try_read(&mut self.scratch) {
                TryRead::Data(n) => {
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    if n < self.scratch.len() {
                        break;
                    }
                }
                TryRead::WouldBlock => break,
                TryRead::Eof | TryRead::Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        // Parse every complete frame; a trailing partial frame stays
        // buffered until its bytes arrive (one slow peer stalls only
        // itself — the slow-loris test pins this).
        let mut off = 0usize;
        while !dead && conn.rbuf.len() - off >= 4 {
            let len = u32::from_le_bytes([
                conn.rbuf[off],
                conn.rbuf[off + 1],
                conn.rbuf[off + 2],
                conn.rbuf[off + 3],
            ]);
            if len > MAX_FRAME_LEN {
                // An oversized announcement is corruption or hostility:
                // cut the connection before buffering the claimed body.
                dead = true;
                break;
            }
            let total = 4 + len as usize;
            if conn.rbuf.len() - off < total {
                break;
            }
            let body = &conn.rbuf[off + 4..off + total];
            match Frame::<M>::decode_body(body) {
                Ok(frame) => match self.vet_frame(&frame, body) {
                    None => self.process_frame(&mut conn, slot, frame, runnable),
                    Some(kind) => {
                        let session = match &frame {
                            Frame::Msg { session, .. } => *session,
                            _ => unreachable!("only Msg frames are vetted"),
                        };
                        self.tampered(&conn, session, kind, runnable);
                    }
                },
                Err(_) => {
                    // Undecodable bytes. On an authenticated service a
                    // damaged frame that still names its session aborts
                    // that session alone (the relay is Byzantine, but
                    // its other sessions stay live); structurally
                    // anonymous garbage still kills the connection.
                    match self
                        .shared
                        .cfg
                        .auth
                        .and_then(|_| peek_auth_session(&conn.rbuf[off + 4..off + total]))
                    {
                        Some(session) => {
                            self.tampered(&conn, session, TamperKind::Truncated, runnable)
                        }
                        None => {
                            dead = true;
                            break;
                        }
                    }
                }
            }
            off += total;
        }
        if off > 0 {
            conn.rbuf.copy_within(off.., 0);
            conn.rbuf.truncate(conn.rbuf.len() - off);
        }
        if dead {
            self.kill_conn(slot, conn, runnable);
        } else {
            self.conns[slot] = Some(conn);
        }
    }

    /// Authenticates a decoded frame against the service key, if one is
    /// configured. `None` = pass; `Some(kind)` = a violation to scope to
    /// the frame's session. Only `Msg` frames carry MACs: control frames
    /// either originate here (`Outcome`/`Reject`/`Abort` are ignored
    /// inbound) or precede any routing (`Attach` — a forged attach can
    /// only lose the race to the honest relay and collect a `Reject`).
    fn vet_frame(&self, frame: &Frame<M>, body: &[u8]) -> Option<TamperKind> {
        let key = self.shared.cfg.auth.as_ref()?;
        let Frame::Msg {
            session,
            src,
            dst,
            auth,
            ..
        } = frame
        else {
            return None;
        };
        match auth {
            Some(tag) => {
                let prefix = &body[..body.len() - 8];
                if key
                    .verify_msg(*session, *src, *dst, prefix, tag.mac)
                    .is_authentic()
                {
                    None
                } else {
                    Some(TamperKind::BadMac)
                }
            }
            // Downgrade rejection: an authenticated service refuses
            // version-1 `Msg` frames — stripping the MAC is a tamper.
            None => Some(TamperKind::Downgrade),
        }
    }

    /// A tampering verdict for `session` on `conn`: tell the offending
    /// connection (typed `Reject`), then hand the violation to whatever
    /// drives the session, which aborts it with [`NetError::AuthFailure`].
    /// The connection itself survives — its other sessions are unharmed.
    fn tampered(
        &mut self,
        conn: &Conn,
        session: SessionId,
        kind: TamperKind,
        runnable: &mut HashSet<SessionId>,
    ) {
        let _ = conn.out.send_frame::<M>(&Frame::Reject {
            session,
            reason: RejectReason::TamperDetected,
        });
        if let Some(entry) = self.shared.lookup(session) {
            self.deliver(
                &entry,
                session,
                Inbound::Tampered {
                    conn: conn.id,
                    kind,
                },
                runnable,
            );
        }
    }

    fn process_frame(
        &mut self,
        conn: &mut Conn,
        slot: usize,
        frame: Frame<M>,
        runnable: &mut HashSet<SessionId>,
    ) {
        match frame {
            Frame::Attach { session, player } => match self.shared.lookup(session) {
                Some(entry) => {
                    match claim_route(&entry, player, &conn.out) {
                        None => {
                            conn.claimed.push((session, player));
                            self.deliver(&entry, session, Inbound::Attached { player }, runnable);
                        }
                        Some(reason) => {
                            let _ = conn.out.send_frame::<M>(&Frame::Reject { session, reason });
                        }
                    };
                }
                None => {
                    // Park for the grace window (the host/connect race).
                    self.parked.push(Parked {
                        session,
                        player,
                        conn: slot,
                    });
                    self.timers.push(Reverse((
                        Instant::now() + self.shared.cfg.attach_grace,
                        Timer::AttachGrace {
                            conn: slot,
                            session,
                            player,
                        },
                    )));
                }
            },
            Frame::Msg {
                session,
                src,
                dst,
                msg,
                auth,
            } => {
                // A frame for an unknown session is a late echo for a run
                // that already finished: dead, by design.
                if let Some(entry) = self.shared.lookup(session) {
                    // Range-check before delivery: a hostile-but-well-
                    // formed frame must never panic a hosted session.
                    if src >= entry.expected || dst >= entry.expected {
                        let _ = conn.out.send_frame::<M>(&Frame::Reject {
                            session,
                            reason: RejectReason::PlayerOutOfRange,
                        });
                    } else {
                        // Only `dst`'s own relay can complete a shipped
                        // frame's network leg (see `Inbound::Msg`).
                        let returned = entry
                            .routes
                            .lock()
                            .expect("routes poisoned")
                            .get(&dst)
                            .map(|r| Arc::ptr_eq(r, &conn.out))
                            .unwrap_or(false);
                        self.deliver(
                            &entry,
                            session,
                            Inbound::Msg {
                                src,
                                dst,
                                msg,
                                returned,
                                seq: auth.map(|tag| tag.seq),
                                conn: conn.id,
                            },
                            runnable,
                        );
                    }
                }
            }
            // `Outcome`/`Reject`/`Abort` only travel service → client;
            // shard lease frames belong to the shard coordinator plane,
            // not a session service. All are dead on arrival here.
            Frame::Outcome { .. }
            | Frame::Reject { .. }
            | Frame::Abort { .. }
            | Frame::ShardRequest { .. }
            | Frame::ShardGrant { .. }
            | Frame::ShardResult { .. }
            | Frame::ShardWitness { .. }
            | Frame::ShardDrain => {}
        }
    }

    /// Attaches `player` on a conn referenced by slot (the parked-attach
    /// path, where the conn sits in the slab).
    fn attach_player(
        &mut self,
        entry: &Arc<SessionEntry<M>>,
        sid: SessionId,
        player: usize,
        slot: usize,
        runnable: &mut HashSet<SessionId>,
    ) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
            return; // the conn died while parked
        };
        match claim_route(entry, player, &conn.out) {
            None => {
                conn.claimed.push((sid, player));
                self.deliver(entry, sid, Inbound::Attached { player }, runnable);
            }
            Some(reason) => {
                let _ = conn.out.send_frame::<M>(&Frame::Reject {
                    session: sid,
                    reason,
                });
            }
        }
    }

    fn conn_flush(&mut self, slot: usize, runnable: &mut HashSet<SessionId>) {
        let Some(mut conn) = self.conns.get_mut(slot).and_then(|c| c.take()) else {
            return;
        };
        let mut dead = false;
        {
            let mut b = conn.out.buf.lock().expect("conn out poisoned");
            while b.sent < b.bytes.len() {
                match conn.io.try_write(&b.bytes[b.sent..]) {
                    TryWrite::Wrote(n) => b.sent += n,
                    TryWrite::WouldBlock => break,
                    TryWrite::Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if b.sent == b.bytes.len() {
                b.bytes.clear();
                b.sent = 0;
                conn.want_write = false;
            } else if !dead {
                conn.want_write = true;
            }
        }
        if dead {
            self.kill_conn(slot, conn, runnable);
        } else {
            self.conns[slot] = Some(conn);
        }
    }

    /// Tears a connection down: closes the shared out-buffer (pumps then
    /// see `PeerVanished` at `ship`), releases claimed routes, and tells
    /// each affected session its relay is gone.
    fn kill_conn(&mut self, slot: usize, mut conn: Conn, runnable: &mut HashSet<SessionId>) {
        conn.out.close();
        for (sid, player) in std::mem::take(&mut conn.claimed) {
            if let Some(entry) = self.shared.lookup(sid) {
                let mine = {
                    let mut routes = entry.routes.lock().expect("routes poisoned");
                    let mine = routes
                        .get(&player)
                        .map(|r| Arc::ptr_eq(r, &conn.out))
                        .unwrap_or(false);
                    if mine {
                        routes.remove(&player);
                    }
                    mine
                };
                if mine {
                    self.deliver(&entry, sid, Inbound::PeerGone { player }, runnable);
                }
            }
        }
        self.parked.retain(|p| p.conn != slot);
        self.conns[slot] = None;
    }
}

/// Claims `(player → out)` in the entry's route table, reporting the
/// reject reason if the claim is impossible. Shared by the direct-attach
/// and parked-attach paths so they cannot drift.
fn claim_route<M>(
    entry: &SessionEntry<M>,
    player: usize,
    out: &Arc<ConnOut>,
) -> Option<RejectReason> {
    if player >= entry.expected {
        return Some(RejectReason::PlayerOutOfRange);
    }
    let mut routes = entry.routes.lock().expect("routes poisoned");
    match routes.entry(player) {
        std::collections::hash_map::Entry::Vacant(v) => {
            v.insert(Arc::clone(out));
            None
        }
        std::collections::hash_map::Entry::Occupied(_) => Some(RejectReason::PlayerTaken),
    }
}
