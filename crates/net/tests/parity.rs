//! Session-vs-network parity, and the service runtime's failure modes.
//!
//! **What parity means here.** The network backend delivers messages in
//! whatever order the wire returns them; that is a *delivery order* in the
//! paper's adversary-scheduler sense, not the same schedule the in-process
//! scheduler drew. Theorem 4.1 promises the protocol implements the
//! mediator under **every** scheduler, so the right assertion is
//! **outcome-kind agreement** — same termination kind, same resolved
//! action profile — never byte-identical traces (which differ by design:
//! the wire hop re-sequences every message). DESIGN.md §9 spells out the
//! distinction; these tests pin it.

use mediator_circuits::catalog;
use mediator_core::cheap_talk::CtMsg;
use mediator_core::scenario::{CheapTalkPlan, MediatorPlan, Scenario, SessionPlan};
use mediator_field::Fp;
use mediator_net::{
    run_over_mem, Client, DeliveryOrder, Frame, MemTransport, NetError, NetPlan, RejectReason,
    Service, ServiceConfig,
};
use mediator_sim::{Outcome, SchedulerKind, TerminationKind};
use std::time::Duration;

fn majority_plan(n: usize) -> CheapTalkPlan {
    Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("n = 5 > 4k+4t = 4")
}

fn mediator_plan(n: usize) -> MediatorPlan {
    Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("tolerance fine")
}

/// Outcome-kind agreement: termination kind and resolved profile.
fn assert_outcome_parity(local: &Outcome, networked: &Outcome, players: usize, label: &str) {
    assert_eq!(
        networked.termination, local.termination,
        "{label}: termination kind"
    );
    let defaults = vec![0; local.moves.len()];
    assert_eq!(
        networked.resolve_default(&defaults)[..players],
        local.resolve_default(&defaults)[..players],
        "{label}: resolved action profile"
    );
}

#[test]
fn cheap_talk_over_mem_matches_in_process_outcome_kinds() {
    let n = 5;
    let plan = majority_plan(n);
    for seed in 0..3 {
        let local = plan.run_with(&SchedulerKind::Random, seed);
        assert_eq!(local.termination, TerminationKind::Quiescent);
        let networked = plan
            .run_over_mem(&SchedulerKind::Random, seed)
            .expect("networked run completes");
        assert_outcome_parity(&local, &networked, n, &format!("mem seed {seed}"));
        // The networked run moved every protocol message over the wire.
        assert!(networked.messages_sent >= local.messages_sent);
    }
}

#[test]
fn cheap_talk_over_tcp_matches_in_process_outcome_kinds() {
    let n = 5;
    let plan = majority_plan(n);
    for seed in [0u64, 9] {
        let local = plan.run_with(&SchedulerKind::Fifo, seed);
        let networked = plan
            .run_over_tcp(&SchedulerKind::Fifo, seed)
            .expect("tcp loopback run completes");
        assert_outcome_parity(&local, &networked, n, &format!("tcp seed {seed}"));
    }
}

#[test]
fn shuffled_delivery_is_just_another_scheduler() {
    // The service's own reorder buffer on top of the transport's raced
    // arrivals: still a valid delivery order, still the same outcome.
    let n = 5;
    let plan = majority_plan(n);
    let local = plan.run_with(&SchedulerKind::Random, 4);
    let cfg = ServiceConfig {
        delivery: DeliveryOrder::Shuffled {
            seed: 0xC0FFEE,
            depth: 8,
        },
        ..ServiceConfig::default()
    };
    let networked = run_over_mem(&plan, &SchedulerKind::Random, 4, cfg).expect("shuffled run");
    assert_outcome_parity(&local, &networked, n, "shuffled");
}

#[test]
fn mediator_game_over_mem_matches_in_process_outcome_kinds() {
    // The mediator itself (process n) gets a relay too: its STOP batch
    // travels the wire like any player message.
    let n = 5;
    let plan = mediator_plan(n);
    for seed in 0..3 {
        let local = plan.run_with(&SchedulerKind::Random, seed);
        let networked = plan
            .run_over_mem(&SchedulerKind::Random, seed)
            .expect("networked mediator game completes");
        assert_outcome_parity(&local, &networked, n, &format!("mediator seed {seed}"));
    }
}

#[test]
fn budget_exhaustion_travels_the_wire() {
    // A starved step budget terminates the networked run with the same
    // kind the in-process run reports.
    let plan = majority_plan(5).max_steps(40);
    let local = plan.run_with(&SchedulerKind::Fifo, 1);
    assert_eq!(local.termination, TerminationKind::BudgetExhausted);
    let networked = plan
        .run_over_mem(&SchedulerKind::Fifo, 1)
        .expect("networked run still yields an outcome");
    assert_eq!(networked.termination, TerminationKind::BudgetExhausted);
}

#[test]
fn run_many_drives_concurrent_sessions_to_the_same_profile() {
    let n = 5;
    let sessions = 8u64;
    let plan = majority_plan(n);
    let hub = MemTransport::new();
    let service = Service::start(Box::new(hub.listener()));

    // Relays connect first; the attach grace window absorbs the race with
    // run_many's host loop.
    let relays: Vec<_> = (0..sessions)
        .flat_map(|sid| (0..n).map(move |player| (sid, player)))
        .map(|(sid, player)| {
            let mut client = Client::<CtMsg>::mem(&hub);
            std::thread::spawn(move || {
                client.attach(sid, player).expect("attach");
                client.relay().expect("relay")
            })
        })
        .collect();

    let results = service.run_many(
        &plan,
        (0..sessions).map(|sid| (sid, SchedulerKind::Random, sid)),
    );
    assert_eq!(results.len(), sessions as usize);
    let local = plan.run_with(&SchedulerKind::Random, 0);
    for (sid, result) in results {
        let outcome = result.unwrap_or_else(|e| panic!("session {sid}: {e}"));
        assert_outcome_parity(&local, &outcome, n, &format!("session {sid}"));
    }
    for relay in relays {
        let summary = relay.join().expect("relay thread");
        assert_eq!(summary.termination, TerminationKind::Quiescent);
        assert_eq!(&summary.moves[..n], &vec![Some(1); n][..]);
    }
    service.shutdown();
}

// ---------------------------------------------------------------------------
// Failure modes: every stall has a typed owner
// ---------------------------------------------------------------------------

fn quick_cfg() -> ServiceConfig {
    ServiceConfig {
        idle_timeout: Duration::from_secs(5),
        attach_timeout: Duration::from_millis(400),
        attach_grace: Duration::from_millis(100),
        delivery: DeliveryOrder::Arrival,
        ..ServiceConfig::default()
    }
}

#[test]
fn attaching_to_an_unknown_session_is_rejected() {
    let hub = MemTransport::new();
    let service = Service::<mediator_core::cheap_talk::CtMsg>::with_config(
        Box::new(hub.listener()),
        quick_cfg(),
    );
    let mut client = Client::<CtMsg>::mem(&hub);
    client.attach(404, 0).expect("send attach");
    assert_eq!(
        client.relay(),
        Err(NetError::Rejected {
            session: 404,
            reason: RejectReason::UnknownSession
        })
    );
    service.shutdown();
}

#[test]
fn double_attach_and_out_of_range_are_rejected() {
    let plan = majority_plan(5);
    let hub = MemTransport::new();
    let service = Service::with_config(Box::new(hub.listener()), quick_cfg());
    let handle = plan.serve(&service, 7, SchedulerKind::Fifo, 0);

    let mut first = plan.connect_mem(&hub);
    first.attach(7, 0).expect("attach");
    let mut second = plan.connect_mem(&hub);
    second.attach(7, 0).expect("attach");
    assert_eq!(
        second.relay(),
        Err(NetError::Rejected {
            session: 7,
            reason: RejectReason::PlayerTaken
        })
    );
    let mut ninth = plan.connect_mem(&hub);
    ninth.attach(7, 9).expect("attach");
    assert_eq!(
        ninth.relay(),
        Err(NetError::Rejected {
            session: 7,
            reason: RejectReason::PlayerOutOfRange
        })
    );

    // Only one of five players ever attached: the pump gives up with a
    // typed attach timeout, and the attached relay is told via Abort.
    assert_eq!(
        handle.outcome().expect_err("attach barrier must time out"),
        NetError::AttachTimeout {
            session: 7,
            attached: 1,
            expected: 5
        }
    );
    assert_eq!(first.relay(), Err(NetError::Aborted { session: 7 }));
    service.shutdown();
}

#[test]
fn improvised_in_range_frames_cannot_fake_quiescence() {
    // A connection that never attached sends well-formed, in-range Msg
    // frames mid-run (honest mediator-game players ignore gossip, so the
    // injections are observationally inert). Before per-route `returned`
    // gating, each forged frame consumed a shipped frame's in-flight
    // slot and could terminate the run early with a forged-quiescent
    // outcome; now the accounting only trusts dst's own relay.
    let n = 5;
    let plan = mediator_plan(n);
    let hub = MemTransport::new();
    let service = Service::start(Box::new(hub.listener()));
    let handle = plan.serve(&service, 21, SchedulerKind::Random, 1);

    let relays: Vec<_> = (0..plan.processes())
        .map(|player| {
            let mut client = plan.connect_mem(&hub);
            std::thread::spawn(move || {
                client.attach(21, player).expect("attach");
                client.relay()
            })
        })
        .collect();
    let mut attacker = plan.connect_mem(&hub);
    for _ in 0..32 {
        attacker
            .send(&Frame::Msg {
                session: 21,
                src: 1,
                dst: 3,
                msg: mediator_core::MedMsg::Gossip { payload: vec![] },
                auth: None,
            })
            .expect("forged frame accepted onto the wire");
    }
    drop(attacker);

    let outcome = handle.outcome().expect("run completes despite forgeries");
    let local = plan.run_with(&SchedulerKind::Random, 1);
    assert_outcome_parity(&local, &outcome, n, "forged gossip");
    for relay in relays {
        assert!(relay.join().expect("relay thread").is_ok());
    }
    service.shutdown();
}

#[test]
fn forged_out_of_range_msg_is_rejected_not_a_panic() {
    // A hostile-but-well-formed Msg frame naming a process outside the
    // session's world must bounce at the routing layer — reaching
    // World::inject would panic the pump and hang every relay.
    let plan = majority_plan(5);
    let hub = MemTransport::new();
    let service = Service::with_config(Box::new(hub.listener()), quick_cfg());
    let handle = plan.serve(&service, 5, SchedulerKind::Fifo, 0);

    let mut attacker = plan.connect_mem(&hub);
    attacker
        .send(&Frame::Msg {
            session: 5,
            src: 999,
            dst: 0,
            msg: CtMsg::Finished,
            auth: None,
        })
        .expect("send forged frame");
    assert_eq!(
        attacker.relay(),
        Err(NetError::Rejected {
            session: 5,
            reason: RejectReason::PlayerOutOfRange
        })
    );
    // The pump survived the forgery: it fails for the mundane reason
    // (nobody attached), not by panicking into ServiceGone.
    assert_eq!(
        handle.outcome().expect_err("no players ever attached"),
        NetError::AttachTimeout {
            session: 5,
            attached: 0,
            expected: 5
        }
    );
    service.shutdown();
}

#[test]
fn duplicate_session_id_is_refused_without_clobbering_the_live_one() {
    let plan = majority_plan(5);
    let hub = MemTransport::new();
    let service = Service::with_config(Box::new(hub.listener()), quick_cfg());
    let first = plan.serve(&service, 11, SchedulerKind::Fifo, 0);
    let second = plan.serve(&service, 11, SchedulerKind::Fifo, 1);
    assert_eq!(
        second.outcome().expect_err("id is taken"),
        NetError::SessionIdTaken { session: 11 }
    );
    // The live session's routing was not clobbered: it still accepts an
    // attach and then fails for its own mundane reason (barrier timeout),
    // not ServiceGone.
    let mut relay = plan.connect_mem(&hub);
    relay.attach(11, 0).expect("attach to the live session");
    assert_eq!(
        first.outcome().expect_err("only one of five attached"),
        NetError::AttachTimeout {
            session: 11,
            attached: 1,
            expected: 5
        }
    );
    assert_eq!(relay.relay(), Err(NetError::Aborted { session: 11 }));
    service.shutdown();
}

#[test]
fn vanishing_relay_with_traffic_in_flight_is_fatal_and_typed() {
    let plan = majority_plan(5);
    let hub = MemTransport::new();
    let service = Service::with_config(
        Box::new(hub.listener()),
        ServiceConfig {
            idle_timeout: Duration::from_secs(20),
            ..quick_cfg()
        },
    );
    let handle = plan.serve(&service, 3, SchedulerKind::Random, 2);

    // Players 1..5 relay faithfully.
    let relays: Vec<_> = (1..5)
        .map(|player| {
            let mut client = plan.connect_mem(&hub);
            std::thread::spawn(move || {
                client.attach(3, player).expect("attach");
                client.relay()
            })
        })
        .collect();
    // Player 0's relay swallows one message and dies: that frame is in
    // flight forever, so the pump must fail with the precise culprit.
    let mut defector = plan.connect_mem(&hub);
    defector.attach(3, 0).expect("attach");
    loop {
        match defector.recv().expect("a frame for player 0") {
            Frame::Msg { .. } => break, // swallowed; now vanish
            _ => continue,
        }
    }
    drop(defector);

    assert_eq!(
        handle
            .outcome()
            .expect_err("a vanished relay must be fatal"),
        NetError::PeerVanished {
            session: 3,
            player: 0
        }
    );
    for relay in relays {
        assert_eq!(
            relay.join().expect("relay thread"),
            Err(NetError::Aborted { session: 3 })
        );
    }
    service.shutdown();
}
