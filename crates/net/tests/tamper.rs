//! The paired Byzantine-relay conformance suite (DESIGN.md §10).
//!
//! Every cell runs the same attack twice: once against a **plain**
//! service, where the tactic must *succeed* (the cheap-talk outcome kind
//! or resolved action profile diverges from the in-process baseline — the
//! paper's reliable-private-channel assumption, violated), and once
//! against an **authenticated** service, where the same bytes must be
//! *detected and neutralized*: the tampered session aborts with a typed
//! [`NetError::AuthFailure`] naming the tactic's [`TamperKind`], while an
//! honest session multiplexed on the *same hostile connection* completes
//! with baseline outcomes — graceful degradation, not connection murder.
//!
//! Reorder and delay are the negative controls: they are delivery orders
//! the asynchronous model already permits (Theorem 4.1 quantifies over
//! all of them), so they must complete *unflagged* with baseline
//! outcomes in both modes. Selective drop is the documented limitation:
//! no MAC detects a withheld frame, so both modes end in the pre-existing
//! `IdleTimeout` owner.

use mediator_circuits::catalog;
use mediator_core::adversary::{Window, OPEN_LIE_OFFSET};
use mediator_core::scenario::{CheapTalkPlan, Scenario};
use mediator_field::Fp;
use mediator_net::tamper::{
    run_tampered_pair, DriverMode, TamperPlan, TamperedPair, TransportKind, WireTactic, HONEST_SID,
    TARGET_SID,
};
use mediator_net::{AuthKey, DeliveryOrder, NetError, RejectReason, ServiceConfig, TamperKind};
use mediator_sim::{Outcome, SchedulerKind, TerminationKind};
use std::time::Duration;

fn majority_plan(n: usize) -> CheapTalkPlan {
    Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("n = 5 > 4k+4t = 4")
}

fn cfg(auth: bool) -> ServiceConfig {
    let base = ServiceConfig {
        idle_timeout: Duration::from_millis(1500),
        attach_timeout: Duration::from_secs(10),
        attach_grace: Duration::from_millis(100),
        delivery: DeliveryOrder::Arrival,
        ..ServiceConfig::default()
    };
    if auth {
        base.with_auth(AuthKey::from_seed(0xfeed))
    } else {
        base
    }
}

fn run(
    transport: TransportKind,
    driver: DriverMode,
    auth: bool,
    tamper: TamperPlan,
) -> TamperedPair {
    run_tampered_pair(
        &majority_plan(5),
        transport,
        driver,
        cfg(auth),
        tamper,
        SchedulerKind::Fifo,
        0,
    )
}

fn baseline() -> Outcome {
    let out = majority_plan(5).run_with(&SchedulerKind::Fifo, 0);
    assert_eq!(out.termination, TerminationKind::Quiescent);
    out
}

/// The honest neighbor on the hostile connection completed with baseline
/// outcomes — the graceful-degradation half of every assertion.
fn assert_honest_untouched(pair: &TamperedPair, label: &str) {
    let base = baseline();
    let honest = pair
        .honest
        .as_ref()
        .unwrap_or_else(|e| panic!("{label}: honest session failed: {e:?}"));
    assert_eq!(honest.termination, base.termination, "{label}: honest kind");
    assert_eq!(
        honest.resolve_default(&[0; 5]),
        base.resolve_default(&[0; 5]),
        "{label}: honest profile"
    );
}

/// The tampered session died with the typed verdict: `AuthFailure` naming
/// the target session and the expected tamper kind.
fn assert_detected(pair: &TamperedPair, expect: TamperKind, label: &str) {
    match &pair.target {
        Err(NetError::AuthFailure { session, kind, .. }) => {
            assert_eq!(*session, TARGET_SID, "{label}: failure names the target");
            assert_eq!(*kind, expect, "{label}: tamper kind");
        }
        other => panic!("{label}: expected AuthFailure({expect:?}), got {other:?}"),
    }
    assert_honest_untouched(pair, label);
    let report = pair
        .relay
        .as_ref()
        .unwrap_or_else(|e| panic!("{label}: relay errored: {e:?}"));
    assert!(
        report.aborted.contains(&TARGET_SID),
        "{label}: service aborted the tampered session toward the relay"
    );
    assert!(
        !report.aborted.contains(&HONEST_SID),
        "{label}: honest session not aborted"
    );
}

// ---------------------------------------------------------------------------
// Tactic 1 — rewrite: the canonical private-channel violation. The full
// transport × driver matrix, paired.
// ---------------------------------------------------------------------------

fn rewrite_plan() -> TamperPlan {
    TamperPlan::against(TARGET_SID).tactic(
        Window::all(),
        WireTactic::Rewrite {
            offset: OPEN_LIE_OFFSET,
        },
    )
}

#[test]
fn rewriting_relay_flips_cheap_talk_outcomes_on_plain_channels() {
    // Unauthenticated, every transport × driver cell: the relay corrupts
    // opening values in flight and the session *completes normally* with
    // a wrong action profile — the worst failure mode (silent corruption),
    // and exactly what the paper's channel assumption exists to exclude.
    let base = baseline();
    for (transport, driver) in [
        (TransportKind::Mem, DriverMode::Reactor),
        (TransportKind::Mem, DriverMode::Threaded),
        (TransportKind::Tcp, DriverMode::Reactor),
        (TransportKind::Tcp, DriverMode::Threaded),
    ] {
        let label = format!("rewrite plain {transport:?}/{driver:?}");
        let pair = run(transport, driver, false, rewrite_plan());
        let target = pair
            .target
            .as_ref()
            .unwrap_or_else(|e| panic!("{label}: target: {e:?}"));
        assert_ne!(
            target.resolve_default(&[0; 5]),
            base.resolve_default(&[0; 5]),
            "{label}: corrupted openings must flip the resolved profile"
        );
        assert_honest_untouched(&pair, &label);
        let report = pair.relay.as_ref().expect("relay completes");
        assert!(report.tampered > 0, "{label}: relay rewrote frames");
        assert!(
            report.rejections.is_empty(),
            "{label}: a plain service cannot detect the rewrite"
        );
    }
}

#[test]
fn rewriting_relay_is_detected_and_neutralized_under_auth() {
    // Authenticated, the same matrix: every rewritten frame fails its MAC,
    // the target aborts with the typed owner, the honest neighbor on the
    // same connection never notices.
    for (transport, driver) in [
        (TransportKind::Mem, DriverMode::Reactor),
        (TransportKind::Mem, DriverMode::Threaded),
        (TransportKind::Tcp, DriverMode::Reactor),
        (TransportKind::Tcp, DriverMode::Threaded),
    ] {
        let label = format!("rewrite auth {transport:?}/{driver:?}");
        let pair = run(transport, driver, true, rewrite_plan());
        assert_detected(&pair, TamperKind::BadMac, &label);
        let report = pair.relay.as_ref().expect("relay completes");
        assert!(
            report
                .rejections
                .iter()
                .any(|&(sid, reason)| sid == TARGET_SID && reason == RejectReason::TamperDetected),
            "{label}: service told the relay it was caught"
        );
    }
}

// ---------------------------------------------------------------------------
// Tactic 2 — redirect: a routing lie (dst header rotated). MACs bind the
// (session, src, dst) triple, so moving a frame between channels is as
// detectable as rewriting it.
// ---------------------------------------------------------------------------

fn redirect_plan() -> TamperPlan {
    TamperPlan::against(TARGET_SID).tactic(Window::all(), WireTactic::Redirect)
}

#[test]
fn redirecting_relay_deadlocks_plain_and_fails_the_mac_authenticated() {
    let pair = run(
        TransportKind::Mem,
        DriverMode::Reactor,
        false,
        redirect_plan(),
    );
    let target = pair.target.as_ref().expect("plain run terminates");
    assert_eq!(
        target.termination,
        TerminationKind::Deadlock,
        "misrouted messages starve the protocol: outcome kind flips"
    );
    assert_honest_untouched(&pair, "redirect plain");

    let pair = run(
        TransportKind::Tcp,
        DriverMode::Threaded,
        true,
        redirect_plan(),
    );
    assert_detected(&pair, TamperKind::BadMac, "redirect auth tcp/threaded");
}

// ---------------------------------------------------------------------------
// Tactic 3 — replay splice: duplicate early frames, drop later ones. The
// message *count* balances, so flight accounting can't see it — only
// per-frame sequence freshness can.
// ---------------------------------------------------------------------------

fn splice_plan() -> TamperPlan {
    TamperPlan::against(TARGET_SID)
        .tactic(Window::between(0, 10), WireTactic::Replay)
        .tactic(Window::between(10, 20), WireTactic::Drop)
}

#[test]
fn replay_splice_substitutes_messages_plain_and_is_caught_by_freshness() {
    let pair = run(
        TransportKind::Mem,
        DriverMode::Reactor,
        false,
        splice_plan(),
    );
    let target = pair.target.as_ref().expect("plain run terminates");
    assert_eq!(
        target.termination,
        TerminationKind::Deadlock,
        "stale-for-fresh substitution breaks the protocol: outcome kind flips"
    );
    assert_honest_untouched(&pair, "splice plain");

    let pair = run(
        TransportKind::Mem,
        DriverMode::Threaded,
        true,
        splice_plan(),
    );
    assert_detected(&pair, TamperKind::Replayed, "splice auth mem/threaded");
}

// ---------------------------------------------------------------------------
// Tactic 4 — truncate: stream damage. The blast-radius contrast: a plain
// service can only kill the whole connection (every session on it dies),
// an authenticated one scopes the damage to the tampered session.
// ---------------------------------------------------------------------------

fn truncate_plan() -> TamperPlan {
    TamperPlan::against(TARGET_SID).tactic(Window::between(5, 6), WireTactic::Truncate { cut: 4 })
}

#[test]
fn truncation_kills_the_connection_plain_but_only_the_session_authenticated() {
    // Plain (over TCP): the mangled frame is indistinguishable from
    // stream corruption — the service drops the connection, and *both*
    // sessions on it die with PeerVanished. Collateral damage.
    let pair = run(
        TransportKind::Tcp,
        DriverMode::Reactor,
        false,
        truncate_plan(),
    );
    assert!(
        matches!(pair.target, Err(NetError::PeerVanished { session, .. }) if session == TARGET_SID),
        "plain truncation: target dies of connection loss, got {:?}",
        pair.target
    );
    assert!(
        matches!(pair.honest, Err(NetError::PeerVanished { session, .. }) if session == HONEST_SID),
        "plain truncation: the honest session is collateral damage, got {:?}",
        pair.honest
    );

    // Authenticated: the frame still names its session in the clear, so
    // the service can scope the verdict — target aborts, honest lives.
    let pair = run(
        TransportKind::Tcp,
        DriverMode::Reactor,
        true,
        truncate_plan(),
    );
    assert_detected(&pair, TamperKind::Truncated, "truncate auth tcp/reactor");
}

// ---------------------------------------------------------------------------
// Tactic 5 — strip: the downgrade attack. Meaningless against a plain
// service (nothing to strip); fatal to attempt against an authenticated
// one (v1 Msg frames are rejected outright — downgrade rejection).
// ---------------------------------------------------------------------------

#[test]
fn stripping_the_mac_trailer_is_rejected_as_a_downgrade() {
    let plan = TamperPlan::against(TARGET_SID).tactic(Window::between(5, 6), WireTactic::Strip);

    // Plain frames carry no trailer: strip decodes and re-encodes the
    // same v1 bytes — the attack has no purchase and the run completes.
    let pair = run(TransportKind::Mem, DriverMode::Reactor, false, plan.clone());
    let base = baseline();
    let target = pair.target.as_ref().expect("plain strip is a no-op");
    assert_eq!(target.termination, base.termination);

    let pair = run(TransportKind::Mem, DriverMode::Reactor, true, plan);
    assert_detected(&pair, TamperKind::Downgrade, "strip auth mem/reactor");
}

// ---------------------------------------------------------------------------
// Documented limitation — selective drop. No MAC detects a frame that
// never arrives; withholding looks exactly like a slow network, so both
// modes surface the pre-existing IdleTimeout owner. (Detecting *silence*
// needs an accountability layer — acknowledgements or threshold
// progress certificates — out of scope for channel authentication.)
// ---------------------------------------------------------------------------

#[test]
fn selective_drop_is_undetectable_and_owned_by_idle_timeout_in_both_modes() {
    let plan = TamperPlan::against(TARGET_SID).tactic(Window::between(5, 15), WireTactic::Drop);
    for auth in [false, true] {
        let pair = run(TransportKind::Mem, DriverMode::Reactor, auth, plan.clone());
        assert!(
            matches!(pair.target, Err(NetError::IdleTimeout { session, .. }) if session == TARGET_SID),
            "drop auth={auth}: withheld frames look like a slow network, got {:?}",
            pair.target
        );
        assert_honest_untouched(&pair, &format!("drop auth={auth}"));
        let report = pair.relay.as_ref().expect("relay completes");
        assert!(
            report.rejections.is_empty(),
            "drop auth={auth}: nothing to detect, nothing to reject"
        );
    }
}

// ---------------------------------------------------------------------------
// Negative controls — reorder and delay are delivery orders the
// asynchronous model already allows (Theorem 4.1 quantifies over every
// scheduler), so they must pass unflagged with baseline outcomes in both
// modes. MACs authenticate *content*, not *schedules*.
// ---------------------------------------------------------------------------

#[test]
fn reorder_and_delay_are_scheduler_legal_in_both_modes() {
    let base = baseline();
    let controls: [(&str, TamperPlan); 2] = [
        (
            "reorder",
            TamperPlan::against(TARGET_SID)
                .tactic(Window::between(0, 64), WireTactic::Reorder { depth: 4 }),
        ),
        (
            "delay",
            TamperPlan::against(TARGET_SID)
                .tactic(Window::between(3, 6), WireTactic::Delay { release_at: 12 }),
        ),
    ];
    for (name, plan) in &controls {
        for auth in [false, true] {
            let label = format!("{name} auth={auth}");
            let pair = run(TransportKind::Mem, DriverMode::Reactor, auth, plan.clone());
            let target = pair
                .target
                .as_ref()
                .unwrap_or_else(|e| panic!("{label}: scheduler-legal tactic flagged: {e:?}"));
            assert_eq!(target.termination, base.termination, "{label}: kind");
            assert_eq!(
                target.resolve_default(&[0; 5]),
                base.resolve_default(&[0; 5]),
                "{label}: profile"
            );
            assert_honest_untouched(&pair, &label);
            let report = pair.relay.as_ref().expect("relay completes");
            assert!(report.tampered > 0, "{label}: the tactic did fire");
            assert!(
                report.rejections.is_empty() && report.aborted.is_empty(),
                "{label}: a legal delivery order must not be flagged"
            );
        }
    }
}
