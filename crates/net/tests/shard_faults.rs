//! Fault injection against the sharding plane: killed workers, muted
//! workers, swallowed results, duplicate results. In every scenario the
//! coordinator must (a) absorb the fault under its **typed owner**
//! ([`NetError::PeerVanished`] / [`NetError::IdleTimeout`] /
//! ledger-discarded duplicates), (b) re-lease rather than lose the unit,
//! and (c) render a verdict **identical to the clean local sweep** — a
//! fault may cost wall-clock, never statistics.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use mediator_circuits::catalog;
use mediator_core::scenario::Scenario;
use mediator_core::{run_sweep_unit, sweep_units, Conformance, ConformanceReport, SweepUnit};
use mediator_field::Fp;
use mediator_games::library;
use mediator_net::{
    coordinate, duplex, run_worker, worker_mem, ConnPair, Frame, FrameRx, FrameTx, FramedRx,
    FramedTx, MemTransport, NetError, ShardConfig, ShardListener, ShardLog,
};
use mediator_sim::SchedulerKind;

/// The Theorem 4.1 resilient point (the repo's pinned cheap-talk sweep):
/// small enough that a debug-mode fault test finishes fast, pinned enough
/// that "the verdict did not change" means something.
fn thm41() -> (
    mediator_core::scenario::CheapTalkPlan,
    mediator_games::BayesianGame,
    Vec<usize>,
    Conformance,
) {
    let n = 5;
    let game = library::byzantine_agreement_game(n);
    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("5 > 4");
    let conf = Conformance::new(0.05, 1, 0)
        .battery(vec![SchedulerKind::Random])
        .seeds(3)
        .coalitions(vec![vec![1], vec![3]]);
    (plan, game, vec![1usize; n], conf)
}

/// Faulted runs must not disturb the statistics: same rendered JSON, same
/// per-cell sample counts (nothing double-counted, nothing dropped).
fn assert_verdict_unchanged(local: &ConformanceReport, faulted: &ConformanceReport) {
    assert_eq!(local.to_json(), faulted.to_json());
    for (a, b) in local.baseline.iter().zip(&faulted.baseline) {
        assert_eq!(a.samples, b.samples, "baseline cells double-counted");
    }
    for (a, b) in local.cells.iter().zip(&faulted.cells) {
        assert_eq!(a.gain.samples, b.gain.samples, "sweep cells double-counted");
    }
}

/// Runs `coordinate` on its own thread against a mem hub, returning the
/// hub plus the coordinator's join handle.
#[allow(clippy::type_complexity)]
fn spawn_coordinator(
    cfg: ShardConfig,
) -> (
    MemTransport,
    thread::JoinHandle<(ConformanceReport, ShardLog)>,
) {
    let hub = MemTransport::new();
    let dial = hub.clone();
    let handle = thread::spawn(move || {
        let (plan, game, types, conf) = thm41();
        let listener = ShardListener::mem(&dial);
        coordinate(&listener, &plan, &game, &types, &conf, &cfg)
    });
    (hub, handle)
}

/// A hand-rolled defector: connects, requests one lease, reports the
/// granted unit id on `tell`, then misbehaves per `after`.
fn defect_one_lease(
    hub: &MemTransport,
    worker: u64,
    tell: mpsc::Sender<u64>,
    after: impl FnOnce(u64, ConnPair<u64>) + Send + 'static,
) -> thread::JoinHandle<()> {
    let hub = hub.clone();
    thread::spawn(move || {
        let (mut tx, mut rx) = hub.connect::<u64>();
        tx.send(&Frame::ShardRequest { worker }).expect("request");
        let unit = match rx.recv().expect("grant") {
            Frame::ShardGrant { unit, .. } => unit,
            other => panic!("expected a grant, got {other:?}"),
        };
        tell.send(unit).expect("report granted unit");
        after(unit, (tx, rx));
    })
}

#[test]
fn killed_worker_mid_lease_is_reclaimed_as_peer_vanished() {
    let (plan, game, types, conf) = thm41();
    let local = plan.conformance(&game, &types, &conf);
    let cfg = ShardConfig::default().lease_deadline(Duration::from_secs(60));
    let (hub, coordinator) = spawn_coordinator(cfg.clone());

    // The defector takes a lease first, then its connection dies.
    let (tell, told) = mpsc::channel();
    let killed = defect_one_lease(&hub, 42, tell, |_, conn| drop(conn));
    let unit = told.recv().expect("defector got a lease");
    killed.join().expect("defector exits");

    // An honest worker drains the rest (the reclaimed unit included).
    let honest = {
        let hub = hub.clone();
        let plan = plan.clone();
        let conf = conf.clone();
        let cfg = cfg.clone();
        thread::spawn(move || worker_mem(&hub, 1, &plan, &conf, &cfg))
    };
    let (report, log) = coordinator.join().expect("coordinator");
    let served = honest.join().expect("honest worker").expect("drained");

    assert_verdict_unchanged(&local, &report);
    assert!(
        log.failures.contains(&NetError::PeerVanished {
            session: unit,
            player: 42,
        }),
        "vanish owner missing: {:?}",
        log.failures
    );
    assert_eq!(log.releases, 1, "exactly the killed lease was re-leased");
    assert_eq!(log.discarded, 0);
    assert_eq!(served, log.units as u64, "honest worker re-ran the unit");
}

#[test]
fn muted_worker_lease_lapses_into_idle_timeout() {
    let (plan, game, types, conf) = thm41();
    let local = plan.conformance(&game, &types, &conf);
    // Short deadline: the muted lease must lapse quickly.
    let cfg = ShardConfig::default().lease_deadline(Duration::from_millis(150));
    let (hub, coordinator) = spawn_coordinator(cfg.clone());

    // The mute takes a lease and then holds the line silently until the
    // coordinator drains it.
    let (tell, told) = mpsc::channel();
    let mute = defect_one_lease(&hub, 7, tell, |_, (_tx, mut rx)| loop {
        match rx.recv() {
            Ok(Frame::ShardDrain) | Err(_) => return,
            Ok(_) => {}
        }
    });
    let unit = told.recv().expect("mute got a lease");

    let honest = {
        let hub = hub.clone();
        let plan = plan.clone();
        let conf = conf.clone();
        let cfg = cfg.clone();
        thread::spawn(move || worker_mem(&hub, 1, &plan, &conf, &cfg))
    };
    let (report, log) = coordinator.join().expect("coordinator");
    honest.join().expect("honest worker").expect("drained");
    mute.join().expect("mute exits on drain");

    assert_verdict_unchanged(&local, &report);
    assert!(
        log.failures.contains(&NetError::IdleTimeout {
            session: unit,
            in_flight: 1,
        }),
        "expiry owner missing: {:?}",
        log.failures
    );
    assert!(log.releases >= 1, "the lapsed lease was re-leased");
}

#[test]
fn duplicate_result_is_discarded_not_double_counted() {
    let (plan, game, types, conf) = thm41();
    let local = plan.conformance(&game, &types, &conf);
    let cfg = ShardConfig::default().lease_deadline(Duration::from_secs(60));
    let (hub, coordinator) = spawn_coordinator(cfg.clone());

    // The duplicator serves its one unit correctly — twice.
    let (tell, told) = mpsc::channel();
    let dup = {
        let plan = plan.clone();
        let conf = conf.clone();
        defect_one_lease(&hub, 9, tell, move |unit, (mut tx, mut rx)| {
            // Rebuild the unit recipe exactly as a worker would.
            let units = sweep_units(&plan, &conf);
            let recipe: &SweepUnit = &units[unit as usize];
            let profiles = run_sweep_unit(&plan, recipe, &conf).expect("known strategy");
            for _ in 0..2 {
                tx.send(&Frame::ShardResult {
                    unit,
                    worker: 9,
                    profiles: profiles.clone(),
                    auth: None,
                })
                .expect("send result");
            }
            // Stay polite afterwards: wait for the drain.
            loop {
                match rx.recv() {
                    Ok(Frame::ShardDrain) | Err(_) => return,
                    Ok(_) => {}
                }
            }
        })
    };
    told.recv().expect("duplicator got a lease");

    let honest = {
        let hub = hub.clone();
        let plan = plan.clone();
        let conf = conf.clone();
        let cfg = cfg.clone();
        thread::spawn(move || worker_mem(&hub, 1, &plan, &conf, &cfg))
    };
    let (report, log) = coordinator.join().expect("coordinator");
    honest.join().expect("honest worker").expect("drained");
    dup.join().expect("duplicator exits on drain");

    assert_verdict_unchanged(&local, &report);
    assert_eq!(log.discarded, 1, "the duplicate was discarded");
    assert_eq!(log.releases, 0, "nothing needed re-leasing");
    assert!(
        log.failures.is_empty(),
        "a duplicate is not a typed failure"
    );
}

#[test]
fn byte_proxy_swallowing_results_costs_time_not_statistics() {
    // The tamper-relay tactic pointed at the shard plane: a Byzantine
    // byte proxy sits between an honest worker and the coordinator and
    // swallows every `ShardResult` frame (kind byte 7 under either wire
    // version) while passing the rest verbatim. Every lease the proxied
    // worker serves lapses; the clean worker re-runs them all.
    let (plan, game, types, conf) = thm41();
    let local = plan.conformance(&game, &types, &conf);
    let cfg = ShardConfig::default().lease_deadline(Duration::from_millis(150));
    let (hub, coordinator) = spawn_coordinator(cfg.clone());

    // Build the proxied path: worker ⇄ duplex ⇄ proxy threads ⇄ hub.
    let (coord_w, coord_r) = hub.connect_raw();
    let ((wk_w, wk_r), (px_w, px_r)) = duplex();
    // Upstream leg (worker → coordinator): parse length-prefixed frames,
    // drop results, forward everything else byte-for-byte.
    thread::spawn(move || {
        use std::io::{Read, Write};
        let mut from = px_r;
        let mut to = coord_w;
        loop {
            let mut len4 = [0u8; 4];
            if from.read_exact(&mut len4).is_err() {
                return;
            }
            let len = u32::from_le_bytes(len4) as usize;
            let mut body = vec![0u8; len];
            if from.read_exact(&mut body).is_err() {
                return;
            }
            let is_result = body.len() >= 2 && body[1] == 7;
            if !is_result
                && (to.write_all(&len4).is_err()
                    || to.write_all(&body).is_err()
                    || to.flush().is_err())
            {
                return;
            }
        }
    });
    // Downstream leg (coordinator → worker): verbatim copy.
    thread::spawn(move || {
        let mut from = coord_r;
        let mut to = px_w;
        let _ = std::io::copy(&mut from, &mut to);
    });

    let proxied = {
        let plan = plan.clone();
        let conf = conf.clone();
        let cfg = cfg.clone();
        thread::spawn(move || {
            let tx: Box<dyn FrameTx<u64>> = Box::new(FramedTx::new(wk_w));
            let rx: Box<dyn FrameRx<u64>> = Box::new(FramedRx::new(wk_r));
            run_worker(tx, rx, 66, &plan, &conf, &cfg)
        })
    };
    let honest = {
        let hub = hub.clone();
        let plan = plan.clone();
        let conf = conf.clone();
        let cfg = cfg.clone();
        thread::spawn(move || worker_mem(&hub, 1, &plan, &conf, &cfg))
    };

    let (report, log) = coordinator.join().expect("coordinator");
    honest.join().expect("honest worker").expect("drained");
    // The proxied worker drains cleanly too — grants and the drain frame
    // travel downstream untouched.
    proxied.join().expect("proxied worker").expect("drained");

    assert_verdict_unchanged(&local, &report);
    assert!(
        log.failures
            .iter()
            .any(|f| matches!(f, NetError::IdleTimeout { in_flight: 1, .. })),
        "swallowed results must lapse as IdleTimeout: {:?}",
        log.failures
    );
    assert!(log.releases >= 1);
}
