//! Differential pin: a sharded conformance sweep must render verdicts
//! **bit-identical** to the local thread fan-out, on both transports.
//!
//! The two working points are the repo's pinned conformance scenarios:
//! Theorem 4.1's resilient point (cheap talk, n = 5 > 4k + 4t) and the
//! §6.4 sub-threshold violation (naive mediator, n = 7 ≤ 4k). For each,
//! every float the report carries — baseline CIs, per-cell gain/harm
//! intervals, the verdict's bounds — is compared by `f64::to_bits`, not
//! tolerance: workers ship resolved action profiles and the coordinator
//! re-runs the identical float pipeline, so nothing may drift.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use mediator_circuits::catalog;
use mediator_core::scenario::{BatchRun, MediatorPlan, Scenario, SessionPlan};
use mediator_core::{
    sweep_unit_plan, sweep_units, Conformance, ConformanceReport, ConformanceVerdict,
};
use mediator_field::Fp;
use mediator_games::library;
use mediator_net::{
    Client, DriverMode, MemTransport, RunMeta, Service, ServiceConfig, ShardConfig, ShardedSweep,
    TraceSink, TransportKind,
};
use mediator_sim::{Outcome, SchedulerKind};

const BOT: u64 = library::BOTTOM as u64;

/// A generous deadline so debug-mode grid runs never lapse a lease: these
/// tests pin the *clean-path* differential; fault injection lives in
/// `shard_faults.rs`.
fn clean_cfg() -> ShardConfig {
    ShardConfig::default().lease_deadline(Duration::from_secs(60))
}

fn bits(x: f64) -> u64 {
    x.to_bits()
}

/// Bit-level report equality: structure plus `to_bits` on every float.
fn assert_reports_identical(local: &ConformanceReport, sharded: &ConformanceReport) {
    assert_eq!(local.eps.to_bits(), sharded.eps.to_bits());
    assert_eq!(local.k, sharded.k);
    assert_eq!(local.t, sharded.t);
    assert_eq!(local.kinds, sharded.kinds);
    assert_eq!(local.seeds_per_kind, sharded.seeds_per_kind);
    assert_eq!(local.baseline.len(), sharded.baseline.len());
    for (a, b) in local.baseline.iter().zip(&sharded.baseline) {
        assert_eq!(bits(a.mean), bits(b.mean));
        assert_eq!(bits(a.lo), bits(b.lo));
        assert_eq!(bits(a.hi), bits(b.hi));
        assert_eq!(a.samples, b.samples);
    }
    assert_eq!(local.cells.len(), sharded.cells.len());
    for (a, b) in local.cells.iter().zip(&sharded.cells) {
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.coalition, b.coalition);
        assert_eq!(bits(a.gain.mean), bits(b.gain.mean));
        assert_eq!(bits(a.gain.lo), bits(b.gain.lo));
        assert_eq!(bits(a.gain.hi), bits(b.gain.hi));
        assert_eq!(bits(a.harm.mean), bits(b.harm.mean));
        assert_eq!(bits(a.harm.lo), bits(b.harm.lo));
        assert_eq!(bits(a.harm.hi), bits(b.harm.hi));
    }
    match (&local.verdict, &sharded.verdict) {
        (
            ConformanceVerdict::Resilient {
                max_gain_hi: g1,
                max_harm_hi: h1,
            },
            ConformanceVerdict::Resilient {
                max_gain_hi: g2,
                max_harm_hi: h2,
            },
        ) => {
            assert_eq!(bits(*g1), bits(*g2));
            assert_eq!(bits(*h1), bits(*h2));
        }
        (ConformanceVerdict::Violated(a), ConformanceVerdict::Violated(b)) => {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.coalition, b.coalition);
            assert_eq!(a.kind, b.kind, "witness scheduler kind");
            assert_eq!(a.seed, b.seed, "witness seed");
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.run, b.run);
            assert_eq!(bits(a.gain.mean), bits(b.gain.mean));
            assert_eq!(bits(a.gain.lo), bits(b.gain.lo));
            assert_eq!(bits(a.gain.hi), bits(b.gain.hi));
            assert_eq!(a.baseline_profile, b.baseline_profile);
            assert_eq!(a.deviant_profile, b.deviant_profile);
        }
        (a, b) => panic!("verdicts diverged: local {a:?} vs sharded {b:?}"),
    }
    // Belt and braces: the rendered JSON artifacts match byte for byte.
    assert_eq!(local.to_json(), sharded.to_json());
}

fn thm41_cheap_talk() -> (
    mediator_core::scenario::CheapTalkPlan,
    mediator_games::BayesianGame,
    Vec<usize>,
    Conformance,
) {
    let n = 5;
    let game = library::byzantine_agreement_game(n);
    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("5 > 4");
    let conf = Conformance::new(0.05, 1, 0)
        .battery(vec![SchedulerKind::Random])
        .seeds(3)
        .coalitions(vec![vec![1], vec![3]]);
    (plan, game, vec![1usize; n], conf)
}

fn sec64_naive_mediator() -> (
    MediatorPlan,
    mediator_games::BayesianGame,
    Vec<usize>,
    Conformance,
) {
    let n = 7;
    let (game, _, k) = library::counterexample_game(n);
    let plan = Scenario::mediator(catalog::counterexample_naive(n))
        .players(n)
        .tolerance(k, 0)
        .naive_split()
        .wills(vec![BOT; n])
        .resolve_defaults(vec![BOT; n])
        .build()
        .expect("n − k ≥ 1");
    let conf = Conformance::new(0.01, k, 0)
        .battery(vec![SchedulerKind::Random])
        .seeds(16)
        .coalitions(vec![vec![0], vec![0, 1]])
        .deadlock_action(BOT);
    (plan, game, vec![0usize; n], conf)
}

#[test]
fn sharded_matches_local_on_the_resilient_point_mem() {
    let (plan, game, types, conf) = thm41_cheap_talk();
    let local = plan.conformance(&game, &types, &conf);
    assert!(local.is_resilient());
    let (sharded, log) = conf.sharded(&plan, &game, &types, 3, TransportKind::Mem, &clean_cfg());
    assert_reports_identical(&local, &sharded);
    assert!(log.failures.is_empty(), "clean run: {:?}", log.failures);
    assert_eq!(log.releases, 0);
    assert_eq!(log.discarded, 0);
    assert_eq!(log.units, sweep_units(&plan, &conf).len());
    assert!(!log.witness_reenacted, "resilient verdicts have no witness");
}

#[test]
fn sharded_matches_local_on_the_resilient_point_tcp() {
    let (plan, game, types, conf) = thm41_cheap_talk();
    let local = plan.conformance(&game, &types, &conf);
    let (sharded, log) = conf.sharded(&plan, &game, &types, 2, TransportKind::Tcp, &clean_cfg());
    assert_reports_identical(&local, &sharded);
    assert!(log.failures.is_empty(), "clean run: {:?}", log.failures);
    assert!(log.workers >= 1 && log.workers <= 2);
}

/// Captures every `(meta, outcome)` a worker records — the parity tests'
/// stand-in for the store-backed sink.
struct CaptureSink(Mutex<Vec<RunMeta>>);

impl TraceSink for CaptureSink {
    fn record(&self, meta: &RunMeta, _outcome: &Outcome) {
        self.0.lock().expect("sink poisoned").push(meta.clone());
    }
}

#[test]
fn sharded_matches_local_on_the_violation_mem() {
    let (plan, game, types, conf) = sec64_naive_mediator();
    let local = plan.conformance(&game, &types, &conf);
    let lw = local.witness().expect("§6.4 must violate").clone();
    let sink = Arc::new(CaptureSink(Mutex::new(Vec::new())));
    let cfg = clean_cfg().sink(sink.clone());
    let (sharded, log) = conf.sharded(&plan, &game, &types, 4, TransportKind::Mem, &cfg);
    assert_reports_identical(&local, &sharded);
    assert!(log.failures.is_empty(), "clean run: {:?}", log.failures);
    assert_eq!(log.releases, 0);
    assert_eq!(log.discarded, 0);
    assert!(log.witness_reenacted, "Violated verdicts re-enact");
    // The re-enacted witness cell landed in the sink, replayable by its
    // `(kind, seed)` exactly like a locally recorded run.
    let recorded = sink.0.lock().expect("sink poisoned").clone();
    assert_eq!(recorded.len(), 1, "exactly the witness cell is recorded");
    assert_eq!(recorded[0].kind, Some(lw.kind.clone()));
    assert_eq!(recorded[0].seed, Some(lw.seed));
    assert_eq!(recorded[0].session, lw.unit as u64);
}

#[test]
fn sharded_matches_local_on_the_violation_tcp() {
    let (plan, game, types, conf) = sec64_naive_mediator();
    let local = plan.conformance(&game, &types, &conf);
    let (sharded, log) = conf.sharded(&plan, &game, &types, 2, TransportKind::Tcp, &clean_cfg());
    assert_reports_identical(&local, &sharded);
    assert!(log.witness_reenacted);
    assert!(log.failures.is_empty(), "clean run: {:?}", log.failures);
}

#[test]
fn one_worker_shard_degenerates_to_local() {
    // The n = 1 boundary: a single worker serially draining every lease
    // is exactly the local sweep with extra frames.
    let (plan, game, types, conf) = thm41_cheap_talk();
    let local = plan.conformance(&game, &types, &conf);
    let (sharded, log) = conf.sharded(&plan, &game, &types, 1, TransportKind::Mem, &clean_cfg());
    assert_reports_identical(&local, &sharded);
    assert_eq!(log.workers, 1);
}

#[test]
fn witness_cell_reenacts_identically_under_both_service_drivers() {
    // The §6.4 witness profile is schedule-invariant (the coalition
    // deadlocks, the mediator times out, everyone resolves to the ⊥
    // punishment), so hosting the witness cell as a *networked session* —
    // where the wire is the scheduler — must resolve to the same profile
    // under both service drivers. This ties the sharded verdict's witness
    // back to the PR 6/7 runtime it will be replayed on.
    let (plan, game, types, conf) = sec64_naive_mediator();
    let report = plan.conformance(&game, &types, &conf);
    let w = report.witness().expect("§6.4 must violate").clone();
    let units = sweep_units(&plan, &conf);
    let deviant = sweep_unit_plan(&plan, &units[w.unit], &conf)
        .expect("the witness unit names a generated strategy");
    let n = deviant.processes();
    let mut profiles = Vec::new();
    for driver in [DriverMode::Reactor, DriverMode::Threaded] {
        let hub = MemTransport::new();
        let service = Service::with_config(Box::new(hub.listener()), ServiceConfig::default());
        let sid = 1;
        let open = {
            let deviant = deviant.clone();
            let kind = w.kind.clone();
            let seed = w.seed;
            move || deviant.open_session(&kind, seed)
        };
        let handle = match driver {
            DriverMode::Reactor => service.host(sid, n, open),
            DriverMode::Threaded => service.host_threaded(sid, n, open),
        };
        let outcome = std::thread::scope(|s| {
            for player in 0..n {
                let mut client: Client<<MediatorPlan as SessionPlan>::Msg> = Client::mem(&hub);
                s.spawn(move || {
                    client.attach(sid, player).expect("attach");
                    let _ = client.relay();
                });
            }
            handle.outcome().expect("witness session completes")
        });
        service.shutdown();
        profiles.push(deviant.resolve_mode().profile(&outcome, deviant.players()));
    }
    assert_eq!(profiles[0], profiles[1], "reactor vs threaded");
    assert_eq!(
        profiles[0], w.deviant_profile,
        "networked re-enactment matches the sweep's recorded witness"
    );
}
