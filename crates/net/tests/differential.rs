//! Differential suite: the reactor driver against the PR 5 threaded
//! engine, which survives as [`Service::host_threaded`] precisely so this
//! file can exist.
//!
//! Both drivers execute the same ship → step → deliver → quiesce pump
//! contract; what differs is everything around it (blocking receives vs
//! readiness events, `recv_timeout` vs timer heap, reader threads vs
//! buffered incremental parsing). The suite pins the observable contract:
//! **outcome-kind agreement** with in-process runs and with each other,
//! and **identical typed failure owners** (`AttachTimeout`,
//! `PeerVanished`, `Rejected`) on both the in-memory and TCP transports.
//! A slow-loris test closes the file: a peer dribbling one byte at a time
//! must stall nobody but itself.

use mediator_circuits::catalog;
use mediator_core::cheap_talk::CtMsg;
use mediator_core::scenario::{CheapTalkPlan, Scenario, SessionPlan};
use mediator_field::Fp;
use mediator_net::{
    Client, DeliveryOrder, Frame, MemTransport, NetError, NetPlan, RejectReason, Service,
    ServiceConfig, SessionHandle, TcpTransport, Wire, WIRE_VERSION,
};
use mediator_sim::{Outcome, SchedulerKind, TerminationKind};
use std::time::Duration;

fn majority_plan(n: usize) -> CheapTalkPlan {
    Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("n = 5 > 4k+4t = 4")
}

#[derive(Clone, Copy, Debug)]
enum DriverKind {
    Reactor,
    Threaded,
}

const BOTH: [DriverKind; 2] = [DriverKind::Reactor, DriverKind::Threaded];

/// Hosts one plan cell through the chosen driver — the only line where
/// the two paths diverge; everything asserted afterwards must not.
fn host_with(
    service: &Service<CtMsg>,
    driver: DriverKind,
    id: u64,
    plan: &CheapTalkPlan,
    kind: SchedulerKind,
    seed: u64,
) -> SessionHandle {
    let plan = plan.clone();
    let open = move || plan.open_session(&kind, seed);
    match driver {
        DriverKind::Reactor => service.host(id, 5, open),
        DriverKind::Threaded => service.host_threaded(id, 5, open),
    }
}

fn assert_outcome_parity(local: &Outcome, networked: &Outcome, players: usize, label: &str) {
    assert_eq!(
        networked.termination, local.termination,
        "{label}: termination kind"
    );
    let defaults = vec![0; local.moves.len()];
    assert_eq!(
        networked.resolve_default(&defaults)[..players],
        local.resolve_default(&defaults)[..players],
        "{label}: resolved action profile"
    );
}

fn quick_cfg() -> ServiceConfig {
    ServiceConfig {
        idle_timeout: Duration::from_secs(5),
        attach_timeout: Duration::from_millis(400),
        attach_grace: Duration::from_millis(100),
        delivery: DeliveryOrder::Arrival,
        ..ServiceConfig::default()
    }
}

#[test]
fn drivers_agree_with_in_process_outcomes_over_mem() {
    let n = 5;
    let plan = majority_plan(n);
    let hub = MemTransport::new();
    let service = Service::start(Box::new(hub.listener()));

    // Interleave both drivers on the same service, same seeds: sessions
    // 0..3 on the reactor, 100..103 on pump threads, all live at once.
    let mut handles = Vec::new();
    for seed in 0..3u64 {
        handles.push((
            seed,
            host_with(
                &service,
                DriverKind::Reactor,
                seed,
                &plan,
                SchedulerKind::Random,
                seed,
            ),
        ));
        handles.push((
            seed,
            host_with(
                &service,
                DriverKind::Threaded,
                100 + seed,
                &plan,
                SchedulerKind::Random,
                seed,
            ),
        ));
    }
    let relays: Vec<_> = handles
        .iter()
        .flat_map(|(_, h)| (0..n).map(move |player| (h.id(), player)))
        .map(|(sid, player)| {
            let mut client = Client::<CtMsg>::mem(&hub);
            std::thread::spawn(move || {
                client.attach(sid, player).expect("attach");
                client.relay().expect("relay")
            })
        })
        .collect();

    for (seed, handle) in handles {
        let label = format!("session {} (seed {seed})", handle.id());
        let local = plan.run_with(&SchedulerKind::Random, seed);
        let outcome = handle.outcome().expect("networked run completes");
        assert_outcome_parity(&local, &outcome, n, &label);
    }
    for relay in relays {
        let summary = relay.join().expect("relay thread");
        assert_eq!(summary.termination, TerminationKind::Quiescent);
    }
    service.shutdown();
}

#[test]
fn drivers_agree_with_in_process_outcomes_over_tcp() {
    let n = 5;
    let plan = majority_plan(n);
    let transport = TcpTransport::bind_loopback().expect("bind");
    let addr = transport.addr();
    let service = Service::start(Box::new(transport));

    let reactor = host_with(
        &service,
        DriverKind::Reactor,
        1,
        &plan,
        SchedulerKind::Fifo,
        0,
    );
    let threaded = host_with(
        &service,
        DriverKind::Threaded,
        2,
        &plan,
        SchedulerKind::Fifo,
        0,
    );
    let relays: Vec<_> = [1u64, 2]
        .into_iter()
        .flat_map(|sid| (0..n).map(move |player| (sid, player)))
        .map(|(sid, player)| {
            std::thread::spawn(move || {
                let mut client = Client::<CtMsg>::tcp(addr).expect("connect");
                client.attach(sid, player).expect("attach");
                client.relay().expect("relay")
            })
        })
        .collect();

    let local = plan.run_with(&SchedulerKind::Fifo, 0);
    for (label, handle) in [("reactor/tcp", reactor), ("threaded/tcp", threaded)] {
        let outcome = handle.outcome().expect("networked run completes");
        assert_outcome_parity(&local, &outcome, n, label);
    }
    for relay in relays {
        relay.join().expect("relay thread");
    }
    service.shutdown();
}

#[test]
fn attach_timeout_owner_is_identical_across_drivers() {
    let plan = majority_plan(5);
    for driver in BOTH {
        let hub = MemTransport::new();
        let service = Service::with_config(Box::new(hub.listener()), quick_cfg());
        let handle = host_with(&service, driver, 8, &plan, SchedulerKind::Fifo, 0);

        // Exactly one of five players attaches: the barrier must fail
        // with the same typed owner under either driver, and the attached
        // relay must learn via Abort, not a hang.
        let mut lone = plan.connect_mem(&hub);
        lone.attach(8, 2).expect("attach");
        assert_eq!(
            handle.outcome().expect_err("attach barrier must time out"),
            NetError::AttachTimeout {
                session: 8,
                attached: 1,
                expected: 5
            },
            "{driver:?}"
        );
        assert_eq!(
            lone.relay(),
            Err(NetError::Aborted { session: 8 }),
            "{driver:?}"
        );
        service.shutdown();
    }
}

#[test]
fn vanishing_relay_owner_is_identical_across_drivers() {
    let plan = majority_plan(5);
    for driver in BOTH {
        let hub = MemTransport::new();
        let service = Service::with_config(
            Box::new(hub.listener()),
            ServiceConfig {
                idle_timeout: Duration::from_secs(20),
                ..quick_cfg()
            },
        );
        let handle = host_with(&service, driver, 3, &plan, SchedulerKind::Random, 2);

        let relays: Vec<_> = (1..5)
            .map(|player| {
                let mut client = plan.connect_mem(&hub);
                std::thread::spawn(move || {
                    client.attach(3, player).expect("attach");
                    client.relay()
                })
            })
            .collect();
        // Player 0's relay swallows one message and dies: that frame is
        // in flight forever, so the driver must name the culprit.
        let mut defector = plan.connect_mem(&hub);
        defector.attach(3, 0).expect("attach");
        loop {
            match defector.recv().expect("a frame for player 0") {
                Frame::Msg { .. } => break,
                _ => continue,
            }
        }
        drop(defector);

        assert_eq!(
            handle.outcome().expect_err("a vanished relay is fatal"),
            NetError::PeerVanished {
                session: 3,
                player: 0
            },
            "{driver:?}"
        );
        for relay in relays {
            assert_eq!(
                relay.join().expect("relay thread"),
                Err(NetError::Aborted { session: 3 }),
                "{driver:?}"
            );
        }
        service.shutdown();
    }
}

#[test]
fn slow_loris_partial_frames_stall_nobody() {
    // A peer dribbling an Attach frame one byte at a time across the
    // whole run: with per-connection incremental parsing the partial
    // frame just sits in that connection's read buffer. Before the
    // reactor, a reader *thread* blocked mid-frame was harmless but a
    // slot wasted; in a shared event loop this test is load-bearing —
    // one stalled peer must not stall the loop.
    let n = 5;
    let plan = majority_plan(n);
    let transport = TcpTransport::bind_loopback().expect("bind");
    let addr = transport.addr();
    let service = Service::with_config(Box::new(transport), quick_cfg());
    let handle = plan.serve(&service, 1, SchedulerKind::Fifo, 0);

    // The loris: a well-formed Attach for an unknown session, trickled.
    let loris = std::thread::spawn(move || {
        use std::io::{Read, Write};
        let mut sock = std::net::TcpStream::connect(addr).expect("loris connect");
        let mut body = vec![WIRE_VERSION, 0u8];
        999u64.encode(&mut body);
        7usize.encode(&mut body);
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        for byte in frame {
            sock.write_all(&[byte]).expect("dribble");
            sock.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The frame finally parsed: session 999 was never hosted, so
        // after the grace window the service answers with a typed Reject
        // on this same connection.
        let mut len = [0u8; 4];
        sock.read_exact(&mut len).expect("reject frame length");
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        sock.read_exact(&mut body).expect("reject frame body");
        assert_eq!(body[0], WIRE_VERSION);
        assert_eq!(body[1], 3, "tag must be Reject");
    });

    // Meanwhile the healthy session proceeds at full speed.
    let relays: Vec<_> = (0..n)
        .map(|player| {
            std::thread::spawn(move || {
                let mut client = Client::<CtMsg>::tcp(addr).expect("connect");
                client.attach(1, player).expect("attach");
                client.relay().expect("relay")
            })
        })
        .collect();
    let outcome = handle
        .outcome()
        .expect("healthy session unaffected by the loris");
    assert_eq!(outcome.termination, TerminationKind::Quiescent);
    for relay in relays {
        relay.join().expect("relay thread");
    }
    loris.join().expect("loris thread");
    service.shutdown();
}

#[test]
fn rejection_reasons_are_identical_across_drivers() {
    let plan = majority_plan(5);
    for driver in BOTH {
        let hub = MemTransport::new();
        let service = Service::with_config(Box::new(hub.listener()), quick_cfg());
        let handle = host_with(&service, driver, 7, &plan, SchedulerKind::Fifo, 0);

        let mut first = plan.connect_mem(&hub);
        first.attach(7, 0).expect("attach");
        let mut second = plan.connect_mem(&hub);
        second.attach(7, 0).expect("attach");
        assert_eq!(
            second.relay(),
            Err(NetError::Rejected {
                session: 7,
                reason: RejectReason::PlayerTaken
            }),
            "{driver:?}"
        );
        let mut ninth = plan.connect_mem(&hub);
        ninth.attach(7, 9).expect("attach");
        assert_eq!(
            ninth.relay(),
            Err(NetError::Rejected {
                session: 7,
                reason: RejectReason::PlayerOutOfRange
            }),
            "{driver:?}"
        );
        assert_eq!(
            handle.outcome().expect_err("barrier times out"),
            NetError::AttachTimeout {
                session: 7,
                attached: 1,
                expected: 5
            },
            "{driver:?}"
        );
        assert_eq!(
            first.relay(),
            Err(NetError::Aborted { session: 7 }),
            "{driver:?}"
        );
        service.shutdown();
    }
}

// ---------------------------------------------------------------------------
// PR 7: the new typed owner — both drivers must report tampering
// identically
// ---------------------------------------------------------------------------

#[test]
fn drivers_agree_on_the_auth_failure_owner() {
    // The same rewriting relay against the same authenticated config, once
    // per driver: MAC verification lives in the reactor's single parse
    // site and freshness in the shared flight state precisely so the two
    // drivers *cannot* disagree on the verdict. Pin it anyway.
    use mediator_core::adversary::{Window, OPEN_LIE_OFFSET};
    use mediator_net::tamper::{
        run_tampered_pair, DriverMode, TamperPlan, TransportKind, WireTactic, TARGET_SID,
    };
    use mediator_net::{AuthKey, TamperKind};

    let plan = majority_plan(5);
    let cfg = ServiceConfig {
        auth: None,
        ..quick_cfg()
    }
    .with_auth(AuthKey::from_seed(7));
    let mut verdicts: Vec<(u64, TamperKind)> = Vec::new();
    for driver in [DriverMode::Reactor, DriverMode::Threaded] {
        let pair = run_tampered_pair(
            &plan,
            TransportKind::Mem,
            driver,
            cfg.clone(),
            TamperPlan::against(TARGET_SID).tactic(
                Window::all(),
                WireTactic::Rewrite {
                    offset: OPEN_LIE_OFFSET,
                },
            ),
            SchedulerKind::Fifo,
            0,
        );
        match pair.target {
            Err(NetError::AuthFailure { session, kind, .. }) => verdicts.push((session, kind)),
            other => panic!("{driver:?}: expected AuthFailure, got {other:?}"),
        }
        assert!(
            pair.honest.is_ok(),
            "{driver:?}: honest neighbor unaffected"
        );
    }
    assert_eq!(
        verdicts[0], verdicts[1],
        "reactor and threaded drivers report the same typed verdict"
    );
    assert_eq!(verdicts[0], (TARGET_SID, TamperKind::BadMac));
}
