//! Differential pin: the frontier atlas rendered from the sharded plane
//! must be **byte-identical** to the local thread fan-out — same
//! `to_bits`-level discipline as `shard_parity`, lifted from one report to
//! the whole `FRONTIER.json` artifact, on both transports.

use std::time::Duration;

use mediator_core::frontier::{run_frontier_local, CellClass, FrontierSpec};
use mediator_net::{run_frontier_sharded, ShardConfig, TransportKind};

/// A generous lease deadline so debug-mode cell sweeps never lapse.
fn clean_cfg() -> ShardConfig {
    ShardConfig::default().lease_deadline(Duration::from_secs(60))
}

#[test]
fn sharded_atlas_is_byte_identical_to_local_mem() {
    let spec = FrontierSpec::tiny();
    let local = run_frontier_local(&spec);
    let (sharded, log) = run_frontier_sharded(&spec, 4, TransportKind::Mem, &clean_cfg());
    assert_eq!(
        local.to_json(),
        sharded.to_json(),
        "atlas artifacts drifted"
    );
    assert!(sharded.check().is_ok());
    // Every executed cell went over the plane; both violated cells had
    // their witness re-enacted by a worker before the verdict was sealed.
    assert_eq!(log.cells.len(), 3);
    assert_eq!(log.failures(), 0);
    assert_eq!(log.witnesses_reenacted(), 2);
}

#[test]
fn sharded_atlas_is_byte_identical_to_local_tcp() {
    let spec = FrontierSpec::tiny();
    let local = run_frontier_local(&spec);
    let (sharded, log) = run_frontier_sharded(&spec, 2, TransportKind::Tcp, &clean_cfg());
    assert_eq!(
        local.to_json(),
        sharded.to_json(),
        "atlas artifacts drifted"
    );
    assert_eq!(log.failures(), 0);
}

#[test]
fn per_cell_verdicts_survive_the_plane_structurally() {
    // Beyond the byte diff: the sharded atlas classifies each tiny-grid
    // cell exactly as the local one, witness coordinates included.
    let spec = FrontierSpec::tiny();
    let local = run_frontier_local(&spec);
    let (sharded, _) = run_frontier_sharded(&spec, 3, TransportKind::Mem, &clean_cfg());
    assert_eq!(local.results.len(), sharded.results.len());
    for (a, b) in local.results.iter().zip(&sharded.results) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.class, b.class);
        assert_eq!(a.evidence, b.evidence);
        match (&a.witness, &b.witness) {
            (None, None) => assert_ne!(a.class, CellClass::Violated),
            (Some(wa), Some(wb)) => {
                assert_eq!(wa.strategy, wb.strategy);
                assert_eq!(wa.coalition, wb.coalition);
                assert_eq!(wa.kind, wb.kind);
                assert_eq!(wa.seed, wb.seed);
                assert_eq!(wa.gain.mean.to_bits(), wb.gain.mean.to_bits());
            }
            (a, b) => panic!("witnesses diverged: local {a:?} vs sharded {b:?}"),
        }
    }
}
