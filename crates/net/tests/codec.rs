//! Codec conformance: fuzz-style round-trip properties over the protocol
//! message enums, plus the malformed-input edge cases — truncated frames,
//! unknown version bytes, oversized length prefixes, unknown tags, and
//! mid-stream connection drops — each surfacing a *typed* error (never a
//! panic) on **both** transport backends, which share the framing code by
//! construction.

use mediator_bcast::AbaMsg;
use mediator_core::cheap_talk::CtMsg;
use mediator_core::MedMsg;
use mediator_field::Fp;
use mediator_mpc::MpcMsg;
use mediator_net::{
    AuthKey, AuthTag, CodecError, Frame, FrameRx as _, FramedRx, MemTransport, NetError,
    OutcomeSummary, TamperKind, TcpTransport, Wire, MAX_FRAME_LEN, WIRE_VERSION, WIRE_VERSION_AUTH,
};
use mediator_sim::{Payload, TerminationKind};
use mediator_vss::{AvssMsg, DetectMsg};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

// ---------------------------------------------------------------------------
// Random message generators (the shim has no prop_oneof; hand-rolled)
// ---------------------------------------------------------------------------

fn arb_fp(rng: &mut StdRng) -> Fp {
    Fp::new(rng.gen())
}

fn fp_vec(rng: &mut StdRng, max: usize) -> Vec<Fp> {
    let len = rng.gen_range(0..=max);
    (0..len).map(|_| arb_fp(rng)).collect()
}

fn arb_aba(rng: &mut StdRng) -> AbaMsg {
    match rng.gen_range(0..3) {
        0 => AbaMsg::BVal {
            round: rng.gen_range(0..1000u64),
            v: rng.gen(),
        },
        1 => AbaMsg::Aux {
            round: rng.gen_range(0..1000u64),
            v: rng.gen(),
        },
        _ => AbaMsg::Done { v: rng.gen() },
    }
}

fn arb_avss(rng: &mut StdRng) -> AvssMsg {
    match rng.gen_range(0..3) {
        0 => {
            let rows = rng.gen_range(0..4usize);
            AvssMsg::Rows(Payload::new(
                (0..rows).map(|_| fp_vec(rng, 5)).collect::<Vec<_>>(),
            ))
        }
        1 => AvssMsg::Echo(fp_vec(rng, 6)),
        _ => AvssMsg::Ready,
    }
}

fn arb_detect(rng: &mut StdRng) -> DetectMsg {
    match rng.gen_range(0..3) {
        0 => DetectMsg::Deal {
            shares: fp_vec(rng, 5),
            blinds: fp_vec(rng, 5),
        },
        1 => DetectMsg::Open {
            points: Payload::new(fp_vec(rng, 6)),
        },
        _ => DetectMsg::Accuse,
    }
}

fn arb_mpc(rng: &mut StdRng) -> MpcMsg {
    match rng.gen_range(0..5) {
        0 => MpcMsg::Avss {
            dealer: rng.gen_range(0..32usize),
            inner: arb_avss(rng),
        },
        1 => MpcMsg::Detect {
            dealer: rng.gen_range(0..32usize),
            inner: arb_detect(rng),
        },
        2 => MpcMsg::Core {
            dealer: rng.gen_range(0..32usize),
            inner: arb_aba(rng),
        },
        3 => MpcMsg::Open {
            id: rng.gen(),
            value: arb_fp(rng),
        },
        _ => MpcMsg::Output {
            idx: rng.gen_range(0..64usize),
            value: arb_fp(rng),
        },
    }
}

fn arb_ct(rng: &mut StdRng) -> CtMsg {
    if rng.gen_range(0..8u32) == 0 {
        CtMsg::Finished
    } else {
        CtMsg::Mpc(arb_mpc(rng))
    }
}

fn arb_med(rng: &mut StdRng) -> MedMsg {
    match rng.gen_range(0..4) {
        0 => MedMsg::Input {
            round: rng.gen_range(0..100u64),
            value: fp_vec(rng, 4),
        },
        1 => MedMsg::Round {
            round: rng.gen_range(0..100u64),
            payload: fp_vec(rng, 4),
        },
        2 => MedMsg::Stop { action: rng.gen() },
        _ => MedMsg::Gossip {
            payload: fp_vec(rng, 4),
        },
    }
}

/// Wraps a generator function as a shim `Strategy`.
struct Gen<T>(fn(&mut StdRng) -> T);

impl<T> Strategy for Gen<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = value.to_bytes();
    let back = T::from_bytes(&bytes).expect("round trip decodes");
    assert_eq!(&back, value);
}

proptest! {
    #[test]
    fn ct_msg_round_trips(msg in Gen(arb_ct)) {
        roundtrip(&msg);
    }

    #[test]
    fn med_msg_round_trips(msg in Gen(arb_med)) {
        roundtrip(&msg);
    }

    #[test]
    fn frames_round_trip(msg in Gen(arb_ct), session in 0u64..1000, src in 0usize..16, dst in 0usize..16) {
        let frames = [
            Frame::Attach { session, player: src },
            Frame::Msg { session, src, dst, msg, auth: None },
            Frame::Outcome {
                session,
                summary: OutcomeSummary {
                    termination: TerminationKind::Quiescent,
                    moves: vec![Some(1), None, Some(3)],
                    wills: vec![None, Some(9), None],
                    halted: vec![true, false, true],
                    messages_sent: 17,
                    messages_delivered: 12,
                    steps: 40,
                },
            },
            Frame::Abort { session },
        ];
        for frame in frames {
            let mut body = Vec::new();
            frame.encode_body(&mut body);
            let back = Frame::<CtMsg>::decode_body(&body).expect("frame decodes");
            prop_assert_eq!(back, frame);
        }
    }

    #[test]
    fn truncated_messages_error_not_panic(msg in Gen(arb_ct)) {
        // Every strict prefix of a valid encoding must decode to a typed
        // error — truncation can never panic or succeed (no encoding of a
        // CtMsg is a prefix of another: tags and lengths come first).
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(CtMsg::from_bytes(&bytes[..cut]).is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Frame-level edge cases over BOTH transport backends
// ---------------------------------------------------------------------------

/// Runs `spray` against a fresh framed connection on each backend and
/// asserts the receiving side surfaces `expect`.
fn assert_both_backends(spray: fn(&mut dyn std::io::Write), expect: &NetError) {
    // In-memory pipe.
    let (mut raw_tx, raw_rx) = mediator_net::pipe();
    spray(&mut raw_tx);
    drop(raw_tx);
    let mut rx: FramedRx<_> = FramedRx::new(raw_rx);
    let got: Result<Frame<CtMsg>, NetError> = rx.recv();
    assert_eq!(got.unwrap_err(), *expect, "mem backend");

    // TCP loopback (ephemeral port: sandbox/CI-safe).
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind 127.0.0.1:0");
    let addr = listener.local_addr().expect("local addr");
    let client = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        spray(&mut stream);
        // Drop: closes the socket, ending the stream where the spray ended.
    });
    let (stream, _) = listener.accept().expect("accept");
    let mut rx: FramedRx<_> = FramedRx::new(stream);
    let got: Result<Frame<CtMsg>, NetError> = rx.recv();
    assert_eq!(got.unwrap_err(), *expect, "tcp backend");
    client.join().expect("client thread");
}

#[test]
fn truncated_frame_is_a_typed_error_on_both_backends() {
    // A frame announcing 100 body bytes, stream dropped after 3.
    assert_both_backends(
        |w| {
            w.write_all(&100u32.to_le_bytes()).unwrap();
            w.write_all(&[WIRE_VERSION, 1, 7]).unwrap();
        },
        &NetError::Disconnected,
    );
}

#[test]
fn mid_prefix_drop_is_a_typed_error_on_both_backends() {
    // The stream dies inside the 4-byte length prefix itself.
    assert_both_backends(
        |w| {
            w.write_all(&[9u8, 0]).unwrap();
        },
        &NetError::Disconnected,
    );
}

#[test]
fn clean_close_at_frame_boundary_is_closed_on_both_backends() {
    assert_both_backends(|_| {}, &NetError::Closed);
}

#[test]
fn unknown_version_byte_is_a_typed_error_on_both_backends() {
    assert_both_backends(
        |w| {
            let body = [99u8, 1]; // version 99
            w.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
            w.write_all(&body).unwrap();
        },
        &NetError::Codec(CodecError::UnknownVersion(99)),
    );
}

#[test]
fn oversized_length_prefix_is_rejected_before_reading_on_both_backends() {
    assert_both_backends(
        |w| {
            w.write_all(&(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
            // No body at all: the announcement alone must be refused.
        },
        &NetError::Codec(CodecError::LengthOverrun {
            announced: u64::from(MAX_FRAME_LEN) + 1,
            remaining: MAX_FRAME_LEN as usize,
        }),
    );
}

#[test]
fn unknown_frame_tag_is_a_typed_error_on_both_backends() {
    assert_both_backends(
        |w| {
            let body = [WIRE_VERSION, 200u8];
            w.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
            w.write_all(&body).unwrap();
        },
        &NetError::Codec(CodecError::UnknownTag {
            what: "Frame",
            tag: 200,
        }),
    );
}

#[test]
fn trailing_garbage_inside_a_frame_is_a_typed_error_on_both_backends() {
    assert_both_backends(
        |w| {
            let mut body = Vec::new();
            Frame::<CtMsg>::Abort { session: 3 }.encode_body(&mut body);
            body.push(0xAB); // one byte the decoder must refuse to ignore
            w.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
            w.write_all(&body).unwrap();
        },
        &NetError::Codec(CodecError::TrailingBytes { extra: 1 }),
    );
}

#[test]
fn connecting_to_a_closed_mem_hub_fails_fast() {
    // TCP refuses a dead port; the mem hub must not park the connector on
    // a queue nobody will ever accept from.
    let hub = MemTransport::new();
    let mut listener = hub.listener();
    mediator_net::NbListener::close(&mut listener);
    let (_tx, mut rx) = hub.connect::<CtMsg>();
    assert_eq!(rx.recv().unwrap_err(), NetError::Closed);
}

#[test]
fn frames_survive_both_backends_intact() {
    // A positive control for the shared framing: one frame each way over
    // the in-memory hub and over a real socket pair.
    let frame = Frame::Msg {
        session: 9,
        src: 1,
        dst: 4,
        msg: CtMsg::Finished,
        auth: None,
    };

    let hub = MemTransport::new();
    let mut listener = hub.listener();
    let (mut client_tx, _client_rx) = hub.connect::<CtMsg>();
    client_tx.send(&frame).expect("send over mem");
    let (_srv_tx, mut srv_rx) = accept_framed::<CtMsg>(&mut listener);
    assert_eq!(srv_rx.recv().expect("frame over mem"), frame);

    let mut transport = TcpTransport::bind_loopback().expect("bind");
    let addr = transport.addr();
    let sent = frame.clone();
    let client = std::thread::spawn(move || {
        let (mut tx, _rx) = TcpTransport::connect::<CtMsg>(addr).expect("connect");
        tx.send(&sent).expect("send over tcp");
    });
    let (_tx, mut rx) = accept_framed::<CtMsg>(&mut transport);
    assert_eq!(rx.recv().expect("frame over tcp"), frame);
    client.join().expect("client thread");
}

// ---------------------------------------------------------------------------
// Authenticated-frame negative paths (WIRE_VERSION_AUTH) over BOTH backends
// ---------------------------------------------------------------------------

/// A sealed v2 `Msg` frame: session 7, player 0 → 1, an `Open` carrying
/// `value`, MAC computed under `key`.
fn sealed_msg(key: &AuthKey, seq: u64, value: u64) -> Frame<CtMsg> {
    let mut frame = Frame::Msg {
        session: 7,
        src: 0,
        dst: 1,
        msg: CtMsg::Mpc(MpcMsg::Open {
            id: 42,
            value: Fp::new(value),
        }),
        auth: Some(AuthTag { seq, mac: [0; 8] }),
    };
    frame.seal(key);
    frame
}

/// Like [`assert_both_backends`] but for raw pre-built bytes (the sprays
/// here are crafted mutations of sealed frames, not fn-pointer friendly).
fn spray_bytes_both_backends(body: &[u8], expect: &NetError) {
    let framed = |body: &[u8]| {
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(body);
        bytes
    };

    let (mut raw_tx, raw_rx) = mediator_net::pipe();
    std::io::Write::write_all(&mut raw_tx, &framed(body)).unwrap();
    drop(raw_tx);
    let mut rx: FramedRx<_> = FramedRx::new(raw_rx);
    let got: Result<Frame<CtMsg>, NetError> = rx.recv();
    assert_eq!(got.unwrap_err(), *expect, "mem backend");

    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind 127.0.0.1:0");
    let addr = listener.local_addr().expect("local addr");
    let bytes = framed(body);
    let client = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        std::io::Write::write_all(&mut stream, &bytes).unwrap();
    });
    let (stream, _) = listener.accept().expect("accept");
    let mut rx: FramedRx<_> = FramedRx::new(stream);
    let got: Result<Frame<CtMsg>, NetError> = rx.recv();
    assert_eq!(got.unwrap_err(), *expect, "tcp backend");
    client.join().expect("client thread");
}

#[test]
fn truncated_mac_trailer_is_a_typed_error_on_both_backends() {
    // A v2 frame with half its MAC cut off: the decoder demands all 8
    // trailer bytes and surfaces `Truncated` — never a short-MAC compare.
    let key = AuthKey::from_seed(11);
    let mut body = Vec::new();
    sealed_msg(&key, 0, 2).encode_body(&mut body);
    body.truncate(body.len() - 4);
    spray_bytes_both_backends(&body, &NetError::Codec(CodecError::Truncated));
}

#[test]
fn flipped_version_byte_is_a_typed_error_on_both_backends() {
    // One bit of stream damage in the version byte of a sealed frame.
    let key = AuthKey::from_seed(11);
    let mut body = Vec::new();
    sealed_msg(&key, 0, 2).encode_body(&mut body);
    let flipped = body[0] ^ 0x04;
    body[0] = flipped;
    spray_bytes_both_backends(&body, &NetError::Codec(CodecError::UnknownVersion(flipped)));
}

#[test]
fn auth_version_carries_only_msg_frames_on_both_backends() {
    // Control frames never travel v2 (they originate at the endpoint that
    // judges them): a v2 body with a non-Msg kind byte is malformed.
    let key = AuthKey::from_seed(11);
    let mut body = Vec::new();
    sealed_msg(&key, 0, 2).encode_body(&mut body);
    assert_eq!(body[0], WIRE_VERSION_AUTH);
    body[1] = 4; // Abort's kind byte — legal in v1, not under v2
    spray_bytes_both_backends(
        &body,
        &NetError::Codec(CodecError::UnknownTag {
            what: "Frame",
            tag: 4,
        }),
    );
}

#[test]
fn bit_flipped_payload_fails_mac_verification_on_both_backends() {
    // A payload mutation that keeps the frame *well-formed* (value 2 → 3
    // with the original MAC spliced in): the codec accepts it — MACs are
    // opaque bytes to the framing layer — and verification must be the
    // layer that catches it. Both backends deliver the frame intact; the
    // stale MAC fails against the mutated body on both.
    let key = AuthKey::from_seed(11);
    let genuine = sealed_msg(&key, 3, 2);
    let Frame::Msg {
        auth: Some(tag), ..
    } = &genuine
    else {
        panic!("sealed_msg builds a Msg");
    };
    let forged = match sealed_msg(&key, 3, 3) {
        Frame::Msg {
            session,
            src,
            dst,
            msg,
            ..
        } => Frame::Msg {
            session,
            src,
            dst,
            msg,
            auth: Some(*tag), // genuine MAC, mutated payload
        },
        _ => unreachable!(),
    };

    let verify = |frame: &Frame<CtMsg>| {
        let mut body = Vec::new();
        frame.encode_body(&mut body);
        let Frame::Msg {
            session,
            src,
            dst,
            auth: Some(tag),
            ..
        } = frame
        else {
            panic!("Msg expected");
        };
        key.verify_msg(*session, *src, *dst, &body[..body.len() - 8], tag.mac)
            .is_authentic()
    };
    assert!(verify(&genuine), "control: the untouched frame verifies");
    assert!(!verify(&forged), "one flipped payload value must be Forged");

    // Over the wire on both backends: arrives decodable, still Forged.
    let (raw_tx, raw_rx) = mediator_net::pipe();
    let mut tx = mediator_net::FramedTx::new(raw_tx);
    mediator_net::FrameTx::send(&mut tx, &forged).expect("send over mem");
    let mut rx: FramedRx<_> = FramedRx::new(raw_rx);
    let got: Frame<CtMsg> = rx.recv().expect("forged frame decodes at the codec layer");
    assert!(!verify(&got), "mem backend: Forged after the wire hop");

    let mut transport = TcpTransport::bind_loopback().expect("bind");
    let addr = transport.addr();
    let sent = forged.clone();
    let client = std::thread::spawn(move || {
        let (mut tx, _rx) = TcpTransport::connect::<CtMsg>(addr).expect("connect");
        tx.send(&sent).expect("send over tcp");
    });
    let (_tx, mut rx) = accept_framed::<CtMsg>(&mut transport);
    let got = rx.recv().expect("forged frame decodes at the codec layer");
    assert!(!verify(&got), "tcp backend: Forged after the wire hop");
    client.join().expect("client thread");
}

#[test]
fn replayed_frame_aborts_the_session_with_the_typed_owner_on_both_backends() {
    // End-to-end freshness: a relay that echoes one frame *twice* against
    // an authenticated service. The duplicate carries a valid MAC — only
    // the consumed sequence number betrays it — and the session dies with
    // the typed `Replayed` owner on both transports.
    use mediator_circuits::catalog;
    use mediator_core::scenario::Scenario;
    use mediator_net::{Client, DeliveryOrder, NetPlan, Service, ServiceConfig};
    use mediator_sim::SchedulerKind;

    let n = 5;
    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("n = 5 > 4k+4t = 4");
    let cfg = ServiceConfig {
        idle_timeout: std::time::Duration::from_secs(5),
        attach_timeout: std::time::Duration::from_secs(10),
        attach_grace: std::time::Duration::from_millis(100),
        delivery: DeliveryOrder::Arrival,
        ..ServiceConfig::default()
    }
    .with_auth(AuthKey::from_seed(0xabad1dea));

    for tcp in [false, true] {
        let hub = MemTransport::new();
        let (service, mut client): (Service<CtMsg>, Client<CtMsg>) = if tcp {
            let listener = TcpTransport::bind_loopback().expect("bind");
            let addr = listener.addr();
            let service = Service::with_config(Box::new(listener), cfg.clone());
            (service, Client::tcp(addr).expect("dial"))
        } else {
            let service = Service::with_config(Box::new(hub.listener()), cfg.clone());
            (service, Client::mem(&hub))
        };
        let handle = plan.serve(&service, 7, SchedulerKind::Fifo, 0);
        for player in 0..n {
            client.attach(7, player).expect("attach");
        }
        let mut duplicated = false;
        while let Ok(frame @ Frame::Msg { .. }) = client.recv() {
            if client.send(&frame).is_err() {
                break; // service already aborted the session
            }
            if !duplicated {
                duplicated = true;
                let _ = client.send(&frame); // the replay
            }
        }
        assert!(duplicated, "tcp={tcp}: relay replayed a frame");
        match handle.outcome() {
            Err(NetError::AuthFailure { session, kind, .. }) => {
                assert_eq!(session, 7, "tcp={tcp}");
                assert_eq!(kind, TamperKind::Replayed, "tcp={tcp}");
            }
            other => panic!("tcp={tcp}: expected Replayed AuthFailure, got {other:?}"),
        }
        service.shutdown();
    }
}

/// Spin-waits one connection out of a non-blocking listener and hands it
/// back as blocking framed halves (test convenience only — the service's
/// reactor consumes the readiness-based form).
fn accept_framed<M: mediator_net::Wire + 'static>(
    listener: &mut dyn mediator_net::NbListener,
) -> mediator_net::ConnPair<M> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match listener.try_accept().expect("listener open") {
            Some(io) => return io.into_framed().expect("framed"),
            None => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "no connection arrived"
                );
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }
}
