//! Codec conformance for the shard lease frames (tags 5–9): fuzz-style
//! round trips, then the malformed-input battery — truncation at every
//! cut, unknown tags, oversized payload claims, invalid UTF-8 strategy
//! names, and the v2 grammar pin (exactly `Msg` and `ShardResult` travel
//! authenticated) — each a *typed* error, never a panic, on **both**
//! transport backends.

use mediator_net::{
    AuthKey, AuthTag, CodecError, Frame, FrameRx as _, FramedRx, NetError, Wire, MAX_FRAME_LEN,
    SHARD_COORD, WIRE_VERSION, WIRE_VERSION_AUTH,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

type ShardFrame = Frame<u64>;

// ---------------------------------------------------------------------------
// Random shard-frame generators (the shim has no prop_oneof; hand-rolled)
// ---------------------------------------------------------------------------

fn arb_strategy(rng: &mut StdRng) -> Option<String> {
    match rng.gen_range(0..3u32) {
        0 => None,
        1 => Some(String::new()),
        _ => {
            let len = rng.gen_range(1..24usize);
            Some(
                (0..len)
                    .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
                    .collect(),
            )
        }
    }
}

fn arb_coalition(rng: &mut StdRng) -> Vec<usize> {
    let len = rng.gen_range(0..5usize);
    (0..len).map(|_| rng.gen_range(0..32usize)).collect()
}

fn arb_profiles(rng: &mut StdRng) -> Vec<Vec<usize>> {
    let runs = rng.gen_range(0..6usize);
    let players = rng.gen_range(1..8usize);
    (0..runs)
        .map(|_| (0..players).map(|_| rng.gen_range(0..64usize)).collect())
        .collect()
}

fn arb_shard_frame(rng: &mut StdRng) -> ShardFrame {
    match rng.gen_range(0..5u32) {
        0 => Frame::ShardRequest { worker: rng.gen() },
        1 => Frame::ShardGrant {
            unit: rng.gen_range(0..10_000u64),
            strategy: arb_strategy(rng),
            coalition: arb_coalition(rng),
            run: if rng.gen() {
                Some(rng.gen_range(0..1000u64))
            } else {
                None
            },
        },
        2 => Frame::ShardResult {
            unit: rng.gen_range(0..10_000u64),
            worker: rng.gen_range(0..64u64),
            profiles: arb_profiles(rng),
            auth: None,
        },
        3 => Frame::ShardWitness {
            unit: rng.gen_range(0..10_000u64),
            run: rng.gen_range(0..1000u64),
            profile: (0..rng.gen_range(1..8usize))
                .map(|_| rng.gen_range(0..64))
                .collect(),
        },
        _ => Frame::ShardDrain,
    }
}

struct Gen<T>(fn(&mut StdRng) -> T);

impl<T> Strategy for Gen<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

proptest! {
    #[test]
    fn shard_frames_round_trip(frame in Gen(arb_shard_frame)) {
        let mut body = Vec::new();
        frame.encode_body(&mut body);
        prop_assert_eq!(body[0], WIRE_VERSION, "plain shard frames travel v1");
        let back = ShardFrame::decode_body(&body).expect("frame decodes");
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn sealed_shard_results_round_trip_and_verify(
        unit in 0u64..10_000,
        worker in 0u64..64,
        seq in 0u64..1_000_000,
    ) {
        let key = AuthKey::from_seed(0xBADC_0FFE);
        let mut frame = Frame::<u64>::ShardResult {
            unit,
            worker,
            profiles: vec![vec![1, 2, 3], vec![4, 5, 6]],
            auth: Some(AuthTag { seq, mac: [0; 8] }),
        };
        frame.seal(&key);
        let mut body = Vec::new();
        frame.encode_body(&mut body);
        prop_assert_eq!(body[0], WIRE_VERSION_AUTH, "sealed results travel v2");
        prop_assert_eq!(body[1], 7u8, "the v2 shard grammar is tag 7");
        // The trailer verifies under the shard MAC domain…
        let (tag, prefix) = match &frame {
            Frame::ShardResult { auth: Some(tag), .. } => (*tag, &body[..body.len() - 8]),
            _ => unreachable!(),
        };
        prop_assert!(key
            .verify_msg(unit, worker as usize, SHARD_COORD, prefix, tag.mac)
            .is_authentic());
        // …and the frame round-trips trailer included.
        let back = ShardFrame::decode_body(&body).expect("sealed result decodes");
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn truncated_shard_frames_error_not_panic(frame in Gen(arb_shard_frame)) {
        // Every strict prefix of a valid shard frame body must decode to
        // a typed error: lease bookkeeping can never panic on a cut.
        let mut body = Vec::new();
        frame.encode_body(&mut body);
        for cut in 0..body.len() {
            prop_assert!(ShardFrame::decode_body(&body[..cut]).is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Malformed shard frames over BOTH transport backends
// ---------------------------------------------------------------------------

/// Sprays a pre-built frame body (length prefix added here) at a fresh
/// framed connection on each backend and asserts the typed error.
fn spray_bytes_both_backends(body: &[u8], expect: &NetError) {
    let framed = |body: &[u8]| {
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(body);
        bytes
    };

    // In-memory pipe.
    let (mut raw_tx, raw_rx) = mediator_net::pipe();
    std::io::Write::write_all(&mut raw_tx, &framed(body)).unwrap();
    drop(raw_tx);
    let mut rx: FramedRx<_> = FramedRx::new(raw_rx);
    let got: Result<ShardFrame, NetError> = rx.recv();
    assert_eq!(got.unwrap_err(), *expect, "mem backend");

    // TCP loopback (ephemeral port: sandbox/CI-safe).
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind 127.0.0.1:0");
    let addr = listener.local_addr().expect("local addr");
    let bytes = framed(body);
    let client = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        std::io::Write::write_all(&mut stream, &bytes).unwrap();
    });
    let (stream, _) = listener.accept().expect("accept");
    let mut rx: FramedRx<_> = FramedRx::new(stream);
    let got: Result<ShardFrame, NetError> = rx.recv();
    assert_eq!(got.unwrap_err(), *expect, "tcp backend");
    client.join().expect("client thread");
}

#[test]
fn unknown_shard_tag_is_rejected_on_both_backends() {
    // Tag 10 is one past the shard grammar.
    spray_bytes_both_backends(
        &[WIRE_VERSION, 10],
        &CodecError::UnknownTag {
            what: "Frame",
            tag: 10,
        }
        .into(),
    );
}

#[test]
fn shard_request_cut_inside_the_worker_id_is_truncated() {
    // `[1][5]` announces a ShardRequest and ends before the worker id.
    spray_bytes_both_backends(&[WIRE_VERSION, 5], &CodecError::Truncated.into());
}

#[test]
fn oversized_profile_claim_is_a_length_overrun() {
    // A ShardResult whose profiles vector *claims* 2^20 runs in a 5-byte
    // body: the codec's length guard refuses before allocating anything.
    let mut body = vec![WIRE_VERSION, 7];
    0u64.encode(&mut body); // unit
    3u64.encode(&mut body); // worker
                            // Varint 2^20 as the profiles length claim, with nothing after it.
    (1u64 << 20).encode(&mut body);
    let announced = 1u64 << 20;
    spray_bytes_both_backends(
        &body,
        &CodecError::LengthOverrun {
            announced,
            remaining: 0,
        }
        .into(),
    );
}

#[test]
fn oversized_frame_prefix_is_refused_before_reading_the_lease() {
    // The transport-level guard: a length prefix past MAX_FRAME_LEN is
    // refused before any shard payload is read, on both backends.
    let overrun = MAX_FRAME_LEN + 1;
    let spray = move |w: &mut dyn std::io::Write| {
        w.write_all(&overrun.to_le_bytes()).unwrap();
        w.write_all(&[WIRE_VERSION, 6]).unwrap();
    };
    let expect: NetError = CodecError::LengthOverrun {
        announced: u64::from(overrun),
        remaining: MAX_FRAME_LEN as usize,
    }
    .into();

    let (mut raw_tx, raw_rx) = mediator_net::pipe();
    spray(&mut raw_tx);
    drop(raw_tx);
    let mut rx: FramedRx<_> = FramedRx::new(raw_rx);
    let got: Result<ShardFrame, NetError> = rx.recv();
    assert_eq!(got.unwrap_err(), expect, "mem backend");

    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let client = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        spray(&mut stream);
    });
    let (stream, _) = listener.accept().expect("accept");
    let mut rx: FramedRx<_> = FramedRx::new(stream);
    let got: Result<ShardFrame, NetError> = rx.recv();
    assert_eq!(got.unwrap_err(), expect, "tcp backend");
    client.join().expect("client thread");
}

#[test]
fn invalid_utf8_strategy_name_is_a_bad_string() {
    // A ShardGrant whose strategy-name bytes are not UTF-8: `[1][6]`,
    // unit 0, Some(2-byte string) = 0xFF 0xFE, which String decoding
    // must refuse with the typed BadString (never a lossy conversion —
    // strategy names key the deviant-cell lookup).
    let mut body = vec![WIRE_VERSION, 6];
    0u64.encode(&mut body); // unit
    body.push(1); // Option tag: Some
    2u64.encode(&mut body); // string byte length
    body.extend_from_slice(&[0xFF, 0xFE]); // not UTF-8
    spray_bytes_both_backends(&body, &CodecError::BadString.into());
}

#[test]
fn v2_grammar_admits_only_msg_and_shard_result() {
    // The versioned grammar pin: under WIRE_VERSION_AUTH exactly two
    // kinds travel — Msg (tag 1) and ShardResult (tag 7). Every other
    // tag under v2 is an unknown-tag error even though it is perfectly
    // valid under v1 — lease control frames never carry MACs, so a v2
    // claim on one is itself malformed.
    for tag in [0u8, 2, 3, 4, 5, 6, 8, 9] {
        spray_bytes_both_backends(
            &[WIRE_VERSION_AUTH, tag],
            &CodecError::UnknownTag { what: "Frame", tag }.into(),
        );
    }
}

#[test]
fn truncated_mac_trailer_on_a_sealed_result_is_truncated() {
    // Seal a result, then cut the body inside the 8-byte MAC trailer.
    let key = AuthKey::from_seed(7);
    let mut frame = Frame::<u64>::ShardResult {
        unit: 3,
        worker: 1,
        profiles: vec![vec![0, 1]],
        auth: Some(AuthTag {
            seq: 0,
            mac: [0; 8],
        }),
    };
    frame.seal(&key);
    let mut body = Vec::new();
    frame.encode_body(&mut body);
    body.truncate(body.len() - 3);
    spray_bytes_both_backends(&body, &CodecError::Truncated.into());
}

#[test]
fn bit_flipped_sealed_result_fails_its_mac_check() {
    // A relay flipping one profile byte in a sealed result invalidates
    // the MAC: the frame still *decodes* (the codec is integrity-blind),
    // but verification under the shard domain must refuse it.
    let key = AuthKey::from_seed(99);
    let mut frame = Frame::<u64>::ShardResult {
        unit: 11,
        worker: 2,
        profiles: vec![vec![5, 6, 7]],
        auth: Some(AuthTag {
            seq: 4,
            mac: [0; 8],
        }),
    };
    frame.seal(&key);
    let mut body = Vec::new();
    frame.encode_body(&mut body);
    // Flip the last profile value byte (7 → 6): still a valid encoding,
    // so the decode succeeds while the MAC check must not.
    let flip = body.len() - 9;
    body[flip] ^= 0x01;
    let back = ShardFrame::decode_body(&body).expect("tampered frame still decodes");
    match back {
        Frame::ShardResult {
            unit,
            worker,
            auth: Some(tag),
            ..
        } => {
            let prefix = &body[..body.len() - 8];
            assert!(
                !key.verify_msg(unit, worker as usize, SHARD_COORD, prefix, tag.mac)
                    .is_authentic(),
                "flipped byte must break the MAC"
            );
        }
        other => panic!("decoded to {other:?}"),
    }
}
