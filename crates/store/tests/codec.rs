//! Store-codec conformance: fuzz-style round-trip properties over every
//! value type that lands in a trace-log file, plus the malformed-input
//! battery — truncation, unknown tags, corrupted CRCs, and torn final
//! records — each surfacing a *typed* [`StoreError`], never a panic. The
//! structure mirrors the transport plane's codec suite
//! (`crates/net/tests/codec.rs`): the two formats share conventions but
//! not code, so each needs its own pin.

use mediator_sim::{ReplayScript, SchedulerKind, TerminationKind, TraceEvent};
use mediator_store::codec::{put_varint, Reader, StoreCodec};
use mediator_store::format::{
    crc32, put_preamble, put_record, scan, RecordKind, FRAME_LEN, PREAMBLE_LEN,
};
use mediator_store::{OutcomeRecord, PlanKind, RunHeader, StoreError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

// ---------------------------------------------------------------------------
// Random value generators (the shim has no prop_oneof; hand-rolled)
// ---------------------------------------------------------------------------

fn arb_event(rng: &mut StdRng) -> TraceEvent {
    let src = rng.gen_range(0..32usize);
    let dst = rng.gen_range(0..32usize);
    let k = rng.gen_range(0..1_000u64);
    match rng.gen_range(0..4) {
        0 => TraceEvent::Started { p: src },
        1 => TraceEvent::Sent { src, dst, k },
        2 => TraceEvent::Delivered { src, dst, k },
        _ => TraceEvent::Dropped { src, dst, k },
    }
}

fn event_vec(rng: &mut StdRng, max: usize) -> Vec<TraceEvent> {
    let len = rng.gen_range(0..=max);
    (0..len).map(|_| arb_event(rng)).collect()
}

fn arb_kind(rng: &mut StdRng) -> SchedulerKind {
    match rng.gen_range(0..6) {
        0 => SchedulerKind::Random,
        1 => SchedulerKind::Fifo,
        2 => SchedulerKind::Lifo,
        3 => {
            let len = rng.gen_range(0..4usize);
            SchedulerKind::TargetedDelay((0..len).map(|_| rng.gen_range(0..8usize)).collect())
        }
        4 => {
            let len = rng.gen_range(0..4usize);
            SchedulerKind::Partition {
                group: (0..len).map(|_| rng.gen_range(0..8usize)).collect(),
                heal_after: rng.gen_range(0..500u64),
            }
        }
        _ => SchedulerKind::Replay(ReplayScript::new(event_vec(rng, 6))),
    }
}

fn arb_plan_kind(rng: &mut StdRng) -> PlanKind {
    match rng.gen_range(0..3) {
        0 => PlanKind::CheapTalk,
        1 => PlanKind::Mediator,
        _ => PlanKind::Other,
    }
}

fn arb_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..12usize);
    (0..len)
        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
        .collect()
}

fn arb_header(rng: &mut StdRng) -> RunHeader {
    let meta_len = rng.gen_range(0..4usize);
    RunHeader {
        session: rng.gen(),
        seed: rng.gen(),
        kind: if rng.gen() { Some(arb_kind(rng)) } else { None },
        plan: arb_plan_kind(rng),
        n: rng.gen_range(0..64),
        k: rng.gen_range(0..8),
        t: rng.gen_range(0..8),
        partial: rng.gen(),
        networked: rng.gen(),
        meta: (0..meta_len)
            .map(|_| (arb_string(rng), arb_string(rng)))
            .collect(),
    }
}

fn arb_termination(rng: &mut StdRng) -> TerminationKind {
    match rng.gen_range(0..3) {
        0 => TerminationKind::Quiescent,
        1 => TerminationKind::Deadlock,
        _ => TerminationKind::BudgetExhausted,
    }
}

fn arb_outcome_record(rng: &mut StdRng) -> OutcomeRecord {
    let n = rng.gen_range(1..8usize);
    OutcomeRecord {
        moves: (0..n)
            .map(|_| if rng.gen() { Some(rng.gen()) } else { None })
            .collect(),
        wills: (0..n)
            .map(|_| if rng.gen() { Some(rng.gen()) } else { None })
            .collect(),
        halted: (0..n).map(|_| rng.gen()).collect(),
        messages_sent: rng.gen_range(0..10_000),
        messages_delivered: rng.gen_range(0..10_000),
        steps: rng.gen_range(0..20_000),
        termination: arb_termination(rng),
        event_count: rng.gen_range(0..20_000),
    }
}

/// Wraps a generator function as a shim `Strategy`.
struct Gen<T>(fn(&mut StdRng) -> T);

impl<T> Strategy for Gen<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

fn roundtrip<T: StoreCodec + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = value.to_bytes();
    let back = T::from_bytes(&bytes).expect("round trip decodes");
    assert_eq!(&back, value);
}

proptest! {
    #[test]
    fn trace_events_round_trip(e in Gen(arb_event)) {
        roundtrip(&e);
    }

    #[test]
    fn scheduler_kinds_round_trip(kind in Gen(arb_kind)) {
        // `SchedulerKind` has no `Debug`-independent equality quirk: the
        // Replay variant compares by script contents.
        let bytes = kind.to_bytes();
        let back = SchedulerKind::from_bytes(&bytes).expect("round trip decodes");
        prop_assert_eq!(back, kind);
    }

    #[test]
    fn run_headers_round_trip(h in Gen(arb_header)) {
        roundtrip(&h);
    }

    #[test]
    fn outcome_records_round_trip(o in Gen(arb_outcome_record)) {
        roundtrip(&o);
    }

    #[test]
    fn truncated_headers_error_not_panic(h in Gen(arb_header)) {
        // Every strict prefix of a valid encoding must decode to a typed
        // error — truncation can never panic or succeed (tags and lengths
        // lead every field).
        let bytes = h.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(RunHeader::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn framed_records_survive_a_scan(h in Gen(arb_header), o in Gen(arb_outcome_record)) {
        let mut buf = Vec::new();
        put_preamble(&mut buf);
        put_record(&mut buf, RecordKind::Header, &h.to_bytes());
        put_record(&mut buf, RecordKind::Outcome, &o.to_bytes());
        let records = scan(&buf).expect("well-formed log scans");
        prop_assert_eq!(records.len(), 2);
        let payload = |i: usize| {
            let r = records[i];
            &buf[r.payload_offset as usize..r.payload_offset as usize + r.payload_len]
        };
        prop_assert_eq!(RunHeader::from_bytes(payload(0)).expect("header decodes"), h);
        prop_assert_eq!(OutcomeRecord::from_bytes(payload(1)).expect("outcome decodes"), o);
    }

    #[test]
    fn any_single_bit_flip_in_a_record_is_caught(h in Gen(arb_header), byte in Gen(|rng: &mut StdRng| rng.gen::<u64>())) {
        // Flip one bit anywhere in the record *body* (past the frame): the
        // scan must fail — BadCrc for a payload flip; a flip in the frame
        // itself surfaces as whatever the damaged length implies, but
        // never a silent success with different bytes.
        let mut buf = Vec::new();
        put_preamble(&mut buf);
        put_record(&mut buf, RecordKind::Header, &h.to_bytes());
        let body_start = PREAMBLE_LEN as usize + FRAME_LEN;
        let i = body_start + (byte as usize % (buf.len() - body_start));
        let bit = 1u8 << (byte % 8);
        buf[i] ^= bit;
        prop_assert_eq!(
            scan(&buf),
            Err(StoreError::BadCrc { offset: PREAMBLE_LEN })
        );
    }

    #[test]
    fn torn_final_record_is_typed_at_its_offset(h in Gen(arb_header), o in Gen(arb_outcome_record), cut in Gen(|rng: &mut StdRng| rng.gen::<u64>())) {
        // A complete run followed by an interrupted append: the scan must
        // report a TornTail at the torn record's frame offset, whatever
        // prefix of it made it to the log.
        let mut buf = Vec::new();
        put_preamble(&mut buf);
        put_record(&mut buf, RecordKind::Header, &h.to_bytes());
        put_record(&mut buf, RecordKind::Outcome, &o.to_bytes());
        let tear_at = buf.len() as u64;
        put_record(&mut buf, RecordKind::Header, &h.to_bytes());
        let keep = tear_at as usize + 1 + (cut as usize % (buf.len() - tear_at as usize - 1));
        buf.truncate(keep);
        prop_assert_eq!(scan(&buf), Err(StoreError::TornTail { offset: tear_at }));
    }
}

// ---------------------------------------------------------------------------
// Deterministic malformed-input edge cases
// ---------------------------------------------------------------------------

#[test]
fn unknown_tags_are_typed_per_type() {
    assert_eq!(
        TraceEvent::from_bytes(&[9]),
        Err(StoreError::UnknownTag {
            what: "TraceEvent",
            tag: 9
        })
    );
    assert_eq!(
        SchedulerKind::from_bytes(&[6]),
        Err(StoreError::UnknownTag {
            what: "SchedulerKind",
            tag: 6
        })
    );
    assert_eq!(
        PlanKind::from_bytes(&[3]),
        Err(StoreError::UnknownTag {
            what: "PlanKind",
            tag: 3
        })
    );
    assert_eq!(
        TerminationKind::from_bytes(&[7]),
        Err(StoreError::UnknownTag {
            what: "TerminationKind",
            tag: 7
        })
    );
}

#[test]
fn unknown_record_kind_fails_the_scan() {
    let mut buf = Vec::new();
    put_preamble(&mut buf);
    // A structurally valid frame around an unknown kind byte: length and
    // CRC check out, so the failure must be the tag, not the framing.
    let body = [9u8, 1, 2, 3];
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&body).to_le_bytes());
    buf.extend_from_slice(&body);
    assert_eq!(
        scan(&buf),
        Err(StoreError::UnknownTag {
            what: "RecordKind",
            tag: 9
        })
    );
}

#[test]
fn zero_length_record_is_a_torn_tail_not_a_loop() {
    let mut buf = Vec::new();
    put_preamble(&mut buf);
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(
        scan(&buf),
        Err(StoreError::TornTail {
            offset: PREAMBLE_LEN
        })
    );
}

#[test]
fn trailing_garbage_after_a_value_is_rejected() {
    let mut bytes = PlanKind::CheapTalk.to_bytes();
    bytes.push(0xAB);
    assert_eq!(
        PlanKind::from_bytes(&bytes),
        Err(StoreError::TrailingBytes { extra: 1 })
    );
}

#[test]
fn overlong_varint_is_rejected() {
    // Eleven continuation bytes: no u64 needs more than ten.
    let mut buf = vec![0x80u8; 10];
    buf.push(0x00);
    let mut r = Reader::new(&buf);
    assert_eq!(r.varint(), Err(StoreError::VarintOverflow));
    // The strict tenth byte: anything above 0x01 loses bits.
    let mut buf = vec![0x80u8; 9];
    buf.push(0x02);
    let mut r = Reader::new(&buf);
    assert_eq!(r.varint(), Err(StoreError::VarintOverflow));
}

#[test]
fn varint_encodings_are_canonical_under_round_trip() {
    let mut rng: StdRng = rand::SeedableRng::seed_from_u64(7);
    for _ in 0..256 {
        let v: u64 = rng.gen();
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut r = Reader::new(&buf);
        assert_eq!(r.varint(), Ok(v));
        r.finish().unwrap();
    }
}
