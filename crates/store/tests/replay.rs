//! Replay determinism, end to end: record a run into the store, re-open
//! it from bytes, and drive it again — the re-recorded trace must be
//! byte-identical and the outcome must match field for field.
//!
//! Two recording planes are covered. **In-process** runs replay through
//! the `Replay` scheduler (`replay_plan` with `networked: false`).
//! **Networked** runs — recorded through [`StoreSink`] wired into the
//! service via [`ServiceConfig::with_sink`] — replay *without a
//! transport*: the stored script disambiguates injections from emissions
//! at step boundaries (DESIGN.md §11), so the same session logic re-runs
//! in-process and must land on the same bytes. Both service drivers
//! (reactor and thread-per-session) and both transports (in-memory hub
//! and TCP loopback) feed the same assertion.

use std::sync::Arc;

use mediator_circuits::catalog;
use mediator_core::cheap_talk::CtMsg;
use mediator_core::scenario::{CheapTalkPlan, MediatorPlan, Scenario, SessionPlan};
use mediator_field::Fp;
use mediator_net::{
    Client, DeliveryOrder, MemTransport, RunMeta, Service, ServiceConfig, TcpTransport, TraceSink,
};
use mediator_sim::{Ctx, Process, ProcessId, SchedulerKind, TerminationKind, TraceMode, World};
use mediator_store::{
    replay_plan, stored_script, HeaderTemplate, PlanKind, ReplayError, StoreSink, StoredRun,
    TraceStore,
};
use std::time::Duration;

fn majority_plan(n: usize) -> CheapTalkPlan {
    Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ONE]; n])
        .build()
        .expect("n = 5 > 4k+4t = 4")
}

fn mediator_plan(n: usize) -> MediatorPlan {
    Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs((0..n).map(|i| vec![Fp::new((i % 2) as u64)]).collect())
        .build()
        .expect("tolerance fine")
}

fn template(plan: PlanKind, n: usize, networked: bool) -> HeaderTemplate {
    HeaderTemplate {
        plan: Some(plan),
        n: n as u64,
        k: 1,
        t: 0,
        networked,
        ..HeaderTemplate::default()
    }
}

// ---------------------------------------------------------------------------
// In-process: record through the sink, replay through the Replay scheduler
// ---------------------------------------------------------------------------

/// Records one in-process cell through [`StoreSink`] and returns the
/// stored run — the same round trip a conformance sweep performs.
fn record_in_process<P: SessionPlan>(
    plan: &P,
    plan_kind: PlanKind,
    kind: SchedulerKind,
    seed: u64,
) -> StoredRun {
    let sink = StoreSink::with_template(
        TraceStore::in_memory(),
        template(plan_kind, plan.processes(), false),
    );
    let outcome = plan.open_session(&kind, seed).finish();
    sink.record(&RunMeta::cell(0, kind.clone(), seed), &outcome);
    assert!(sink.take_error().is_none(), "sink append failed");
    let store = sink.into_store();
    let id = store.find_cell(0, seed, &kind).expect("cell indexed");
    store.load(id).expect("stored run loads")
}

#[test]
fn cheap_talk_replays_byte_identically_in_process() {
    let plan = majority_plan(5);
    for (kind, seed) in [
        (SchedulerKind::Random, 3u64),
        (SchedulerKind::Fifo, 0),
        (SchedulerKind::Lifo, 1),
    ] {
        let run = record_in_process(&plan, PlanKind::CheapTalk, kind.clone(), seed);
        assert_eq!(run.header.plan, PlanKind::CheapTalk);
        assert!(!run.header.networked);
        let report = replay_plan(&plan, &run)
            .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: replay diverged: {e:?}"));
        assert_eq!(report.events as u64, run.outcome.event_count);
        assert_eq!(report.termination, run.outcome.termination);
    }
}

#[test]
fn mediator_game_replays_byte_identically_in_process() {
    let plan = mediator_plan(5);
    let run = record_in_process(&plan, PlanKind::Mediator, SchedulerKind::Random, 7);
    assert_eq!(run.header.plan, PlanKind::Mediator);
    let report = replay_plan(&plan, &run).expect("mediator replay diverged");
    assert_eq!(report.termination, run.outcome.termination);
}

#[test]
fn replaying_against_the_wrong_plan_is_a_typed_error_not_a_silent_pass() {
    // Record a 5-player all-ones majority run, replay it against the
    // same circuit with all-zero inputs. The protocol is content-blind,
    // so the traffic *pattern* replays — but the outcome the session
    // reaches differs from the stored record, and the check must say so.
    let run = record_in_process(
        &majority_plan(5),
        PlanKind::CheapTalk,
        SchedulerKind::Fifo,
        0,
    );
    let other = Scenario::cheap_talk(catalog::majority_circuit(5))
        .players(5)
        .tolerance(1, 0)
        .inputs(vec![vec![Fp::ZERO]; 5])
        .build()
        .expect("same shape, different inputs");
    assert!(
        replay_plan(&other, &run).is_err(),
        "a foreign plan cannot reproduce the recorded outcome"
    );
}

// ---------------------------------------------------------------------------
// Networked differential: both drivers, both transports, no transport on replay
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum DriverKind {
    Reactor,
    Threaded,
}

fn recording_cfg(sink: Arc<dyn TraceSink>) -> ServiceConfig {
    ServiceConfig {
        idle_timeout: Duration::from_secs(5),
        attach_timeout: Duration::from_millis(400),
        attach_grace: Duration::from_millis(100),
        delivery: DeliveryOrder::Arrival,
        ..ServiceConfig::default()
    }
    .with_sink(sink)
}

/// Hosts one cheap-talk cell on a live service with a [`StoreSink`]
/// attached, waits for the outcome, and returns the stored run alongside
/// what the service reported — the two views the replay must reconcile.
fn record_networked_mem(
    plan: &CheapTalkPlan,
    driver: DriverKind,
    kind: SchedulerKind,
    seed: u64,
) -> (StoredRun, mediator_sim::Outcome) {
    let n = plan.processes();
    let sink = Arc::new(StoreSink::with_template(
        TraceStore::in_memory(),
        template(PlanKind::CheapTalk, n, true),
    ));
    let hub = MemTransport::new();
    let service = Service::with_config(Box::new(hub.listener()), recording_cfg(sink.clone()));
    const SID: u64 = 42;
    let handle = match driver {
        DriverKind::Reactor => service.host_plan(SID, plan, kind.clone(), seed),
        DriverKind::Threaded => service.host_plan_threaded(SID, plan, kind.clone(), seed),
    };
    let relays: Vec<_> = (0..n)
        .map(|player| {
            let mut client = Client::<CtMsg>::mem(&hub);
            std::thread::spawn(move || {
                client.attach(SID, player).expect("attach");
                client.relay().expect("relay")
            })
        })
        .collect();
    let outcome = handle.outcome().expect("networked run completes");
    for relay in relays {
        relay.join().expect("relay thread");
    }
    service.shutdown();

    assert!(sink.take_error().is_none(), "sink append failed");
    let run = sink
        .with_store(|store| {
            let id = store
                .find_cell(SID, seed, &kind)
                .expect("recorded cell indexed by (session, seed, kind)");
            store.load(id)
        })
        .expect("stored run loads");
    (run, outcome)
}

#[test]
fn networked_recordings_replay_without_a_transport_on_both_drivers() {
    let plan = majority_plan(5);
    for driver in [DriverKind::Reactor, DriverKind::Threaded] {
        let (run, outcome) = record_networked_mem(&plan, driver, SchedulerKind::Fifo, 0);
        assert!(run.header.networked, "{driver:?}: template stamped");
        assert_eq!(run.header.n, 5);
        // The stored script is exactly what the live session traced.
        assert_eq!(
            run.events,
            outcome.trace.events(),
            "{driver:?}: stored body matches the live trace"
        );
        // Replay re-runs the session in-process — no hub, no sockets —
        // and must land on the same bytes and the same verdict.
        let report = replay_plan(&plan, &run)
            .unwrap_or_else(|e| panic!("{driver:?}: networked replay diverged: {e:?}"));
        assert_eq!(report.termination, outcome.termination);
        assert_eq!(report.events as u64, run.outcome.event_count);
    }
}

#[test]
fn drivers_record_identical_cells() {
    // Same plan, same (kind, seed) cell, different driver: the service's
    // delivery order is part of the recorded trace, so the two stored
    // runs need not be byte-equal — but each must replay against itself,
    // and both must report the same termination kind.
    let plan = majority_plan(5);
    let (reactor, r_out) =
        record_networked_mem(&plan, DriverKind::Reactor, SchedulerKind::Random, 1);
    let (threaded, t_out) =
        record_networked_mem(&plan, DriverKind::Threaded, SchedulerKind::Random, 1);
    assert_eq!(r_out.termination, t_out.termination);
    assert_eq!(reactor.outcome.termination, threaded.outcome.termination);
    replay_plan(&plan, &reactor).expect("reactor recording replays");
    replay_plan(&plan, &threaded).expect("threaded recording replays");
}

#[test]
fn tcp_recordings_replay_without_a_transport() {
    let n = 5;
    let plan = majority_plan(n);
    let sink = Arc::new(StoreSink::with_template(
        TraceStore::in_memory(),
        template(PlanKind::CheapTalk, n, true),
    ));
    let transport = TcpTransport::bind_loopback().expect("bind");
    let addr = transport.addr();
    let service = Service::with_config(Box::new(transport), recording_cfg(sink.clone()));
    const SID: u64 = 7;
    let handle = service.host_plan(SID, &plan, SchedulerKind::Fifo, 0);
    let relays: Vec<_> = (0..n)
        .map(|player| {
            std::thread::spawn(move || {
                let mut client = Client::<CtMsg>::tcp(addr).expect("connect");
                client.attach(SID, player).expect("attach");
                client.relay().expect("relay")
            })
        })
        .collect();
    let outcome = handle.outcome().expect("tcp run completes");
    for relay in relays {
        relay.join().expect("relay thread");
    }
    service.shutdown();

    assert!(sink.take_error().is_none());
    let run = sink
        .with_store(|store| {
            let id = store
                .find_cell(SID, 0, &SchedulerKind::Fifo)
                .expect("indexed");
            store.load(id)
        })
        .expect("stored run loads");
    assert_eq!(run.events, outcome.trace.events());
    let report = replay_plan(&plan, &run).expect("tcp recording replays in-process");
    assert_eq!(report.termination, outcome.termination);
    assert_eq!(report.termination, TerminationKind::Quiescent);
}

#[test]
fn mediator_game_records_and_replays_over_the_wire() {
    // The mediator itself (process n) holds a relay too; its STOP batch
    // crosses the wire and must come back out of the stored script.
    let n = 5;
    let plan = mediator_plan(n);
    let processes = plan.processes();
    let sink = Arc::new(StoreSink::with_template(
        TraceStore::in_memory(),
        template(PlanKind::Mediator, processes, true),
    ));
    let hub = MemTransport::new();
    let service = Service::with_config(Box::new(hub.listener()), recording_cfg(sink.clone()));
    const SID: u64 = 9;
    let handle = service.host_plan(SID, &plan, SchedulerKind::Random, 2);
    let relays: Vec<_> = (0..processes)
        .map(|player| {
            let mut client = Client::<mediator_core::MedMsg>::mem(&hub);
            std::thread::spawn(move || {
                client.attach(SID, player).expect("attach");
                client.relay().expect("relay")
            })
        })
        .collect();
    let outcome = handle.outcome().expect("mediator run completes");
    for relay in relays {
        relay.join().expect("relay thread");
    }
    service.shutdown();

    assert!(sink.take_error().is_none());
    let run = sink
        .with_store(|store| {
            let id = store
                .find_cell(SID, 2, &SchedulerKind::Random)
                .expect("indexed");
            store.load(id)
        })
        .expect("stored run loads");
    assert_eq!(run.header.plan, PlanKind::Mediator);
    let report = replay_plan(&plan, &run).expect("mediator recording replays");
    assert_eq!(report.termination, outcome.termination);
}

// ---------------------------------------------------------------------------
// Refusals: partial traces and evicted bodies stay typed
// ---------------------------------------------------------------------------

#[test]
fn ring_mode_recordings_are_marked_partial_and_refuse_replay() {
    // A ring-buffered trace wraps: the sink stamps the run partial at
    // record time, and `replay_plan` refuses it before opening a session.
    struct Chatter {
        n: usize,
    }
    impl Process<u64> for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            let me = ctx.me();
            for dst in 0..self.n {
                if dst != me {
                    ctx.send(dst, me as u64);
                }
            }
        }
        fn on_message(&mut self, _src: ProcessId, msg: u64, ctx: &mut Ctx<u64>) {
            ctx.make_move(msg);
        }
    }
    let n = 5;
    let procs: Vec<Box<dyn Process<u64>>> = (0..n)
        .map(|_| Box::new(Chatter { n }) as Box<dyn Process<u64>>)
        .collect();
    let mut world = World::new(procs, 0);
    world.set_trace_mode(TraceMode::Ring(2));
    let outcome = world.run(SchedulerKind::Fifo.build().as_mut(), 10_000);
    assert!(outcome.trace.wrapped() > 0, "ring small enough to wrap");

    let sink = StoreSink::with_template(
        TraceStore::in_memory(),
        template(PlanKind::CheapTalk, n, false),
    );
    sink.record(&RunMeta::cell(0, SchedulerKind::Fifo, 0), &outcome);
    assert!(sink.take_error().is_none());
    let store = sink.into_store();
    let run = store.load(0).expect("partial run still loads");
    assert!(run.header.partial, "wrapped trace stored as partial");
    assert!(matches!(
        stored_script(&run),
        Err(ReplayError::PartialTrace)
    ));
    assert!(matches!(
        replay_plan(&majority_plan(n), &run),
        Err(ReplayError::PartialTrace)
    ));
}
