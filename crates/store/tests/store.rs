//! Bounded retention at sweep scale: the acceptance criterion of the
//! store subsystem. A 64-session conformance-style sweep is recorded in
//! full, the log is compacted under a byte cap, and every header and
//! outcome must survive — the index of who ran, under which seed, to
//! which verdict is never sacrificed; only event *bodies* are evicted,
//! oldest first, and an evicted run is typed when replay asks for it.

use mediator_sim::{Ctx, Process, ProcessId, SchedulerKind, World};
use mediator_store::{stored_script, ReplayError, StoreError, TraceStore};

const SESSIONS: u64 = 64;

/// A small deterministic world with enough traffic that event bodies
/// dominate the log: every process greets every other, replies to each
/// greeting, and moves on its first reply.
struct Gossip {
    n: usize,
    done: bool,
}

impl Process<u64> for Gossip {
    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        let me = ctx.me();
        for dst in 0..self.n {
            if dst != me {
                ctx.send(dst, me as u64);
            }
        }
    }
    fn on_message(&mut self, src: ProcessId, msg: u64, ctx: &mut Ctx<u64>) {
        if msg < self.n as u64 {
            ctx.send(src, self.n as u64 + msg);
        } else if !self.done {
            self.done = true;
            ctx.make_move(msg);
        }
    }
}

fn run_gossip(n: usize, seed: u64) -> mediator_sim::Outcome {
    let procs: Vec<Box<dyn Process<u64>>> = (0..n)
        .map(|_| Box::new(Gossip { n, done: false }) as Box<dyn Process<u64>>)
        .collect();
    World::new(procs, seed).run(SchedulerKind::Random.build().as_mut(), 100_000)
}

fn sweep_store() -> (TraceStore, Vec<mediator_sim::Outcome>) {
    let mut store = TraceStore::in_memory();
    let mut outcomes = Vec::new();
    for session in 0..SESSIONS {
        let outcome = run_gossip(6, session);
        let mut header = mediator_store::RunHeader::bare(session, session);
        header.kind = Some(SchedulerKind::Random);
        store.record(header, &outcome).expect("record");
        outcomes.push(outcome);
    }
    (store, outcomes)
}

#[test]
fn sixty_four_session_sweep_survives_a_byte_cap() {
    let (mut store, outcomes) = sweep_store();
    assert_eq!(store.len() as u64, SESSIONS);
    let before = store.bytes();

    // Cap the log at a quarter of its natural size.
    let budget = before / 4;
    let evicted = store.compact(budget).expect("compaction");
    assert!(evicted > 0, "a quartered budget must evict bodies");
    assert!(
        store.bytes() <= budget,
        "log fits the cap ({} > {budget})",
        store.bytes()
    );

    // The index is intact: every session's header and outcome survive,
    // with the exact verdict the run produced.
    assert_eq!(store.len() as u64, SESSIONS, "no run was dropped");
    for session in 0..SESSIONS {
        let id = store
            .find(session, session)
            .unwrap_or_else(|| panic!("session {session} lost its header"));
        let header = store.header(id);
        assert_eq!(header.kind, Some(SchedulerKind::Random));
        let stored = store.outcome(id);
        let original = &outcomes[session as usize];
        assert_eq!(stored.termination, original.termination);
        assert_eq!(stored.moves, original.moves);
        assert_eq!(stored.steps, original.steps);
        assert_eq!(
            stored.event_count,
            original.trace.events().len() as u64,
            "the recorded event count survives even when the body does not"
        );
    }

    // Eviction is oldest-first: the evicted prefix is contiguous.
    let first_kept = store
        .ids()
        .position(|id| !store.evicted(id))
        .unwrap_or(SESSIONS as usize);
    for id in store.ids() {
        assert_eq!(
            store.evicted(id),
            id < first_kept,
            "run {id}: eviction must be a contiguous oldest-first prefix"
        );
    }
    assert!(first_kept > 0, "something was evicted");
    assert!(
        (first_kept as u64) < SESSIONS,
        "a quarter budget keeps the newest bodies"
    );

    // Evicted runs refuse replay with the typed error; surviving runs
    // still hand back their full script.
    let old = store.load(0).expect("evicted run still loads");
    assert!(matches!(
        stored_script(&old),
        Err(ReplayError::Evicted { have: 0, .. })
    ));
    let fresh_id = store.len() - 1;
    let fresh = store.load(fresh_id).expect("fresh run loads");
    let script = stored_script(&fresh).expect("surviving body replays");
    assert_eq!(
        script.events(),
        outcomes[fresh_id].trace.events(),
        "the surviving body is byte-identical to the recording"
    );
}

#[test]
fn compaction_is_idempotent_and_monotone() {
    let (mut store, _) = sweep_store();
    let budget = store.bytes() / 4;
    store.compact(budget).expect("first compaction");
    let after_first = store.bytes();
    let evicted_again = store.compact(budget).expect("second compaction");
    assert_eq!(evicted_again, 0, "a fitting log evicts nothing");
    assert_eq!(store.bytes(), after_first, "no rewrite when nothing evicts");

    // A tighter cap evicts more but can never drop below the index floor.
    store.compact(0).expect("evict every body");
    for id in store.ids().collect::<Vec<_>>() {
        assert!(store.evicted(id) || store.outcome(id).event_count == 0);
    }
    assert_eq!(store.len() as u64, SESSIONS);
}

#[test]
fn capped_file_store_reopens_with_its_index_intact() {
    let dir = std::env::temp_dir().join(format!("mediator-store-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.mtrc");
    {
        let mut store = TraceStore::create(&path).expect("create");
        for session in 0..SESSIONS {
            let mut header = mediator_store::RunHeader::bare(session, session);
            header.kind = Some(SchedulerKind::Random);
            store
                .record(header, &run_gossip(5, session))
                .expect("record");
        }
        let budget = store.bytes() / 4;
        store.compact(budget).expect("compact");
    }
    let store = TraceStore::open(&path).expect("reopen after compaction");
    assert_eq!(store.len() as u64, SESSIONS);
    for session in 0..SESSIONS {
        assert!(store.find(session, session).is_some());
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn zero_budget_never_loses_a_verdict() {
    let (mut store, outcomes) = sweep_store();
    store.compact(0).expect("evict everything");
    for session in 0..SESSIONS {
        let id = store.find(session, session).expect("indexed");
        assert_eq!(
            store.outcome(id).termination,
            outcomes[session as usize].termination
        );
        match stored_script(&store.load(id).expect("loads")) {
            Err(ReplayError::Evicted { have: 0, want }) => {
                assert_eq!(want, outcomes[session as usize].trace.events().len() as u64);
            }
            other => panic!("expected Evicted, got {other:?}"),
        }
    }
    // And the emptied-out log still scans clean: no torn state.
    let err_free: Result<Vec<_>, StoreError> = store.events(0).collect();
    assert_eq!(err_free.unwrap(), Vec::new());
}
