//! The append-only trace store: runs in, indexed runs out, bounded
//! retention via oldest-first body eviction.
//!
//! A [`TraceStore`] sits on a [`Backend`] — a byte log with append,
//! positional read, and whole-log rewrite. [`MemBackend`] keeps the log in
//! a `Vec<u8>` (tests, ephemeral capture); [`FileBackend`] persists it via
//! `std::fs` with an atomic rename on rewrite, so a crash mid-compaction
//! leaves either the old log or the new one, never a hybrid.
//!
//! Each recorded run is written as one append — header record, events
//! chunks, outcome record — so the only crash signature a reader can meet
//! is a torn *tail*, which [`TraceStore::open`] reports as the typed
//! [`StoreError::TornTail`]. Retention ([`TraceStore::compact`]) evicts
//! the *event bodies* of the oldest runs until the log fits a byte
//! budget; headers and outcomes survive unconditionally, so the index —
//! who ran, under what seed, to what verdict — is never lost, and an
//! evicted run is distinguishable from an empty one by its outcome's
//! retained event count.

use crate::codec::{OutcomeRecord, Reader, RunHeader, StoreCodec, StoreError};
use crate::format::{self, decode_events_chunk, encode_events_chunk, put_record, scan, RecordKind};
use mediator_sim::{Outcome, SchedulerKind, TraceEvent};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Events per chunk record: big enough to amortise framing (9 bytes per
/// record), small enough that streaming iteration touches one chunk at a
/// time.
pub const EVENTS_PER_CHUNK: usize = 1024;

/// Where a [`TraceStore`] keeps its bytes.
pub trait Backend: Send {
    /// Current log length in bytes.
    fn len(&self) -> u64;

    /// `true` when the log holds no bytes at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `bytes` at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Reads exactly `len` bytes starting at `offset`.
    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, StoreError>;

    /// Replaces the whole log with `bytes` (compaction). Must be atomic
    /// with respect to crashes where the medium allows it.
    fn rewrite(&mut self, bytes: &[u8]) -> Result<(), StoreError>;
}

/// An in-memory byte log.
#[derive(Debug, Default)]
pub struct MemBackend {
    buf: Vec<u8>,
}

impl MemBackend {
    /// An empty in-memory log.
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// A log pre-seeded with `bytes` (reopen-after-crash tests).
    pub fn from_bytes(buf: Vec<u8>) -> Self {
        MemBackend { buf }
    }
}

impl Backend for MemBackend {
    fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        let start = offset as usize;
        let end = start.checked_add(len).ok_or(StoreError::Truncated)?;
        self.buf
            .get(start..end)
            .map(<[u8]>::to_vec)
            .ok_or(StoreError::Truncated)
    }

    fn rewrite(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.buf = bytes.to_vec();
        Ok(())
    }
}

/// A `std::fs`-backed byte log. Reads share the handle behind a mutex
/// (seek + read under the lock), appends go through the same handle at
/// the tracked tail, and rewrite writes a `.compact` sibling then renames
/// it over the log — the close-to-atomic replacement `std::fs` offers.
#[derive(Debug)]
pub struct FileBackend {
    file: Mutex<File>,
    path: PathBuf,
    len: u64,
}

impl FileBackend {
    /// Creates (truncating) a fresh log at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileBackend {
            file: Mutex::new(file),
            path,
            len: 0,
        })
    }

    /// Opens the existing log at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend {
            file: Mutex::new(file),
            path,
            len,
        })
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Backend for FileBackend {
    fn len(&self) -> u64 {
        self.len
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let mut file = self.file.lock().expect("file poisoned");
        file.seek(SeekFrom::Start(self.len))?;
        file.write_all(bytes)?;
        file.flush()?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        let mut file = self.file.lock().expect("file poisoned");
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn rewrite(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.path.with_extension("compact");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(bytes)?;
            out.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file = Mutex::new(file);
        self.len = bytes.len() as u64;
        Ok(())
    }
}

/// Index handle for a stored run (position in file order).
pub type RunId = usize;

/// One indexed run: its decoded header and outcome (always in memory —
/// they survive compaction) plus the location of its event chunks on the
/// backend (possibly evicted).
/// `(payload_offset, payload_len, events_in_chunk)` for one retained chunk.
type ChunkSpan = (u64, usize, u64);

#[derive(Debug)]
struct RunEntry {
    header: RunHeader,
    outcome: OutcomeRecord,
    chunks: Vec<ChunkSpan>,
}

impl RunEntry {
    fn retained_events(&self) -> u64 {
        self.chunks.iter().map(|&(_, _, c)| c).sum()
    }
}

/// Everything a replayer needs from one stored run, fully materialised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRun {
    /// The run header.
    pub header: RunHeader,
    /// The retained trace events (complete iff `!evicted` and
    /// `!header.partial`).
    pub events: Vec<TraceEvent>,
    /// The stored final verdict.
    pub outcome: OutcomeRecord,
    /// `true` when retention evicted some or all of the event body.
    pub evicted: bool,
}

/// The append-only run log. See the module docs for the retention and
/// crash-safety contract.
pub struct TraceStore {
    backend: Box<dyn Backend>,
    runs: Vec<RunEntry>,
}

impl TraceStore {
    /// A fresh store over an in-memory backend.
    pub fn in_memory() -> Self {
        TraceStore::with_backend(Box::new(MemBackend::new())).expect("empty mem store is valid")
    }

    /// Creates a fresh file-backed store at `path` (truncating).
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        TraceStore::with_backend(Box::new(FileBackend::create(path)?))
    }

    /// Opens the existing store at `path`, scanning and CRC-checking every
    /// record to rebuild the index. A torn tail or corrupt record surfaces
    /// as its typed error.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        TraceStore::with_backend(Box::new(FileBackend::open(path)?))
    }

    /// Wraps an arbitrary backend, writing the preamble if the log is
    /// empty and indexing it otherwise.
    pub fn with_backend(mut backend: Box<dyn Backend>) -> Result<Self, StoreError> {
        if backend.is_empty() {
            let mut preamble = Vec::new();
            format::put_preamble(&mut preamble);
            backend.append(&preamble)?;
            return Ok(TraceStore {
                backend,
                runs: Vec::new(),
            });
        }
        let bytes = backend.read(0, backend.len() as usize)?;
        let runs = index_records(&bytes)?;
        Ok(TraceStore { backend, runs })
    }

    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when no runs are stored.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.backend.len()
    }

    /// Records one finished run: header, event chunks, outcome — written
    /// as a single append so a crash can only tear the log's tail, never
    /// interleave half a run with the next. The header's `partial` flag is
    /// derived from the trace itself (a ring-mode capture that wrapped is
    /// stored, but marked — replay will refuse it).
    pub fn record(
        &mut self,
        mut header: RunHeader,
        outcome: &Outcome,
    ) -> Result<RunId, StoreError> {
        header.partial = outcome.trace.wrapped() > 0;
        let events = outcome.trace.events();
        let mut buf = Vec::new();
        put_record(&mut buf, RecordKind::Header, &header.to_bytes());
        for chunk in events.chunks(EVENTS_PER_CHUNK.max(1)) {
            put_record(
                &mut buf,
                RecordKind::EventsChunk,
                &encode_events_chunk(chunk),
            );
        }
        let record = OutcomeRecord::capture(outcome);
        put_record(&mut buf, RecordKind::Outcome, &record.to_bytes());

        // Chunk payload offsets are relative to the append position.
        let base = self.backend.len();
        self.backend.append(&buf)?;
        let appended = scan_appended(&buf, base)?;
        self.runs.push(RunEntry {
            header,
            outcome: record,
            chunks: appended,
        });
        Ok(self.runs.len() - 1)
    }

    /// The header of run `id`.
    pub fn header(&self, id: RunId) -> &RunHeader {
        &self.runs[id].header
    }

    /// The stored outcome of run `id`.
    pub fn outcome(&self, id: RunId) -> &OutcomeRecord {
        &self.runs[id].outcome
    }

    /// `true` when retention evicted part of run `id`'s event body.
    pub fn evicted(&self, id: RunId) -> bool {
        self.runs[id].retained_events() < self.runs[id].outcome.event_count
    }

    /// All run ids in file (i.e. recording) order.
    pub fn ids(&self) -> impl Iterator<Item = RunId> {
        0..self.runs.len()
    }

    /// The most recently recorded run whose header matches `(session,
    /// seed)`, if any.
    pub fn find(&self, session: u64, seed: u64) -> Option<RunId> {
        (0..self.runs.len())
            .rev()
            .find(|&i| self.runs[i].header.session == session && self.runs[i].header.seed == seed)
    }

    /// The most recent run matching `(session, seed)` recorded under the
    /// given scheduler kind.
    pub fn find_cell(&self, session: u64, seed: u64, kind: &SchedulerKind) -> Option<RunId> {
        (0..self.runs.len()).rev().find(|&i| {
            let h = &self.runs[i].header;
            h.session == session && h.seed == seed && h.kind.as_ref() == Some(kind)
        })
    }

    /// Streams run `id`'s retained events chunk by chunk off the backend
    /// (one chunk resident at a time).
    pub fn events(&self, id: RunId) -> EventsIter<'_> {
        EventsIter {
            store: self,
            chunks: &self.runs[id].chunks,
            next_chunk: 0,
            buffered: Vec::new(),
            buffered_at: 0,
        }
    }

    /// Materialises run `id` for replay.
    pub fn load(&self, id: RunId) -> Result<StoredRun, StoreError> {
        let mut events = Vec::with_capacity(self.runs[id].retained_events() as usize);
        for e in self.events(id) {
            events.push(e?);
        }
        Ok(StoredRun {
            header: self.runs[id].header.clone(),
            events,
            outcome: self.runs[id].outcome.clone(),
            evicted: self.evicted(id),
        })
    }

    /// Bounded retention: while the log exceeds `budget` bytes, evicts the
    /// event bodies of the oldest runs (headers and outcomes are kept
    /// unconditionally), then rewrites the log in one pass. Returns how
    /// many runs lost their bodies. The log may still exceed the budget
    /// if headers + outcomes alone do: the index is never sacrificed.
    pub fn compact(&mut self, budget: u64) -> Result<usize, StoreError> {
        let mut size = self.backend.len();
        let mut evict = vec![false; self.runs.len()];
        let mut evicted = 0usize;
        for (i, run) in self.runs.iter().enumerate() {
            if size <= budget {
                break;
            }
            let body: u64 = run
                .chunks
                .iter()
                .map(|&(_, len, _)| (format::FRAME_LEN + 1 + len) as u64)
                .sum();
            if body > 0 {
                evict[i] = true;
                evicted += 1;
                size -= body;
            }
        }
        if evicted == 0 {
            return Ok(0);
        }
        let mut buf = Vec::new();
        format::put_preamble(&mut buf);
        for (i, run) in self.runs.iter().enumerate() {
            put_record(&mut buf, RecordKind::Header, &run.header.to_bytes());
            if !evict[i] {
                for &(offset, len, _) in &run.chunks {
                    let payload = self.backend.read(offset, len)?;
                    put_record(&mut buf, RecordKind::EventsChunk, &payload);
                }
            }
            put_record(&mut buf, RecordKind::Outcome, &run.outcome.to_bytes());
        }
        self.backend.rewrite(&buf)?;
        self.runs = index_records(&buf)?;
        Ok(evicted)
    }
}

/// Rebuilds the run index from a fully scanned log buffer, enforcing the
/// `Header EventsChunk* Outcome` grammar.
fn index_records(bytes: &[u8]) -> Result<Vec<RunEntry>, StoreError> {
    let records = scan(bytes)?;
    let mut runs: Vec<RunEntry> = Vec::new();
    let mut open: Option<(RunHeader, Vec<ChunkSpan>)> = None;
    for rec in records {
        let payload =
            &bytes[rec.payload_offset as usize..rec.payload_offset as usize + rec.payload_len];
        match rec.kind {
            RecordKind::Header => {
                if open.is_some() {
                    return Err(StoreError::UnexpectedRecord {
                        offset: rec.offset,
                        kind: 0,
                    });
                }
                open = Some((RunHeader::from_bytes(payload)?, Vec::new()));
            }
            RecordKind::EventsChunk => match &mut open {
                Some((_, chunks)) => {
                    let count = chunk_event_count(payload)?;
                    chunks.push((rec.payload_offset, rec.payload_len, count));
                }
                None => {
                    return Err(StoreError::UnexpectedRecord {
                        offset: rec.offset,
                        kind: 1,
                    })
                }
            },
            RecordKind::Outcome => match open.take() {
                Some((header, chunks)) => runs.push(RunEntry {
                    header,
                    outcome: OutcomeRecord::from_bytes(payload)?,
                    chunks,
                }),
                None => {
                    return Err(StoreError::UnexpectedRecord {
                        offset: rec.offset,
                        kind: 2,
                    })
                }
            },
        }
    }
    if open.is_some() {
        // A header without its outcome cannot happen through `record`
        // (one append per run); treat it as a torn tail at EOF.
        return Err(StoreError::TornTail {
            offset: bytes.len() as u64,
        });
    }
    Ok(runs)
}

/// Indexes the chunk locations of a freshly appended run buffer, shifting
/// offsets by the append position.
fn scan_appended(buf: &[u8], base: u64) -> Result<Vec<(u64, usize, u64)>, StoreError> {
    // `buf` has no preamble; prepend offsets manually by walking frames.
    let mut pos = 0usize;
    let mut chunks = Vec::new();
    while pos < buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let body = pos + format::FRAME_LEN;
        if buf[body] == 1 {
            let payload = &buf[body + 1..body + len];
            chunks.push((
                base + (body + 1) as u64,
                len - 1,
                chunk_event_count(payload)?,
            ));
        }
        pos = body + len;
    }
    Ok(chunks)
}

/// Reads just the event count off a chunk payload.
fn chunk_event_count(payload: &[u8]) -> Result<u64, StoreError> {
    Reader::new(payload).varint()
}

/// Streaming iterator over one run's retained events: decodes one chunk
/// at a time from the backend.
pub struct EventsIter<'a> {
    store: &'a TraceStore,
    chunks: &'a [(u64, usize, u64)],
    next_chunk: usize,
    buffered: Vec<TraceEvent>,
    buffered_at: usize,
}

impl Iterator for EventsIter<'_> {
    type Item = Result<TraceEvent, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.buffered_at < self.buffered.len() {
                let e = self.buffered[self.buffered_at];
                self.buffered_at += 1;
                return Some(Ok(e));
            }
            let &(offset, len, _) = self.chunks.get(self.next_chunk)?;
            self.next_chunk += 1;
            let payload = match self.store.backend.read(offset, len) {
                Ok(p) => p,
                Err(e) => return Some(Err(e)),
            };
            match decode_events_chunk(&payload) {
                Ok(events) => {
                    self.buffered = events;
                    self.buffered_at = 0;
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::PlanKind;
    use mediator_sim::{Ctx, Process, ProcessId, SchedulerKind, World};

    /// A tiny deterministic world: p0 broadcasts, everyone echoes once.
    struct Echo {
        n: usize,
    }

    impl Process<u64> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            if ctx.me() == 0 {
                for d in 0..self.n {
                    ctx.send(d, d as u64);
                }
            }
        }
        fn on_message(&mut self, _src: ProcessId, msg: u64, ctx: &mut Ctx<u64>) {
            ctx.make_move(msg);
            ctx.halt();
        }
    }

    fn run_echo(n: usize, seed: u64) -> Outcome {
        let procs: Vec<Box<dyn Process<u64>>> = (0..n)
            .map(|_| Box::new(Echo { n }) as Box<dyn Process<u64>>)
            .collect();
        let mut world = World::new(procs, seed);
        world.run(SchedulerKind::Fifo.build().as_mut(), 10_000)
    }

    fn header(session: u64, seed: u64) -> RunHeader {
        let mut h = RunHeader::bare(session, seed);
        h.kind = Some(SchedulerKind::Fifo);
        h.plan = PlanKind::Other;
        h
    }

    #[test]
    fn record_and_load_round_trip() {
        let mut store = TraceStore::in_memory();
        let outcome = run_echo(3, 5);
        let id = store.record(header(1, 5), &outcome).unwrap();
        let run = store.load(id).unwrap();
        assert_eq!(run.events, outcome.trace.events());
        assert_eq!(run.outcome.steps, outcome.steps);
        assert_eq!(run.outcome.termination, outcome.termination);
        assert!(!run.evicted);
        assert!(!run.header.partial);
    }

    #[test]
    fn find_returns_most_recent_match() {
        let mut store = TraceStore::in_memory();
        let a = store.record(header(1, 5), &run_echo(3, 5)).unwrap();
        let b = store.record(header(1, 5), &run_echo(3, 5)).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.find(1, 5), Some(b));
        assert_eq!(store.find(2, 5), None);
        assert_eq!(store.find_cell(1, 5, &SchedulerKind::Fifo), Some(b));
        assert_eq!(store.find_cell(1, 5, &SchedulerKind::Lifo), None);
    }

    #[test]
    fn compaction_keeps_headers_and_outcomes() {
        let mut store = TraceStore::in_memory();
        for s in 0..8 {
            store.record(header(s, s), &run_echo(4, s)).unwrap();
        }
        let before = store.bytes();
        let evicted = store.compact(before / 2).unwrap();
        assert!(evicted > 0, "a halved budget must evict something");
        assert!(store.bytes() < before);
        assert_eq!(store.len(), 8, "every run survives compaction");
        // Oldest-first: run 0 evicted, and its outcome still readable.
        assert!(store.evicted(0));
        assert_eq!(store.outcome(0).termination, run_echo(4, 0).termination);
        // The newest run's body survives when the budget allows.
        let last = store.len() - 1;
        if !store.evicted(last) {
            let run = store.load(last).unwrap();
            assert_eq!(run.events.len() as u64, run.outcome.event_count);
        }
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("mediator-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtrc");
        let outcome = run_echo(3, 9);
        {
            let mut store = TraceStore::create(&path).unwrap();
            store.record(header(42, 9), &outcome).unwrap();
        }
        let store = TraceStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        let id = store.find(42, 9).expect("run indexed after reopen");
        assert_eq!(store.load(id).unwrap().events, outcome.trace.events());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_file_tail_is_typed_on_open() {
        let dir = std::env::temp_dir().join(format!("mediator-store-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.mtrc");
        {
            let mut store = TraceStore::create(&path).unwrap();
            store.record(header(1, 1), &run_echo(3, 1)).unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        match TraceStore::open(&path) {
            Err(StoreError::TornTail { .. }) => {}
            Err(other) => panic!("expected TornTail, got {other:?}"),
            Ok(_) => panic!("expected TornTail, got a store"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_iteration_matches_load() {
        let mut store = TraceStore::in_memory();
        let outcome = run_echo(5, 2);
        let id = store.record(header(1, 2), &outcome).unwrap();
        let streamed: Result<Vec<_>, _> = store.events(id).collect();
        assert_eq!(streamed.unwrap(), outcome.trace.events());
    }
}
