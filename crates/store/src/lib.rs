//! Persistent trace store and deterministic replay.
//!
//! A run of the simulator is fully determined by `(plan, seed, schedule)`
//! — the paper's §2 model makes the schedule (the content-level message
//! pattern) the *only* free variable once processes and seeds are fixed.
//! This crate makes that fact operational: it persists the schedule and
//! verdict of interesting runs (a §6.4 attack found by the conformance
//! sweep, a networked differential cell) in a compact append-only log,
//! and re-enacts any stored run on demand, asserting the re-recorded
//! trace is byte-identical.
//!
//! Three layers:
//!
//! * [`codec`] + [`mod@format`] — the on-disk grammar: LEB128/tag-byte value
//!   encodings under CRC-framed records (`MTRC` magic, version byte), with
//!   typed [`StoreError`]s for every malformed shape, including the torn
//!   tail an interrupted append leaves.
//! * [`store`] — [`TraceStore`] over a [`Backend`] (in-memory or
//!   `std::fs`), with `(session, seed, kind)` lookup, streaming event
//!   iteration, and bounded retention: [`TraceStore::compact`] evicts the
//!   oldest event bodies but never a header or outcome.
//! * [`replay`] — [`replay_plan`] re-opens the world through the
//!   `Scenario`/`SessionPlan` seam with a [`mediator_sim::ReplayScheduler`]
//!   forcing the recorded dispatch order; networked recordings re-enact
//!   the transport pump in process. [`StoreSink`] plugs the store into
//!   anything emitting [`mediator_sim::TraceSink`] callbacks — notably the
//!   `mediator-net` service drivers and the conformance sweep, which is
//!   what turns a `Violated` witness into a file that
//!   `experiments -- --replay <path>` reproduces in one command.

#![warn(missing_docs)]

pub mod codec;
pub mod format;
pub mod recipe;
pub mod replay;
pub mod sink;
pub mod store;

pub use codec::{OutcomeRecord, PlanKind, RunHeader, StoreError};
pub use recipe::FrontierRecipe;
pub use replay::{
    replay_networked_session, replay_plan, replay_run, stored_script, ReplayError, ReplayReport,
};
pub use sink::{HeaderTemplate, StoreSink};
pub use store::{Backend, EventsIter, FileBackend, MemBackend, RunId, StoredRun, TraceStore};
