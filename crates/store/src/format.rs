//! The append-only file format: a magic preamble followed by CRC-framed
//! records.
//!
//! ```text
//! file    := "MTRC" version:u8 record*
//! record  := len:u32le crc:u32le body          (len = |body|, crc = crc32(body))
//! body    := kind:u8 payload
//! kind    := 0 Header | 1 EventsChunk | 2 Outcome
//! run     := Header EventsChunk* Outcome       (the grammar `scan` enforces)
//! ```
//!
//! The framing is what makes an append-only log crash-safe to read back:
//!
//! * an interrupted append leaves fewer bytes than the final record's
//!   `len` announces — detected as a [`StoreError::TornTail`] at that
//!   record's offset (the expected crash signature, distinct from
//!   corruption);
//! * a bit flipped in place fails the record's CRC32 — detected as
//!   [`StoreError::BadCrc`];
//! * everything inside a record is still decoded strictly by the
//!   [`codec`](crate::codec) layer, so framing and content corruption
//!   surface as distinct typed errors.

use crate::codec::{put_varint, Reader, StoreCodec, StoreError};
use mediator_sim::TraceEvent;

/// The four-byte file magic.
pub const MAGIC: &[u8; 4] = b"MTRC";

/// The store-format version, written immediately after the magic.
pub const STORE_VERSION: u8 = 1;

/// Byte length of the file preamble (magic + version).
pub const PREAMBLE_LEN: u64 = 5;

/// Byte length of a record frame (length + CRC) preceding each body.
pub const FRAME_LEN: usize = 8;

/// Record kinds (the `kind` byte of every record body).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A [`crate::codec::RunHeader`] — opens a run.
    Header,
    /// A batch of trace events (varint count, then that many events).
    EventsChunk,
    /// A [`crate::codec::OutcomeRecord`] — closes a run.
    Outcome,
}

impl RecordKind {
    fn from_tag(tag: u8) -> Result<Self, StoreError> {
        match tag {
            0 => Ok(RecordKind::Header),
            1 => Ok(RecordKind::EventsChunk),
            2 => Ok(RecordKind::Outcome),
            tag => Err(StoreError::UnknownTag {
                what: "RecordKind",
                tag,
            }),
        }
    }

    fn tag(self) -> u8 {
        match self {
            RecordKind::Header => 0,
            RecordKind::EventsChunk => 1,
            RecordKind::Outcome => 2,
        }
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected) over `bytes` — the same
/// checksum gzip and PNG use, implemented table-free: the store check-sums
/// whole records once per append/scan, so the bitwise loop is plenty.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends the file preamble (magic + version) to `out`.
pub fn put_preamble(out: &mut Vec<u8>) {
    out.extend_from_slice(MAGIC);
    out.push(STORE_VERSION);
}

/// Checks a buffer's preamble, returning the offset of the first record.
pub fn check_preamble(bytes: &[u8]) -> Result<u64, StoreError> {
    if bytes.len() < PREAMBLE_LEN as usize {
        if bytes.len() < MAGIC.len() {
            if bytes == &MAGIC[..bytes.len()] && !bytes.is_empty() {
                return Err(StoreError::Truncated);
            }
            return Err(if bytes.is_empty() {
                StoreError::Truncated
            } else {
                StoreError::BadMagic
            });
        }
        return Err(StoreError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    if bytes[4] != STORE_VERSION {
        return Err(StoreError::UnknownVersion(bytes[4]));
    }
    Ok(PREAMBLE_LEN)
}

/// Appends one framed record (`len`, `crc`, `kind`, payload) to `out`.
pub fn put_record(out: &mut Vec<u8>, kind: RecordKind, payload: &[u8]) {
    let body_len = payload.len() + 1;
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    // CRC over the body: compute incrementally to avoid a copy.
    let mut crc: u32 = !crc32(&[kind.tag()]);
    for &b in payload {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    out.extend_from_slice(&(!crc).to_le_bytes());
    out.push(kind.tag());
    out.extend_from_slice(payload);
}

/// Encodes a chunk payload: a varint count followed by the events.
pub fn encode_events_chunk(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, events.len() as u64);
    for e in events {
        e.encode(&mut out);
    }
    out
}

/// Decodes a chunk payload back into its events.
pub fn decode_events_chunk(payload: &[u8]) -> Result<Vec<TraceEvent>, StoreError> {
    let mut r = Reader::new(payload);
    let count = r.length()?;
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        events.push(TraceEvent::decode(&mut r)?);
    }
    r.finish()?;
    Ok(events)
}

/// One framed record located in a scanned buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecord {
    /// Byte offset of the record's frame (its `len` field).
    pub offset: u64,
    /// The record kind.
    pub kind: RecordKind,
    /// Byte offset of the payload (after frame + kind byte).
    pub payload_offset: u64,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// Walks every record in `bytes` (which must start with a valid
/// preamble), verifying each frame's length and CRC. Returns the records
/// in file order; the first malformed frame aborts the scan with its
/// typed error — a short tail is [`StoreError::TornTail`], an in-place
/// corruption [`StoreError::BadCrc`].
pub fn scan(bytes: &[u8]) -> Result<Vec<RawRecord>, StoreError> {
    let mut pos = check_preamble(bytes)? as usize;
    let mut records = Vec::new();
    while pos < bytes.len() {
        let offset = pos as u64;
        if bytes.len() - pos < FRAME_LEN {
            return Err(StoreError::TornTail { offset });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        pos += FRAME_LEN;
        if len == 0 || bytes.len() - pos < len {
            return Err(StoreError::TornTail { offset });
        }
        let body = &bytes[pos..pos + len];
        if crc32(body) != crc {
            return Err(StoreError::BadCrc { offset });
        }
        let kind = RecordKind::from_tag(body[0])?;
        records.push(RawRecord {
            offset,
            kind,
            payload_offset: (pos + 1) as u64,
            payload_len: len - 1,
        });
        pos += len;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn put_record_crc_matches_whole_body() {
        let mut out = Vec::new();
        put_record(&mut out, RecordKind::Outcome, &[1, 2, 3]);
        let crc = u32::from_le_bytes(out[4..8].try_into().unwrap());
        assert_eq!(crc, crc32(&out[8..]));
    }

    #[test]
    fn scan_round_trips_records() {
        let mut buf = Vec::new();
        put_preamble(&mut buf);
        put_record(&mut buf, RecordKind::Header, b"hh");
        put_record(&mut buf, RecordKind::EventsChunk, b"ee");
        put_record(&mut buf, RecordKind::Outcome, b"oo");
        let records = scan(&buf).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, RecordKind::Header);
        assert_eq!(records[1].kind, RecordKind::EventsChunk);
        assert_eq!(records[2].kind, RecordKind::Outcome);
        let r = records[1];
        assert_eq!(
            &buf[r.payload_offset as usize..r.payload_offset as usize + r.payload_len],
            b"ee"
        );
    }

    #[test]
    fn torn_tail_is_detected_at_its_offset() {
        let mut buf = Vec::new();
        put_preamble(&mut buf);
        put_record(&mut buf, RecordKind::Header, b"hh");
        let tear_at = buf.len() as u64;
        put_record(
            &mut buf,
            RecordKind::Outcome,
            b"a long payload torn mid-write",
        );
        buf.truncate(buf.len() - 5);
        assert_eq!(scan(&buf), Err(StoreError::TornTail { offset: tear_at }));
    }

    #[test]
    fn bit_flip_is_a_crc_failure_not_a_torn_tail() {
        let mut buf = Vec::new();
        put_preamble(&mut buf);
        put_record(&mut buf, RecordKind::Header, b"payload");
        let offset = PREAMBLE_LEN;
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert_eq!(scan(&buf), Err(StoreError::BadCrc { offset }));
    }

    #[test]
    fn preamble_is_checked_strictly() {
        assert_eq!(scan(b"XTRC\x01"), Err(StoreError::BadMagic));
        assert_eq!(scan(b"MTRC\x09"), Err(StoreError::UnknownVersion(9)));
        assert_eq!(scan(b"MTR"), Err(StoreError::Truncated));
    }

    #[test]
    fn events_chunk_round_trips() {
        let events = vec![
            TraceEvent::Started { p: 0 },
            TraceEvent::Sent {
                src: 0,
                dst: 1,
                k: 1,
            },
        ];
        let payload = encode_events_chunk(&events);
        assert_eq!(decode_events_chunk(&payload).unwrap(), events);
    }
}
