//! Deterministic replay of stored runs.
//!
//! A stored run is a complete recipe: the header names the plan family,
//! seed and scheduler; the event chunks hold the content-level schedule;
//! the outcome record pins what the run produced. Replay rebuilds the
//! world from the *plan* (the processes are reconstructed from
//! configuration, not stored — the world is deterministic given `(plan,
//! seed)`), forces the recorded dispatch order through
//! [`SchedulerKind::Replay`], and then checks the re-enactment against
//! the recording: the re-recorded trace must be byte-identical and the
//! stored outcome fields must match.
//!
//! Two driving modes, chosen by [`RunHeader::networked`](crate::RunHeader#structfield.networked):
//!
//! * **In-process** ([`replay_run`]): the recorded world delivered its own
//!   sends; `plan.run_with(Replay(script), seed)` re-enacts it directly.
//! * **Networked** ([`replay_networked_session`]): the recording came from
//!   a transport pump, so every logical message appears twice — once when
//!   the process sent it (emission) and once when the wire handed it back
//!   ([`Session::inject`] re-sequences it as a fresh `Sent`). The replay
//!   driver re-enacts that loop *in process*: drained envelopes park in
//!   per-`(src, dst)` FIFO queues (the per-pair ordering both transports
//!   guarantee), and the script tells the driver at each boundary whether
//!   the next event is an injection (a `Sent` at the boundary — emission
//!   `Sent`s only ever appear mid-step) or a scheduler step.

use crate::codec::StoreError;
use crate::store::StoredRun;
use mediator_core::scenario::SessionPlan;
use mediator_sim::{Outcome, ReplayScript, SchedulerKind, Session, TraceEvent};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Why a stored run could not be replayed (or did not reproduce).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The recording is marked partial (ring-mode capture wrapped): the
    /// script is missing its prefix, so the run cannot be re-enacted.
    PartialTrace,
    /// Retention evicted part of the event body; only `have` of the
    /// `want` recorded events remain.
    Evicted {
        /// Events still retained.
        have: u64,
        /// Events the run originally recorded.
        want: u64,
    },
    /// A networked replay needed the next wire message for `(src, dst)`
    /// but the re-enacted processes never sent it — the rebuilt plan does
    /// not match the recording.
    MissingMessage {
        /// The sender of the missing message.
        src: usize,
        /// Its addressee.
        dst: usize,
    },
    /// The re-enactment stopped producing the recorded events at this
    /// script position.
    Divergence {
        /// Index into the recorded event stream.
        at: usize,
    },
    /// The re-enactment ran to completion but `what` differed from the
    /// stored value.
    Mismatch {
        /// The outcome field that disagreed.
        what: &'static str,
    },
    /// The store itself failed while materialising the run.
    Store(StoreError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::PartialTrace => {
                write!(f, "recording is partial (ring-mode capture wrapped)")
            }
            ReplayError::Evicted { have, want } => {
                write!(
                    f,
                    "event body evicted by retention ({have}/{want} events remain)"
                )
            }
            ReplayError::MissingMessage { src, dst } => {
                write!(
                    f,
                    "re-enactment never produced the next {src}->{dst} message"
                )
            }
            ReplayError::Divergence { at } => {
                write!(f, "re-enactment diverged from the recording at event {at}")
            }
            ReplayError::Mismatch { what } => {
                write!(f, "replayed outcome disagrees with the recording on {what}")
            }
            ReplayError::Store(e) => write!(f, "store failure: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<StoreError> for ReplayError {
    fn from(e: StoreError) -> Self {
        ReplayError::Store(e)
    }
}

/// What a successful replay established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Events re-enacted (equals the recording's retained event count).
    pub events: usize,
    /// Steps the replay took. May undercut the recording by up to one
    /// trace-silent step per process (see the sim crate's replay
    /// documentation); never exceeds it.
    pub steps: u64,
    /// The reproduced termination kind.
    pub termination: mediator_sim::TerminationKind,
}

/// Builds the replay script for a stored run, refusing recordings whose
/// event stream is incomplete — a partial (ring-wrapped) capture or a
/// retention-evicted body can only mis-replay, so both are typed errors.
pub fn stored_script(run: &StoredRun) -> Result<ReplayScript, ReplayError> {
    if run.header.partial {
        return Err(ReplayError::PartialTrace);
    }
    let have = run.events.len() as u64;
    if run.evicted || have < run.outcome.event_count {
        return Err(ReplayError::Evicted {
            have,
            want: run.outcome.event_count,
        });
    }
    Ok(ReplayScript::new(run.events.clone()))
}

/// Checks a replayed outcome against the recording: byte-identical trace,
/// equal moves/wills/halted sets, equal message counters, and the same
/// termination kind. (Step counts are *not* compared: replay merges the
/// recording's trace-silent steps — the sim crate pins the exact law.)
fn check(run: &StoredRun, replayed: &Outcome) -> Result<ReplayReport, ReplayError> {
    if replayed.trace.events() != run.events.as_slice() {
        let at = replayed
            .trace
            .events()
            .iter()
            .zip(&run.events)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| replayed.trace.events().len().min(run.events.len()));
        return Err(ReplayError::Divergence { at });
    }
    let stored = &run.outcome;
    if replayed.moves != stored.moves {
        return Err(ReplayError::Mismatch { what: "moves" });
    }
    if replayed.wills != stored.wills {
        return Err(ReplayError::Mismatch { what: "wills" });
    }
    if replayed.halted != stored.halted {
        return Err(ReplayError::Mismatch { what: "halted" });
    }
    if replayed.messages_sent != stored.messages_sent {
        return Err(ReplayError::Mismatch {
            what: "messages_sent",
        });
    }
    if replayed.messages_delivered != stored.messages_delivered {
        return Err(ReplayError::Mismatch {
            what: "messages_delivered",
        });
    }
    if replayed.termination != stored.termination {
        return Err(ReplayError::Mismatch {
            what: "termination",
        });
    }
    Ok(ReplayReport {
        events: run.events.len(),
        steps: replayed.steps,
        termination: replayed.termination,
    })
}

/// Replays a stored run through an arbitrary executor — the seam for
/// callers whose run recipe is not a [`SessionPlan`] (a bare world, a
/// protocol substrate). `exec` receives the replay scheduler kind and the
/// recorded seed and must rebuild and run the same world the recording
/// came from.
pub fn replay_run(
    run: &StoredRun,
    exec: impl FnOnce(&SchedulerKind, u64) -> Outcome,
) -> Result<ReplayReport, ReplayError> {
    let script = stored_script(run)?;
    let replayed = exec(&SchedulerKind::Replay(script), run.header.seed);
    check(run, &replayed)
}

/// Replays a stored run against the plan that produced it, dispatching on
/// [`RunHeader::networked`](crate::codec::RunHeader::networked): bare
/// recordings run the closed loop, networked recordings re-enact the
/// transport pump in process.
pub fn replay_plan<P: SessionPlan>(plan: &P, run: &StoredRun) -> Result<ReplayReport, ReplayError> {
    let script = stored_script(run)?;
    let kind = SchedulerKind::Replay(script);
    if run.header.networked {
        let session = plan.open_session(&kind, run.header.seed);
        let replayed = replay_networked_session(session, &run.events)?;
        check(run, &replayed)
    } else {
        let replayed = plan.open_session(&kind, run.header.seed).finish();
        check(run, &replayed)
    }
}

/// Re-enacts a networked recording on a bare [`Session`] (which must have
/// been opened with the run's [`SchedulerKind::Replay`] script and seed).
///
/// The driver mirrors the service pump without a transport: freshly sent
/// envelopes drain into per-`(src, dst)` FIFO queues instead of sockets,
/// and the recorded script decides, at every boundary between world
/// steps, which of the pump's two actions happened next:
///
/// * the next recorded event is a `Sent` — only an injection can open
///   with one (a process's own emissions are recorded *mid*-step, atomically
///   with the `Started`/`Delivered` that triggered them), so the driver
///   pops that pair's queue and re-injects;
/// * anything else — the pump stepped the world; the replay scheduler
///   picks the recorded event from the plane.
///
/// The drain happens right **after** a step, never after an inject: the
/// pump delivers every injected message before its next ship pass
/// ([`Session::drain_outbox`] would otherwise pull it straight back out
/// of the plane), so what the wire carried is exactly the messages each
/// step emitted.
pub fn replay_networked_session<M>(
    mut session: Session<M>,
    script: &[TraceEvent],
) -> Result<Outcome, ReplayError> {
    let mut queues: HashMap<(usize, usize), VecDeque<M>> = HashMap::new();
    loop {
        let at = session.world().trace().events().len();
        if at >= script.len() {
            break;
        }
        match script[at] {
            TraceEvent::Sent { src, dst, .. } => {
                let msg = queues
                    .get_mut(&(src, dst))
                    .and_then(VecDeque::pop_front)
                    .ok_or(ReplayError::MissingMessage { src, dst })?;
                // The indicator does not matter for replay: a send to a
                // halted destination is still counted and traced, exactly
                // as the recording shows it.
                let _ = session.inject(src, dst, msg);
            }
            _ => {
                if !session.pump_ready() {
                    return Err(ReplayError::Divergence { at });
                }
                for env in session.drain_outbox() {
                    queues
                        .entry((env.src, env.dst))
                        .or_default()
                        .push_back(env.msg);
                }
            }
        }
        if session.world().trace().events().len() == at {
            return Err(ReplayError::Divergence { at });
        }
    }
    Ok(session.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{PlanKind, RunHeader};
    use crate::store::TraceStore;
    use mediator_sim::{Ctx, Process, ProcessId, TraceMode, World};

    struct Echo {
        n: usize,
    }

    impl Process<u64> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            if ctx.me() == 0 {
                for d in 0..self.n {
                    ctx.send(d, d as u64);
                }
            }
        }
        fn on_message(&mut self, _src: ProcessId, msg: u64, ctx: &mut Ctx<u64>) {
            ctx.make_move(msg);
            ctx.halt();
        }
    }

    fn echo_world(n: usize, seed: u64) -> World<u64> {
        let procs: Vec<Box<dyn Process<u64>>> = (0..n)
            .map(|_| Box::new(Echo { n }) as Box<dyn Process<u64>>)
            .collect();
        World::new(procs, seed)
    }

    #[test]
    fn bare_world_recording_replays_through_exec() {
        let mut store = TraceStore::in_memory();
        let outcome = echo_world(4, 11).run(SchedulerKind::Random.build().as_mut(), 10_000);
        let id = store
            .record(RunHeader::bare(3, 11), &outcome)
            .expect("record");
        let run = store.load(id).unwrap();
        let report = replay_run(&run, |kind, seed| {
            let mut world = echo_world(4, seed);
            world.set_starvation_bound(u64::MAX);
            world.run(kind.build().as_mut(), 10_000)
        })
        .expect("replay reproduces");
        assert_eq!(report.events, outcome.trace.events().len());
        assert_eq!(report.termination, outcome.termination);
    }

    #[test]
    fn partial_recording_is_refused() {
        let mut store = TraceStore::in_memory();
        let mut world = echo_world(5, 2);
        world.set_trace_mode(TraceMode::Ring(2));
        let outcome = world.run(SchedulerKind::Fifo.build().as_mut(), 10_000);
        assert!(outcome.trace.wrapped() > 0, "ring capture must wrap");
        let id = store.record(RunHeader::bare(1, 2), &outcome).unwrap();
        assert!(store.header(id).partial, "stored marked partial");
        let run = store.load(id).unwrap();
        assert_eq!(stored_script(&run), Err(ReplayError::PartialTrace));
    }

    #[test]
    fn evicted_recording_is_refused() {
        let mut store = TraceStore::in_memory();
        let outcome = echo_world(5, 3).run(SchedulerKind::Fifo.build().as_mut(), 10_000);
        let id = store.record(RunHeader::bare(1, 3), &outcome).unwrap();
        store.compact(0).expect("evict everything");
        let run = store.load(id).unwrap();
        assert!(run.evicted);
        match stored_script(&run) {
            Err(ReplayError::Evicted { have: 0, want }) => {
                assert_eq!(want, outcome.trace.events().len() as u64);
            }
            other => panic!("expected Evicted, got {other:?}"),
        }
    }

    #[test]
    fn wrong_seed_is_a_divergence_or_mismatch() {
        let mut store = TraceStore::in_memory();
        let outcome = echo_world(4, 7).run(SchedulerKind::Random.build().as_mut(), 10_000);
        let id = store.record(RunHeader::bare(1, 7), &outcome).unwrap();
        let run = store.load(id).unwrap();
        // Re-enact with a *different* world size: the trace cannot match.
        let err = replay_run(&run, |kind, seed| {
            let mut world = echo_world(3, seed);
            world.set_starvation_bound(u64::MAX);
            world.run(kind.build().as_mut(), 10_000)
        })
        .unwrap_err();
        assert!(
            matches!(
                err,
                ReplayError::Divergence { .. } | ReplayError::Mismatch { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn plan_kind_display_names_are_stable() {
        assert_eq!(PlanKind::CheapTalk.to_string(), "cheap-talk");
        assert_eq!(PlanKind::Mediator.to_string(), "mediator");
        assert_eq!(PlanKind::Other.to_string(), "other");
    }
}
