//! Typed rebuild recipes for frontier-atlas witnesses.
//!
//! A `Violated` frontier cell persists its witness run to the trace store;
//! the header's free-form metadata must then carry everything `--replay`
//! needs to rebuild the deviant plan *from scratch* — the theorem regime,
//! the cell coordinates (already in the header's `n`/`k`/`t` fields), and
//! the `(strategy, coalition, deadlock)` deviation recipe. This module
//! gives that contract a type instead of scattering string keys across the
//! recorder and the replayer.

use crate::codec::RunHeader;

/// The metadata recipe a frontier witness run carries in its header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierRecipe {
    /// The theorem whose boundary the cell probes, by paper number
    /// (`"4.1"`, `"4.2"`, `"4.4"`, `"4.5"`).
    pub theorem: String,
    /// The cell's stable atlas key (`thm4.1-n7-k2-t0`), for display and
    /// cross-referencing against `FRONTIER.json`.
    pub cell_key: String,
    /// The generated deviant strategy the witness exercises
    /// (e.g. `deadlock-if-bit=0`).
    pub strategy: String,
    /// The colluding coalition, ascending player ids.
    pub coalition: Vec<usize>,
    /// The deadlock/punishment action (`⊥`) the resolve step falls back
    /// to.
    pub deadlock: u64,
}

impl FrontierRecipe {
    /// The `entry` metadata value that marks a run as a frontier witness —
    /// the discriminant `--replay` dispatches on.
    pub const ENTRY: &'static str = "frontier-cell";

    /// Renders the recipe as header metadata (including the
    /// [`ENTRY`](Self::ENTRY) marker), in stable key order.
    pub fn meta(&self) -> Vec<(String, String)> {
        let coalition = self
            .coalition
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        vec![
            ("entry".to_string(), Self::ENTRY.to_string()),
            ("theorem".to_string(), self.theorem.clone()),
            ("cell".to_string(), self.cell_key.clone()),
            ("strategy".to_string(), self.strategy.clone()),
            ("coalition".to_string(), coalition),
            ("deadlock".to_string(), self.deadlock.to_string()),
        ]
    }

    /// Parses a recipe back out of a persisted header. Returns `None`
    /// when the run is not a frontier witness (its `entry` differs) or a
    /// required key is missing or malformed — replay then falls through to
    /// the other entry kinds.
    pub fn from_header(header: &RunHeader) -> Option<Self> {
        if header.meta_value("entry") != Some(Self::ENTRY) {
            return None;
        }
        let coalition = header
            .meta_value("coalition")?
            .split(',')
            .filter(|p| !p.is_empty())
            .map(|p| p.parse().ok())
            .collect::<Option<Vec<usize>>>()?;
        Some(FrontierRecipe {
            theorem: header.meta_value("theorem")?.to_string(),
            cell_key: header.meta_value("cell")?.to_string(),
            strategy: header.meta_value("strategy")?.to_string(),
            coalition,
            deadlock: header.meta_value("deadlock")?.parse().ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recipe() -> FrontierRecipe {
        FrontierRecipe {
            theorem: "4.1".to_string(),
            cell_key: "thm4.1-n7-k2-t0".to_string(),
            strategy: "deadlock-if-bit=0".to_string(),
            coalition: vec![0, 1],
            deadlock: 2,
        }
    }

    #[test]
    fn meta_roundtrips_through_a_header() {
        let r = recipe();
        let mut header = RunHeader::bare(17, 3);
        header.meta = r.meta();
        assert_eq!(FrontierRecipe::from_header(&header), Some(r));
    }

    #[test]
    fn foreign_entries_are_not_claimed() {
        let mut header = RunHeader::bare(0, 0);
        header.meta = vec![("entry".to_string(), "ct-thm41".to_string())];
        assert_eq!(FrontierRecipe::from_header(&header), None);
    }

    #[test]
    fn malformed_coalitions_are_rejected_not_mangled() {
        let mut header = RunHeader::bare(0, 0);
        header.meta = recipe().meta();
        for kv in header.meta.iter_mut() {
            if kv.0 == "coalition" {
                kv.1 = "0,x".to_string();
            }
        }
        assert_eq!(FrontierRecipe::from_header(&header), None);
    }

    #[test]
    fn empty_coalition_roundtrips() {
        let mut r = recipe();
        r.coalition.clear();
        let mut header = RunHeader::bare(0, 0);
        header.meta = r.meta();
        assert_eq!(FrontierRecipe::from_header(&header), Some(r));
    }
}
