//! The trace-log codec: compact hand-rolled binary encodings for every
//! value that lands in a store file.
//!
//! The conventions mirror the transport plane's wire codec
//! (`mediator-net`'s `wire` module): unsigned LEB128 varints for every
//! integer, one `u8` tag per enum, and strict decoding — unknown tags,
//! truncated buffers, hostile lengths, and trailing garbage all surface a
//! typed [`StoreError`], never a panic and never a silent best-effort
//! value. The store does **not** share code with the wire codec on
//! purpose: a trace log outlives any one process, so its format must not
//! drift when the transport's does — the two evolve (and version)
//! independently.

use mediator_sim::{ReplayScript, SchedulerKind, TerminationKind, TraceEvent};
use std::fmt;

/// A typed store-format failure. Everything malformed — a truncated file,
/// a corrupted record, an unknown tag — maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The buffer ended before the value did.
    Truncated,
    /// The file does not start with the `MTRC` magic.
    BadMagic,
    /// The file announces a format version this reader does not speak.
    UnknownVersion(u8),
    /// An enum tag byte outside the known range. `what` names the type.
    UnknownTag {
        /// The type whose tag table was violated.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A varint ran past 10 bytes (no `u64` needs more).
    VarintOverflow,
    /// A length field exceeds the bytes actually available — corruption or
    /// a hostile allocation-amplification attempt; rejected before any
    /// allocation happens.
    LengthOverrun {
        /// The announced element count.
        announced: u64,
        /// The bytes remaining in the buffer.
        remaining: usize,
    },
    /// Decoding finished with unconsumed bytes left over.
    TrailingBytes {
        /// How many bytes were never consumed.
        extra: usize,
    },
    /// A string field held bytes that are not valid UTF-8.
    BadString,
    /// A record's CRC32 does not match its payload: the record at this
    /// byte offset was corrupted in place.
    BadCrc {
        /// Byte offset of the corrupt record's frame.
        offset: u64,
    },
    /// The file ends mid-record: an interrupted append left a torn tail
    /// at this byte offset. (Unlike [`StoreError::BadCrc`] this is the
    /// *expected* crash signature of an append-only log.)
    TornTail {
        /// Byte offset where the torn record begins.
        offset: u64,
    },
    /// A structurally complete record appeared where the run grammar does
    /// not allow it (e.g. an events chunk before any run header).
    UnexpectedRecord {
        /// Byte offset of the out-of-place record.
        offset: u64,
        /// Its record-kind byte.
        kind: u8,
    },
    /// The backing file failed with this I/O error kind.
    Io(std::io::ErrorKind),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated => write!(f, "buffer ended before the value did"),
            StoreError::BadMagic => write!(f, "not a trace store (missing MTRC magic)"),
            StoreError::UnknownVersion(v) => {
                write!(f, "unknown store version {v}")
            }
            StoreError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            StoreError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            StoreError::LengthOverrun {
                announced,
                remaining,
            } => write!(
                f,
                "length {announced} exceeds the {remaining} bytes remaining"
            ),
            StoreError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the value")
            }
            StoreError::BadString => write!(f, "string field is not valid UTF-8"),
            StoreError::BadCrc { offset } => {
                write!(f, "record at byte {offset} fails its CRC32")
            }
            StoreError::TornTail { offset } => {
                write!(f, "file ends mid-record at byte {offset} (torn tail)")
            }
            StoreError::UnexpectedRecord { offset, kind } => {
                write!(
                    f,
                    "record kind {kind} at byte {offset} violates the run grammar"
                )
            }
            StoreError::Io(kind) => write!(f, "backing store I/O failure: {kind:?}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.kind())
    }
}

/// A bounds-checked cursor over a store byte buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        let b = *self.buf.get(self.pos).ok_or(StoreError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned LEB128 varint. Strict: the 10th byte may only
    /// carry the single bit that still fits a `u64`, so no two accepted
    /// byte strings decode to the same value by bit loss.
    pub fn varint(&mut self) -> Result<u64, StoreError> {
        let mut value: u64 = 0;
        for i in 0..10 {
            let b = self.u8()?;
            if i == 9 && b > 0x01 {
                return Err(StoreError::VarintOverflow);
            }
            value |= u64::from(b & 0x7F) << (7 * i);
            if b & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(StoreError::VarintOverflow)
    }

    /// Reads a `bool` (strict: only 0 and 1 are valid).
    pub fn boolean(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(StoreError::UnknownTag { what: "bool", tag }),
        }
    }

    /// Reads a collection length and vets it against the bytes actually
    /// remaining (each element needs at least one byte), so a hostile
    /// length can never drive an allocation.
    pub fn length(&mut self) -> Result<usize, StoreError> {
        let announced = self.varint()?;
        if announced > self.remaining() as u64 {
            return Err(StoreError::LengthOverrun {
                announced,
                remaining: self.remaining(),
            });
        }
        Ok(announced as usize)
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Asserts the buffer is fully consumed.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StoreError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

/// Appends an unsigned LEB128 varint to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A type with a store-file binary form. Implementations must round-trip:
/// `decode(encode(x)) == x` (pinned by the codec property suite).
pub trait StoreCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value from the cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a buffer that must contain exactly one value.
    fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

impl StoreCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        r.varint()
    }
}

impl StoreCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        usize::try_from(r.varint()?).map_err(|_| StoreError::VarintOverflow)
    }
}

impl StoreCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        r.boolean()
    }
}

impl StoreCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let len = r.length()?;
        let raw = r.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| StoreError::BadString)
    }
}

impl<T: StoreCodec> StoreCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let len = r.length()?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: StoreCodec> StoreCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(StoreError::UnknownTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<A: StoreCodec, B: StoreCodec> StoreCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---------------------------------------------------------------------------
// Trace-log value types (tag tables pinned in DESIGN.md §11)
// ---------------------------------------------------------------------------

impl StoreCodec for TraceEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            TraceEvent::Started { p } => {
                out.push(0);
                p.encode(out);
            }
            TraceEvent::Sent { src, dst, k } => {
                out.push(1);
                src.encode(out);
                dst.encode(out);
                k.encode(out);
            }
            TraceEvent::Delivered { src, dst, k } => {
                out.push(2);
                src.encode(out);
                dst.encode(out);
                k.encode(out);
            }
            TraceEvent::Dropped { src, dst, k } => {
                out.push(3);
                src.encode(out);
                dst.encode(out);
                k.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(TraceEvent::Started {
                p: usize::decode(r)?,
            }),
            1 => Ok(TraceEvent::Sent {
                src: usize::decode(r)?,
                dst: usize::decode(r)?,
                k: u64::decode(r)?,
            }),
            2 => Ok(TraceEvent::Delivered {
                src: usize::decode(r)?,
                dst: usize::decode(r)?,
                k: u64::decode(r)?,
            }),
            3 => Ok(TraceEvent::Dropped {
                src: usize::decode(r)?,
                dst: usize::decode(r)?,
                k: u64::decode(r)?,
            }),
            tag => Err(StoreError::UnknownTag {
                what: "TraceEvent",
                tag,
            }),
        }
    }
}

impl StoreCodec for TerminationKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            TerminationKind::Quiescent => 0,
            TerminationKind::Deadlock => 1,
            TerminationKind::BudgetExhausted => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(TerminationKind::Quiescent),
            1 => Ok(TerminationKind::Deadlock),
            2 => Ok(TerminationKind::BudgetExhausted),
            tag => Err(StoreError::UnknownTag {
                what: "TerminationKind",
                tag,
            }),
        }
    }
}

/// A replay scheduler kind never *needs* persisting (a stored run carries
/// its original scheduler), but the encoding is total so a header is
/// always writable: the script rides along as its event list.
impl StoreCodec for SchedulerKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SchedulerKind::Random => out.push(0),
            SchedulerKind::Fifo => out.push(1),
            SchedulerKind::Lifo => out.push(2),
            SchedulerKind::TargetedDelay(victims) => {
                out.push(3);
                victims.encode(out);
            }
            SchedulerKind::Partition { group, heal_after } => {
                out.push(4);
                group.encode(out);
                heal_after.encode(out);
            }
            SchedulerKind::Replay(script) => {
                out.push(5);
                script.events().to_vec().encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(SchedulerKind::Random),
            1 => Ok(SchedulerKind::Fifo),
            2 => Ok(SchedulerKind::Lifo),
            3 => Ok(SchedulerKind::TargetedDelay(Vec::decode(r)?)),
            4 => Ok(SchedulerKind::Partition {
                group: Vec::decode(r)?,
                heal_after: u64::decode(r)?,
            }),
            5 => Ok(SchedulerKind::Replay(ReplayScript::new(Vec::decode(r)?))),
            tag => Err(StoreError::UnknownTag {
                what: "SchedulerKind",
                tag,
            }),
        }
    }
}

/// Which scenario family produced a stored run — what a replayer needs to
/// know before it can rebuild the plan from the header's recipe metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// A [`mediator_core::scenario::CheapTalkPlan`] run.
    CheapTalk,
    /// A [`mediator_core::scenario::MediatorPlan`] run.
    Mediator,
    /// Anything else (a raw `World`, a protocol substrate, a test rig);
    /// replayable only by a caller that knows how to rebuild it.
    Other,
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanKind::CheapTalk => write!(f, "cheap-talk"),
            PlanKind::Mediator => write!(f, "mediator"),
            PlanKind::Other => write!(f, "other"),
        }
    }
}

impl StoreCodec for PlanKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            PlanKind::CheapTalk => 0,
            PlanKind::Mediator => 1,
            PlanKind::Other => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.u8()? {
            0 => Ok(PlanKind::CheapTalk),
            1 => Ok(PlanKind::Mediator),
            2 => Ok(PlanKind::Other),
            tag => Err(StoreError::UnknownTag {
                what: "PlanKind",
                tag,
            }),
        }
    }
}

/// The run header: everything needed to rebuild and re-drive the recorded
/// world, written as the first record of every stored run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunHeader {
    /// The session id the run was hosted under (0 for bare runs).
    pub session: u64,
    /// The deterministic seed the world was built from.
    pub seed: u64,
    /// The scheduler kind that drove the recorded run, when known.
    pub kind: Option<SchedulerKind>,
    /// The scenario family (drives witness-recipe reconstruction).
    pub plan: PlanKind,
    /// Game players.
    pub n: u64,
    /// Coalition-size tolerance `k`.
    pub k: u64,
    /// Malicious tolerance `t`.
    pub t: u64,
    /// `true` when the recorded trace is incomplete (ring-mode capture
    /// wrapped); replay refuses such runs with a typed error.
    pub partial: bool,
    /// `true` when the run went through a transport (each logical message
    /// appears as two `Sent` events: emission and wire re-injection), so
    /// replay must drive the networked re-enactment loop.
    pub networked: bool,
    /// Free-form recipe metadata (witness entry name, deviant strategy,
    /// coalition, deadlock action, …) — the key-value contract between
    /// whoever recorded the run and whoever replays it.
    pub meta: Vec<(String, String)>,
}

impl RunHeader {
    /// A minimal header for a bare (non-scenario) run.
    pub fn bare(session: u64, seed: u64) -> Self {
        RunHeader {
            session,
            seed,
            kind: None,
            plan: PlanKind::Other,
            n: 0,
            k: 0,
            t: 0,
            partial: false,
            networked: false,
            meta: Vec::new(),
        }
    }

    /// Looks up a recipe metadata value by key.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl StoreCodec for RunHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.session.encode(out);
        self.seed.encode(out);
        self.kind.encode(out);
        self.plan.encode(out);
        self.n.encode(out);
        self.k.encode(out);
        self.t.encode(out);
        self.partial.encode(out);
        self.networked.encode(out);
        self.meta.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(RunHeader {
            session: u64::decode(r)?,
            seed: u64::decode(r)?,
            kind: Option::decode(r)?,
            plan: PlanKind::decode(r)?,
            n: u64::decode(r)?,
            k: u64::decode(r)?,
            t: u64::decode(r)?,
            partial: bool::decode(r)?,
            networked: bool::decode(r)?,
            meta: Vec::decode(r)?,
        })
    }
}

/// The stored final verdict of a run: the [`mediator_sim::Outcome`] minus
/// its trace (the trace lives in the events chunks, which retention may
/// evict — the outcome record survives compaction unconditionally).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeRecord {
    /// The move each process made, if any.
    pub moves: Vec<Option<u64>>,
    /// The will each process left, if any.
    pub wills: Vec<Option<u64>>,
    /// Which processes halted.
    pub halted: Vec<bool>,
    /// Messages sent during the run.
    pub messages_sent: u64,
    /// Messages delivered during the run.
    pub messages_delivered: u64,
    /// Events dispatched.
    pub steps: u64,
    /// How the run ended.
    pub termination: TerminationKind,
    /// How many trace events the run's chunks held at write time — the
    /// yardstick that tells an evicted body apart from an empty one.
    pub event_count: u64,
}

impl OutcomeRecord {
    /// Captures the storable projection of an outcome. `event_count` is
    /// the number of events actually retained by the trace (a ring-mode
    /// capture stores only its window).
    pub fn capture(outcome: &mediator_sim::Outcome) -> Self {
        OutcomeRecord {
            moves: outcome.moves.clone(),
            wills: outcome.wills.clone(),
            halted: outcome.halted.clone(),
            messages_sent: outcome.messages_sent,
            messages_delivered: outcome.messages_delivered,
            steps: outcome.steps,
            termination: outcome.termination,
            event_count: outcome.trace.events().len() as u64,
        }
    }
}

impl StoreCodec for OutcomeRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.moves.encode(out);
        self.wills.encode(out);
        self.halted.encode(out);
        self.messages_sent.encode(out);
        self.messages_delivered.encode(out);
        self.steps.encode(out);
        self.termination.encode(out);
        self.event_count.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(OutcomeRecord {
            moves: Vec::decode(r)?,
            wills: Vec::decode(r)?,
            halted: Vec::decode(r)?,
            messages_sent: u64::decode(r)?,
            messages_delivered: u64::decode(r)?,
            steps: u64::decode(r)?,
            termination: TerminationKind::decode(r)?,
            event_count: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_at_the_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn hostile_length_cannot_drive_allocation() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        let err = Vec::<u64>::from_bytes(&buf).unwrap_err();
        assert!(matches!(err, StoreError::LengthOverrun { announced, .. } if announced == 1 << 40));
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(String::from_bytes(&buf), Err(StoreError::BadString));
    }

    #[test]
    fn header_meta_lookup_finds_values() {
        let mut h = RunHeader::bare(7, 3);
        h.meta
            .push(("entry".into(), "naive_mediator_sec6_4".into()));
        assert_eq!(h.meta_value("entry"), Some("naive_mediator_sec6_4"));
        assert_eq!(h.meta_value("strategy"), None);
    }

    #[test]
    fn trace_event_tags_round_trip() {
        let events = [
            TraceEvent::Started { p: 3 },
            TraceEvent::Sent {
                src: 1,
                dst: 2,
                k: 9,
            },
            TraceEvent::Delivered {
                src: 1,
                dst: 2,
                k: 9,
            },
            TraceEvent::Dropped {
                src: 0,
                dst: 4,
                k: 1,
            },
        ];
        for e in events {
            assert_eq!(TraceEvent::from_bytes(&e.to_bytes()), Ok(e));
        }
    }
}
