//! The [`TraceSink`] adapter: plugs a [`TraceStore`] into anything that
//! emits `(RunMeta, Outcome)` pairs — the networked service drivers, the
//! conformance sweep, a bench harness.
//!
//! The sink is `Sync` (a service records from its reactor thread and its
//! pump threads alike), so the store sits behind a mutex; the sink's
//! [`TraceSink::record`] contract is infallible, so a backend failure is
//! latched instead of propagated — callers check
//! [`StoreSink::take_error`] after the runs they care about.

use crate::codec::{PlanKind, RunHeader, StoreError};
use crate::store::TraceStore;
use mediator_sim::{Outcome, RunMeta, TraceSink};
use std::sync::Mutex;

/// The header fields a [`RunMeta`] cannot supply: the scenario family,
/// its thresholds, whether the run was networked, and any recipe
/// metadata. One template serves every run the sink records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeaderTemplate {
    /// The scenario family recorded runs belong to.
    pub plan: Option<PlanKind>,
    /// Game players (0 when unknown; the outcome's process count still
    /// identifies the world size).
    pub n: u64,
    /// Coalition-size tolerance `k`.
    pub k: u64,
    /// Malicious tolerance `t`.
    pub t: u64,
    /// Whether recorded runs went through a transport (drives the
    /// networked replay path).
    pub networked: bool,
    /// Recipe metadata stamped onto every recorded header.
    pub meta: Vec<(String, String)>,
}

/// A [`TraceStore`] wearing the [`TraceSink`] interface.
pub struct StoreSink {
    store: Mutex<TraceStore>,
    template: HeaderTemplate,
    error: Mutex<Option<StoreError>>,
}

impl StoreSink {
    /// Wraps `store`; headers are filled from [`RunMeta`] alone.
    pub fn new(store: TraceStore) -> Self {
        StoreSink::with_template(store, HeaderTemplate::default())
    }

    /// Wraps `store`, stamping every recorded header from `template`.
    pub fn with_template(store: TraceStore, template: HeaderTemplate) -> Self {
        StoreSink {
            store: Mutex::new(store),
            template,
            error: Mutex::new(None),
        }
    }

    /// Runs `f` against the underlying store (inspection, compaction,
    /// loading runs for replay).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut TraceStore) -> R) -> R {
        f(&mut self.store.lock().expect("store poisoned"))
    }

    /// The first backend failure since the last call, if any (recording
    /// is infallible by contract, so errors latch here).
    pub fn take_error(&self) -> Option<StoreError> {
        self.error.lock().expect("error poisoned").take()
    }

    /// Unwraps the sink back into its store.
    pub fn into_store(self) -> TraceStore {
        self.store.into_inner().expect("store poisoned")
    }

    fn header_for(&self, meta: &RunMeta) -> RunHeader {
        RunHeader {
            session: meta.session,
            seed: meta.seed.unwrap_or(0),
            kind: meta.kind.clone(),
            plan: self.template.plan.unwrap_or(PlanKind::Other),
            n: self.template.n,
            k: self.template.k,
            t: self.template.t,
            partial: false, // derived from the trace by `record`
            networked: self.template.networked,
            meta: self.template.meta.clone(),
        }
    }
}

impl TraceSink for StoreSink {
    fn record(&self, meta: &RunMeta, outcome: &Outcome) {
        let header = self.header_for(meta);
        let result = self
            .store
            .lock()
            .expect("store poisoned")
            .record(header, outcome);
        if let Err(e) = result {
            let mut slot = self.error.lock().expect("error poisoned");
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mediator_sim::{Ctx, Process, ProcessId, SchedulerKind, World};

    struct Ping;
    impl Process<u64> for Ping {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            if ctx.me() == 0 {
                ctx.send(1, 7);
            }
        }
        fn on_message(&mut self, _src: ProcessId, msg: u64, ctx: &mut Ctx<u64>) {
            ctx.make_move(msg);
            ctx.halt();
        }
    }

    #[test]
    fn sink_records_runs_with_template_fields() {
        let template = HeaderTemplate {
            plan: Some(PlanKind::Other),
            n: 2,
            networked: true,
            meta: vec![("entry".into(), "ping".into())],
            ..HeaderTemplate::default()
        };
        let sink = StoreSink::with_template(TraceStore::in_memory(), template);
        let procs: Vec<Box<dyn Process<u64>>> = vec![Box::new(Ping), Box::new(Ping)];
        let outcome = World::new(procs, 4).run(SchedulerKind::Fifo.build().as_mut(), 1_000);
        let meta = RunMeta::cell(9, SchedulerKind::Fifo, 4);
        sink.record(&meta, &outcome);
        assert!(sink.take_error().is_none());
        let store = sink.into_store();
        let id = store.find(9, 4).expect("recorded run is indexed");
        let h = store.header(id);
        assert_eq!(h.kind, Some(SchedulerKind::Fifo));
        assert!(h.networked);
        assert_eq!(h.meta_value("entry"), Some("ping"));
        assert_eq!(store.load(id).unwrap().events, outcome.trace.events());
    }
}
