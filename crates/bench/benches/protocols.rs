//! Protocol-level benchmarks: one bench per theorem transform plus the
//! mediator-game baseline and the EGL curve (the timing companion to the
//! message-count tables E1–E5/E9 of the experiments binary).

use criterion::{criterion_group, criterion_main, Criterion};
use mediator_bench::{
    majority_spec_epsilon, majority_spec_punish, majority_spec_robust, ones_inputs,
    run_with_deviant,
};
use mediator_circuits::catalog;
use mediator_core::egl;
use mediator_core::mediator::{run_mediator_game, MediatorGameSpec};
use mediator_field::Fp;
use mediator_sim::SchedulerKind;
use std::collections::BTreeMap;

fn bench_mediator_game(c: &mut Criterion) {
    let mut g = c.benchmark_group("mediator-game");
    g.sample_size(20);
    let n = 5;
    let spec = MediatorGameSpec::standard(
        n,
        1,
        0,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
    );
    let inputs = ones_inputs(n);
    g.bench_function("majority_n5", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_mediator_game(
                &spec,
                &inputs,
                BTreeMap::new(),
                &SchedulerKind::Random,
                seed,
                200_000,
            )
        })
    });
    g.finish();
}

fn bench_cheap_talk(c: &mut Criterion) {
    let mut g = c.benchmark_group("cheap-talk");
    g.sample_size(10);
    let n = 5;
    let inputs = ones_inputs(n);

    let robust = majority_spec_robust(n, 1, 0);
    g.bench_function("thm4.1_robust_majority_n5", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_with_deviant(&robust, &inputs, None, &SchedulerKind::Random, seed)
        })
    });

    let eps = majority_spec_epsilon(4, 0, 1, 2);
    let inputs4 = ones_inputs(4);
    g.bench_function("thm4.2_epsilon_majority_n4", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_with_deviant(&eps, &inputs4, None, &SchedulerKind::Random, seed)
        })
    });

    let n6 = 6;
    let punish = majority_spec_punish(n6, 1, 0);
    let inputs6 = ones_inputs(n6);
    g.bench_function("thm4.4_punishment_majority_n6", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_with_deviant(&punish, &inputs6, None, &SchedulerKind::Random, seed)
        })
    });
    g.finish();
}

fn bench_egl(c: &mut Criterion) {
    let mut g = c.benchmark_group("egl");
    for eps in [0.1f64, 0.01] {
        g.bench_function(format!("gradual_release_eps_{eps}"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                egl::run_gradual_release(eps, None, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mediator_game, bench_cheap_talk, bench_egl);
criterion_main!(benches);
