//! E11 — substrate microbenchmarks: field ops, Reed–Solomon robust
//! decoding, reliable broadcast, binary agreement (common vs local coin —
//! the DESIGN.md coin ablation), AVSS, and one MPC multiplication.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mediator_bcast::harness::{Behavior, Net};
use mediator_bcast::{AbaState, CoinSource, IdealCoin, LocalCoin, RbcState};
use mediator_field::{rs, Fp, Poly};
use mediator_vss::avss;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_field(c: &mut Criterion) {
    let mut g = c.benchmark_group("field");
    let mut rng = StdRng::seed_from_u64(1);
    let a = Fp::random(&mut rng);
    let b = Fp::random_nonzero(&mut rng);
    g.bench_function("mul", |bch| bch.iter(|| black_box(a) * black_box(b)));
    g.bench_function("inv", |bch| bch.iter(|| black_box(b).inv().unwrap()));
    let poly = Poly::random_with_secret(a, 8, &mut rng);
    g.bench_function("poly_eval_deg8", |bch| bch.iter(|| poly.eval(black_box(b))));
    g.finish();
}

fn bench_rs(c: &mut Criterion) {
    let mut g = c.benchmark_group("reed-solomon");
    let mut rng = StdRng::seed_from_u64(2);
    for (deg, e, n) in [(2usize, 2usize, 9usize), (4, 4, 17)] {
        let p = Poly::random_with_secret(Fp::new(5), deg, &mut rng);
        let mut pts: Vec<(Fp, Fp)> = (1..=n as u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        for pt in pts.iter_mut().take(e) {
            pt.1 += Fp::new(77);
        }
        g.bench_function(format!("decode_deg{deg}_e{e}_n{n}"), |bch| {
            bch.iter(|| rs::decode_robust(black_box(&pts), deg, e).unwrap())
        });
    }
    g.finish();
}

fn run_rbc(n: usize, t: usize, seed: u64) -> u64 {
    let mut states: Vec<RbcState<u64>> = (0..n).map(|_| RbcState::new(n, t, 0)).collect();
    let behavior: Behavior<_> = Box::new(|_, _, _| Vec::new());
    let mut net = Net::new(n, vec![], seed, behavior);
    let batch = states[0].start(42);
    net.push_batch(0, batch);
    net.run(|to, from, msg, sink| {
        let (out, _) = states[to].on_message(from, msg);
        sink.push_batch(to, out);
    });
    net.delivered
}

fn run_aba(n: usize, t: usize, seed: u64, local: bool) -> u64 {
    let mut states: Vec<AbaState> = (0..n)
        .map(|i| {
            let coin: Box<dyn CoinSource> = if local {
                Box::new(LocalCoin::new(100 + i as u64))
            } else {
                Box::new(IdealCoin::new(9))
            };
            AbaState::new(n, t, 0, coin)
        })
        .collect();
    let behavior: Behavior<_> = Box::new(|_, _, _| Vec::new());
    let mut net = Net::new(n, vec![], seed, behavior);
    for (i, s) in states.iter_mut().enumerate() {
        let batch = s.start(i % 2 == 0);
        net.push_batch(i, batch);
    }
    net.run(|to, from, msg, sink| {
        let (out, _) = states[to].on_message(from, msg);
        sink.push_batch(to, out);
    });
    net.delivered
}

fn bench_agreement(c: &mut Criterion) {
    let mut g = c.benchmark_group("agreement");
    g.sample_size(20);
    g.bench_function("rbc_n7", |bch| {
        let mut seed = 0;
        bch.iter(|| {
            seed += 1;
            run_rbc(7, 2, seed)
        })
    });
    g.bench_function("aba_n7_common_coin", |bch| {
        let mut seed = 0;
        bch.iter(|| {
            seed += 1;
            run_aba(7, 2, seed, false)
        })
    });
    g.bench_function("aba_n7_local_coin", |bch| {
        let mut seed = 0;
        bch.iter(|| {
            seed += 1;
            run_aba(7, 2, seed, true)
        })
    });
    g.finish();
}

fn bench_avss(c: &mut Criterion) {
    let mut g = c.benchmark_group("avss");
    g.sample_size(20);
    g.bench_function("deal_n9_f2_vec8", |bch| {
        bch.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| {
                let secrets: Vec<Fp> = (0..8).map(|_| Fp::random(&mut rng)).collect();
                avss::deal(&secrets, 9, 2, &mut rng)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_field, bench_rs, bench_agreement, bench_avss);
criterion_main!(benches);
