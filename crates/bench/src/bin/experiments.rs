//! The experiment harness: regenerates every quantitative claim of the
//! paper as a table (DESIGN.md §4 maps experiments to claims).
//!
//! ```sh
//! cargo run -p mediator-bench --release --bin experiments            # all
//! cargo run -p mediator-bench --release --bin experiments -- --e7   # one
//! ```

use mediator_bench::*;
use mediator_circuits::catalog;
use mediator_core::adversary::{cheap_talk_deviant_cells, mediator_deviant_cells};
use mediator_core::deviations::{Behavior, CounterexampleColluder};
use mediator_core::egl;
use mediator_core::implement::compare_run_sets;
use mediator_core::mediator::{run_mediator_game, MedMsg, MediatorGameSpec};
use mediator_core::min_info;
use mediator_core::report::{check, f4, Table};
use mediator_core::scenario::{CheapTalkPlan, MediatorPlan, Scenario};
use mediator_core::CheapTalkSpec;
use mediator_field::Fp;
use mediator_games::library;
use mediator_games::punishment;
use mediator_games::solution;
use mediator_sim::covert::{CovertDecoder, CovertSender};
use mediator_sim::{Process, SchedulerKind, TerminationKind, World};
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "--all");
    let fast = args.iter().any(|a| a == "--fast");
    let samples = if fast { 20 } else { 60 };

    if args.iter().any(|a| a == "--bench") {
        // BENCH.json mode: time the tracked hot-path workloads and append a
        // labelled entry to the performance trajectory (see DESIGN.md §5).
        let label = args
            .iter()
            .find_map(|a| a.strip_prefix("--label="))
            .unwrap_or("dev")
            .to_string();
        let out = args
            .iter()
            .find_map(|a| a.strip_prefix("--out="))
            .unwrap_or("BENCH.json")
            .to_string();
        // `--net` restricts the run to the transport-plane workloads (the
        // reactor's tracked set) — what the CI bench-smoke job exercises.
        let net_only = args.iter().any(|a| a == "--net");
        bench_trajectory(&label, &out, fast, net_only);
        return;
    }

    if args.iter().any(|a| a == "--tamper") {
        // TAMPER.json mode: the Byzantine-relay smoke battery — each wire
        // tactic must succeed against plain frames and die with the typed
        // AuthFailure verdict against authenticated ones (DESIGN.md §10).
        // Exits nonzero if any cell misbehaves.
        let out = args
            .iter()
            .find_map(|a| a.strip_prefix("--out="))
            .unwrap_or("TAMPER.json")
            .to_string();
        tamper_battery(&out);
        return;
    }

    if args.iter().any(|a| a == "--frontier") {
        // FRONTIER.json mode: the lower-bound atlas (DESIGN.md §13).
        // Enumerate the (n, k, t) grid straddling each theorem's boundary
        // (`--fast` selects the small CI grid), classify every cell by
        // experiment, machine-check the empirical boundary against the
        // theorem predicate cell-for-cell, persist every Violated cell's
        // witness as a replayable trace (see `--replay`), and write the
        // deterministic artifact. With `--shard N` the whole grid is
        // additionally run over N in-process workers on the mem transport
        // and the rendered artifact is asserted byte-identical to the
        // local fan-out. Exits nonzero if the map and the theorems
        // disagree anywhere.
        let out = args
            .iter()
            .find_map(|a| a.strip_prefix("--out="))
            .unwrap_or("FRONTIER.json")
            .to_string();
        let witness_out = args
            .iter()
            .find_map(|a| a.strip_prefix("--witness-out="))
            .unwrap_or("FRONTIER-WITNESS.mtrc")
            .to_string();
        let shard = args
            .iter()
            .find_map(|a| a.strip_prefix("--shard=").map(str::to_string))
            .or_else(|| {
                args.iter()
                    .position(|a| a == "--shard")
                    .and_then(|i| args.get(i + 1).cloned())
            })
            .map(|v| v.parse::<usize>().expect("--shard takes a worker count"));
        frontier_atlas(&out, &witness_out, fast, shard);
        return;
    }

    if args.iter().any(|a| a == "--conformance") {
        // CONFORMANCE.json mode: run the ε-resilience conformance battery
        // (reduced in --fast) and write the reports as a JSON artifact.
        // Every Violated verdict's witness run is additionally persisted
        // as a replayable trace (see `--replay`). With `--shard N` each
        // sweep additionally runs sharded over N in-process workers on the
        // mem transport and the rendered report is asserted byte-identical
        // to the local fan-out (DESIGN.md §12). Exits nonzero if any
        // verdict contradicts the paper's claims.
        let out = args
            .iter()
            .find_map(|a| a.strip_prefix("--out="))
            .unwrap_or("CONFORMANCE.json")
            .to_string();
        let witness_out = args
            .iter()
            .find_map(|a| a.strip_prefix("--witness-out="))
            .unwrap_or("WITNESS.mtrc")
            .to_string();
        let shard = args
            .iter()
            .find_map(|a| a.strip_prefix("--shard=").map(str::to_string))
            .or_else(|| {
                args.iter()
                    .position(|a| a == "--shard")
                    .and_then(|i| args.get(i + 1).cloned())
            })
            .map(|v| v.parse::<usize>().expect("--shard takes a worker count"));
        conformance_battery(&out, &witness_out, fast, shard);
        return;
    }

    if let Some(path) = args
        .iter()
        .position(|a| a == "--replay")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--replay=").map(String::from))
        })
    {
        // Replay mode: re-enact every run in a stored trace log (the
        // `--conformance` witness artifact, typically) and verify each one
        // reproduces byte-identically. Exits nonzero on any divergence.
        replay_store(&path);
        return;
    }

    println!("# mediator-talk experiment harness");
    println!("# paper: Implementing Mediators with Asynchronous Cheap Talk (PODC 2019)");

    if want("--e1") {
        e1_thresholds_robust(samples);
    }
    if want("--e1") || want("--e1b") {
        e1b_robustness_report(if fast { 10 } else { 30 });
    }
    if want("--e2") {
        e2_epsilon(samples);
    }
    if want("--e3") {
        e3_punishment(samples);
        e3b_relaxed_deadlock(samples);
    }
    if want("--e4") {
        e4_eps_punishment(samples);
    }
    if want("--e5") {
        e5_message_scaling();
    }
    if want("--e6") {
        e6_implementation(samples);
    }
    if want("--e7") {
        e7_counterexample(if fast { 100 } else { 400 });
    }
    if want("--e8") {
        e8_min_info();
    }
    if want("--e9") {
        e9_egl();
    }
    if want("--e10") {
        e10_scheduler_collusion(samples);
    }
    if want("--e11") {
        e11_substrate_timings();
    }
}

/// `--bench` — the tracked BENCH.json trajectory: hot-path workloads timed
/// as median ns/op with their message/step counters, appended under the
/// given label. These are the numbers every perf PR must beat; see the
/// "Performance" section of DESIGN.md for how to read them. With
/// `net_only` the run is restricted to the transport-plane set (the CI
/// bench-smoke's `--bench --net` invocation).
fn bench_trajectory(label: &str, out: &str, fast: bool, net_only: bool) {
    use mediator_bcast::RbcPeer;
    use mediator_bench::measure::{append_bench_json, median_ns_per_op, Metric};
    use mediator_field::{rs, Poly};
    use mediator_sim::sansio::run_machines;
    use mediator_vss::{avss, OecState};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Many short samples: on a loaded machine the median of small batches
    // rejects preemption spikes far better than few long batches.
    let (wsamples, ksamples, kiters) = if fast { (11, 11, 20) } else { (31, 31, 50) };
    let mut metrics = Vec::new();

    let spec = majority_spec_robust(5, 1, 0);
    let inputs = ones_inputs(5);
    let plan = plan_for(&spec, &inputs);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if !net_only {
        // The World macro-bench: one full reliable-broadcast execution,
        // n = 16, uniformly random scheduler, fixed seed — the event-plane
        // hot loop.
        let run_rbc = |kind: &SchedulerKind, seed: u64| {
            let machines: Vec<RbcPeer<u64>> = (0..16)
                .map(|me| RbcPeer::new(16, 5, 0, me, (me == 0).then_some(42)))
                .collect();
            run_machines(machines, Vec::new(), kind.build().as_mut(), seed, 2_000_000)
        };
        for kind in [SchedulerKind::Random, SchedulerKind::Lifo] {
            let (outcome, _) = run_rbc(&kind, 7);
            let name = format!("world_rbc_n16_{}", format!("{kind:?}").to_lowercase());
            let ns = median_ns_per_op(wsamples, 1, || run_rbc(&kind, 7));
            metrics.push(
                Metric::new(name, ns)
                    .with("messages_sent", outcome.messages_sent)
                    .with("steps", outcome.steps),
            );
        }

        // The algebra kernel: Berlekamp–Welch robust decoding at the
        // Theorem 4.1 working point (degree-2f product opening, f = 4
        // errors).
        let mut rng = StdRng::seed_from_u64(5);
        for (deg, e, n) in [(4usize, 4usize, 17usize), (2, 2, 9)] {
            let p = Poly::random_with_secret(Fp::new(5), deg, &mut rng);
            let mut pts: Vec<(Fp, Fp)> = (1..=n as u64)
                .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
                .collect();
            for pt in pts.iter_mut().take(e) {
                pt.1 += Fp::new(99);
            }
            let ns = median_ns_per_op(ksamples, kiters, || {
                rs::decode_robust(&pts, deg, e).expect("decodes")
            });
            metrics.push(Metric::new(format!("rs_decode_deg{deg}_e{e}_n{n}"), ns));
        }

        // Online error correction: the per-opening reconstruction loop
        // (shares dribbling in, f of them corrupt).
        let p = Poly::random_with_secret(Fp::new(77), 8, &mut rng);
        let shares: Vec<Fp> = (1..=17u64).map(|i| p.eval(Fp::new(i))).collect();
        let ns = median_ns_per_op(ksamples, kiters.min(10), || {
            let mut oec = OecState::new(8, 4);
            for (i, &v) in shares.iter().enumerate() {
                let v = if i < 4 { v + Fp::new(13) } else { v };
                if oec.add_share(i, v).is_some() {
                    break;
                }
            }
            oec.secret().expect("reconstructs")
        });
        metrics.push(Metric::new("oec_reconstruct_deg8_f4_n17", ns));

        // Exact interpolation over the share grid (the crash-path kernel).
        let pts: Vec<(Fp, Fp)> = (1..=9u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        let ns = median_ns_per_op(ksamples, kiters, || Poly::interpolate(&pts));
        metrics.push(Metric::new("poly_interpolate_n9", ns));

        // AVSS dealing (vector of 8 secrets, n = 9, f = 2).
        let ns = median_ns_per_op(ksamples, kiters.min(20), || {
            let mut rng = StdRng::seed_from_u64(3);
            let secrets: Vec<Fp> = (0..8).map(|_| Fp::random(&mut rng)).collect();
            avss::deal(&secrets, 9, 2, &mut rng)
        });
        metrics.push(Metric::new("avss_deal_n9_f2_vec8", ns));

        // End-to-end cheap talk (Theorem 4.1 majority, n = 5): everything
        // at once — event plane, engine, kernels.
        let ct = run_with_deviant(&spec, &inputs, None, &SchedulerKind::Random, 1);
        let ns = median_ns_per_op(wsamples.min(15), 1, || {
            run_with_deviant(&spec, &inputs, None, &SchedulerKind::Random, 1)
        });
        metrics.push(
            Metric::new("cheap_talk_majority_n5_random", ns)
                .with("messages_sent", ct.messages_sent)
                .with("steps", ct.steps),
        );

        // The Scenario batch runner: the same workload as a 64-seed sweep,
        // sequential versus fanned across the worker pool — the number the
        // multi-threaded `run_batch` plan has to justify. On a single-core
        // host the mt run would be the 1t run under another name, so the
        // metric is *skipped* there (recording it would pollute the
        // trajectory with an indistinguishable duplicate); multi-core
        // hosts record the worker count alongside the timing.
        let bsamples = if fast { 3 } else { 7 };
        let ns_1t = median_ns_per_op(bsamples, 1, || {
            plan.seeds(0..64).threads(1).run_batch().len()
        });
        metrics.push(Metric::new("batch_cheap_talk_n5_64seeds_1t", ns_1t).with("threads", 1));
        if workers > 1 {
            let ns_mt = median_ns_per_op(bsamples, 1, || plan.seeds(0..64).run_batch().len());
            metrics.push(
                Metric::new("batch_cheap_talk_n5_64seeds_mt", ns_mt)
                    .with("threads", workers as u64),
            );
        } else {
            println!(
                "batch_cheap_talk_n5_64seeds_mt   skipped: single-core host \
                 (available_parallelism = 1, the mt run would duplicate the 1t metric)"
            );
        }
    }

    use mediator_sim::TraceSink;
    use mediator_store::{HeaderTemplate, PlanKind, RunHeader, StoreSink, TraceStore};

    if !net_only {
        // The trace store's append path: CRC-framed encode of header +
        // event chunks + outcome, ~1e5 events per op into a fresh
        // in-memory log — the cost a recording sweep pays per session,
        // aggregated to a stable measurement.
        let recorded = plan.run_with(&SchedulerKind::Random, 1);
        let per_run = recorded.trace.events().len().max(1);
        let appends = 100_000usize.div_ceil(per_run);
        let ns = median_ns_per_op(ksamples, 1, || {
            let mut store = TraceStore::in_memory();
            for session in 0..appends as u64 {
                let mut header = RunHeader::bare(session, 1);
                header.plan = PlanKind::CheapTalk;
                store.record(header, &recorded).expect("append");
            }
            store.len()
        });
        metrics.push(
            Metric::new("trace_store_append_1e5_events", ns)
                .with("events", (appends * per_run) as u64)
                .with("appends", appends as u64),
        );

        // Deterministic replay of one stored cheap-talk run: decode the
        // script, re-run the session under the Replay scheduler, compare
        // the re-recorded trace byte-for-byte and the outcome field by
        // field.
        let sink = StoreSink::with_template(
            TraceStore::in_memory(),
            HeaderTemplate {
                plan: Some(PlanKind::CheapTalk),
                n: 5,
                k: 1,
                ..HeaderTemplate::default()
            },
        );
        sink.record(
            &mediator_sim::RunMeta::cell(0, SchedulerKind::Random, 1),
            &recorded,
        );
        assert!(sink.take_error().is_none(), "witness append");
        let store = sink.into_store();
        let run = store.load(0).expect("stored run loads");
        let ns = median_ns_per_op(wsamples, 1, || {
            mediator_store::replay_plan(&plan, &run)
                .expect("replay reproduces")
                .events
        });
        metrics
            .push(Metric::new("replay_cheap_talk_n5", ns).with("events", run.outcome.event_count));
    }

    // The transport plane (DESIGN.md §9): one full cheap-talk execution
    // over real TCP loopback sockets — service, five relay connections
    // (one per player), every protocol message framed, shipped, echoed,
    // and re-injected. The price of the kernel, measured.
    use mediator_core::cheap_talk::CtMsg;
    use mediator_net::{
        bulk_relay, run_over_tcp, AuthKey, Client, MemTransport, Service, ServiceConfig,
    };
    let nsamples = if fast { 3 } else { 5 };
    // Paired with/without authenticated frames: the `_auth` twin seals a
    // SipHash-2-4 MAC onto every shipped Msg and verifies every returned
    // one, so the delta between the two entries *is* the MAC overhead on
    // the wire path (two PRF passes per protocol message).
    for auth in [false, true] {
        let cfg = if auth {
            ServiceConfig::default().with_auth(AuthKey::from_seed(0xbe9c))
        } else {
            ServiceConfig::default()
        };
        let name = if auth {
            "net_cheap_talk_n5_tcp_loopback_auth"
        } else {
            "net_cheap_talk_n5_tcp_loopback"
        };
        let net_out =
            run_over_tcp(&plan, &SchedulerKind::Random, 1, cfg.clone()).expect("tcp loopback run");
        let ns = median_ns_per_op(nsamples, 1, || {
            run_over_tcp(&plan, &SchedulerKind::Random, 1, cfg.clone())
                .expect("tcp loopback run")
                .steps
        });
        metrics.push(
            Metric::new(name, ns)
                .with("messages_sent", net_out.messages_sent)
                .with("steps", net_out.steps),
        );
    }

    // The same TCP-loopback workload with a `StoreSink` wired into the
    // service: every finished session is encoded and appended to an
    // in-memory trace store. The delta against
    // `net_cheap_talk_n5_tcp_loopback` is the whole price of recording —
    // budgeted below 10% of the unrecorded run.
    {
        let run_recorded = || {
            let sink = std::sync::Arc::new(StoreSink::with_template(
                TraceStore::in_memory(),
                HeaderTemplate {
                    plan: Some(PlanKind::CheapTalk),
                    n: 5,
                    k: 1,
                    networked: true,
                    ..HeaderTemplate::default()
                },
            ));
            let cfg = ServiceConfig::default().with_sink(sink.clone());
            let out =
                run_over_tcp(&plan, &SchedulerKind::Random, 1, cfg).expect("tcp loopback run");
            assert!(sink.take_error().is_none(), "trace recorded");
            out
        };
        let net_out = run_recorded();
        let ns = median_ns_per_op(nsamples, 1, || run_recorded().steps);
        metrics.push(
            Metric::new("net_cheap_talk_n5_tcp_loopback_recorded", ns)
                .with("messages_sent", net_out.messages_sent)
                .with("steps", net_out.steps),
        );
    }

    // The multi-session service at the PR 5 shape: 64 concurrent
    // cheap-talk sessions over the in-memory transport, one relay
    // connection (and client thread) per session claiming all five
    // players — ~128k frames through the full framing stack. The workload
    // is kept byte-for-byte comparable with the seed entry; what changed
    // underneath is the engine (one reactor thread instead of a pump
    // thread + reader thread per session/connection).
    let svc_samples = if fast { 2 } else { 3 };
    let sessions = 64u64;
    // Paired with/without auth, same workload byte-for-byte apart from the
    // v2 Msg layout (seq varint + 8-byte MAC trailer per frame).
    for auth in [false, true] {
        let cfg = if auth {
            ServiceConfig::default().with_auth(AuthKey::from_seed(0xbe9c))
        } else {
            ServiceConfig::default()
        };
        let name = if auth {
            "service_64sessions_auth"
        } else {
            "service_64sessions"
        };
        let ns = median_ns_per_op(svc_samples, 1, || {
            let hub = MemTransport::new();
            let service = Service::with_config(Box::new(hub.listener()), cfg.clone());
            let relays: Vec<_> = (0..sessions)
                .map(|sid| {
                    let mut client = Client::<CtMsg>::mem(&hub);
                    std::thread::spawn(move || {
                        for p in 0..5 {
                            client.attach(sid, p).expect("attach");
                        }
                        client.relay().expect("relay")
                    })
                })
                .collect();
            let results = service.run_many(
                &plan,
                (0..sessions).map(|sid| (sid, SchedulerKind::Random, sid)),
            );
            for (sid, result) in results {
                result.unwrap_or_else(|e| panic!("session {sid}: {e}"));
            }
            for relay in relays {
                relay.join().expect("relay thread");
            }
            service.shutdown();
        });
        metrics.push(
            Metric::new(name, ns)
                .with("sessions", sessions)
                .with("hw_threads", workers as u64),
        );
    }

    // The reactor at scale: `sessions` concurrent cheap-talk runs, ALL of
    // them on the single reactor thread, with ONE bulk-relay connection
    // (and one client thread) carrying every player of every session —
    // the whole benchmark is two OS threads of service+client work, so it
    // measures one core driving thousands of interleaved sessions rather
    // than the kernel's thread scheduler.
    let mut svc_scale = |sessions: u64, name: &str, samples: usize| {
        let ns = median_ns_per_op(samples, 1, || {
            let hub = MemTransport::new();
            let service = Service::start(Box::new(hub.listener()));
            let handles: Vec<_> = (0..sessions)
                .map(|sid| service.host_plan(sid, &plan, SchedulerKind::Random, sid))
                .collect();
            let attaches: Vec<(u64, usize)> = (0..sessions)
                .flat_map(|sid| (0..5usize).map(move |p| (sid, p)))
                .collect();
            let (tx, rx) = hub.connect_raw();
            let relay = std::thread::spawn(move || {
                bulk_relay(rx, tx, &attaches, sessions as usize).expect("bulk relay")
            });
            for handle in handles {
                let sid = handle.id();
                handle
                    .outcome()
                    .unwrap_or_else(|e| panic!("session {sid}: {e}"));
            }
            assert_eq!(relay.join().expect("relay thread").len(), sessions as usize);
            service.shutdown();
        });
        metrics.push(
            Metric::new(name, ns)
                .with("sessions", sessions)
                .with("service_threads", 2)
                .with("relay_conns", 1)
                .with("hw_threads", workers as u64),
        );
    };
    svc_scale(1024, "service_1024sessions", if fast { 1 } else { 2 });
    if !fast {
        svc_scale(4096, "service_4096sessions_mem", 1);
    } else {
        println!("service_4096sessions_mem         skipped: --fast (full mode only)");
    }

    // The sharded conformance plane (DESIGN.md §12): the Theorem 4.1
    // sweep once as the local thread fan-out and once sharded over 4
    // in-memory workers. The pair is the lease protocol's price tag on a
    // clean run — framing, lease round trips, and the coordinator-side
    // re-render — over the identical statistical workload (the verdicts
    // are bit-identical by the differential suite, so only time differs).
    {
        use mediator_core::adversary::Conformance;
        use mediator_net::{ShardConfig, ShardedSweep, TransportKind};
        let game = library::byzantine_agreement_game(5);
        let types = vec![1usize; 5];
        let conf = Conformance::new(0.05, 1, 0)
            .battery(vec![SchedulerKind::Random])
            .seeds(if fast { 2 } else { 3 })
            .coalitions(vec![vec![1], vec![3]]);
        let sweep_samples = if fast { 2 } else { 3 };
        let cells = plan.conformance(&game, &types, &conf).cells.len() as u64;
        let ns = median_ns_per_op(sweep_samples, 1, || {
            plan.conformance(&game, &types, &conf).cells.len()
        });
        metrics.push(Metric::new("conformance_sweep_local", ns).with("cells", cells));
        let scfg = ShardConfig::default();
        let ns = median_ns_per_op(sweep_samples, 1, || {
            let (report, log) = conf.sharded(&plan, &game, &types, 4, TransportKind::Mem, &scfg);
            assert!(log.failures.is_empty(), "clean bench run");
            report.cells.len()
        });
        metrics.push(
            Metric::new("conformance_sweep_sharded_4w", ns)
                .with("cells", cells)
                .with("workers", 4)
                .with("hw_threads", workers as u64),
        );
    }

    // The frontier atlas (DESIGN.md §13): the fast grid end to end —
    // every cell's build evidence, conformance sweep, and classification —
    // once on the local thread fan-out and once sharded over 4 in-memory
    // workers per cell. The artifacts are byte-identical by the
    // differential suite, so the pair prices the plane over a
    // heterogeneous-(n, k, t) workload.
    if !net_only {
        use mediator_core::frontier::{run_frontier_local, FrontierSpec};
        use mediator_net::{run_frontier_sharded, ShardConfig, TransportKind};
        let spec = FrontierSpec::fast();
        let grid_cells = spec.cells().len() as u64;
        let atlas_samples = if fast { 2 } else { 3 };
        let ns = median_ns_per_op(atlas_samples, 1, || {
            let atlas = run_frontier_local(&spec);
            assert!(atlas.check().is_ok(), "fast grid matches the theorems");
            atlas.results.len()
        });
        metrics.push(Metric::new("frontier_fast_grid_local", ns).with("cells", grid_cells));
        let scfg = ShardConfig::default().lease_deadline(std::time::Duration::from_secs(60));
        let ns = median_ns_per_op(atlas_samples, 1, || {
            let (atlas, log) = run_frontier_sharded(&spec, 4, TransportKind::Mem, &scfg);
            assert_eq!(log.failures(), 0, "clean bench run");
            atlas.results.len()
        });
        metrics.push(
            Metric::new("frontier_fast_grid_sharded_4w", ns)
                .with("cells", grid_cells)
                .with("workers", 4)
                .with("hw_threads", workers as u64),
        );
    }

    for m in &metrics {
        println!("{:<34} {:>12} ns/op", m.name, m.ns_per_op);
    }
    append_bench_json(std::path::Path::new(out), label, &metrics).expect("write BENCH.json");
    println!("appended entry '{label}' to {out}");
}

/// `--tamper` — the Byzantine-relay smoke battery (DESIGN.md §10): each
/// wire tactic runs paired, once against a plain service (the attack must
/// *succeed* — the cheap-talk outcome diverges from the honest baseline)
/// and once against an authenticated one (the attack must *die* — typed
/// `AuthFailure`, honest neighbor session unaffected). Writes the verdict
/// rows to `out` as JSON and panics — failing CI — on any wrong cell.
fn tamper_battery(out: &str) {
    use mediator_core::adversary::{Window, OPEN_LIE_OFFSET};
    use mediator_net::tamper::{
        run_tampered_pair, DriverMode, TamperPlan, TamperedPair, TransportKind, WireTactic,
        TARGET_SID,
    };
    use mediator_net::{AuthKey, DeliveryOrder, NetError, ServiceConfig, TamperKind};
    use std::time::Duration;

    let n = 5;
    let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(ones_inputs(n))
        .build()
        .expect("n = 5 > 4k+4t = 4");
    let baseline = plan.run_with(&SchedulerKind::Fifo, 0);
    let base_profile = baseline.resolve_default(&vec![0; n]);
    let cfg = |auth: bool| {
        let base = ServiceConfig {
            idle_timeout: Duration::from_millis(1500),
            attach_timeout: Duration::from_secs(10),
            attach_grace: Duration::from_millis(100),
            delivery: DeliveryOrder::Arrival,
            ..ServiceConfig::default()
        };
        if auth {
            base.with_auth(AuthKey::from_seed(0xfeed))
        } else {
            base
        }
    };

    // (name, transport, driver, plan): one cell per tactic, transports and
    // drivers spread across the battery so the smoke run touches mem + TCP
    // and both engines.
    let cells: Vec<(&str, TransportKind, DriverMode, TamperPlan)> = vec![
        (
            "rewrite",
            TransportKind::Mem,
            DriverMode::Reactor,
            TamperPlan::against(TARGET_SID).tactic(
                Window::all(),
                WireTactic::Rewrite {
                    offset: OPEN_LIE_OFFSET,
                },
            ),
        ),
        (
            "redirect",
            TransportKind::Tcp,
            DriverMode::Threaded,
            TamperPlan::against(TARGET_SID).tactic(Window::all(), WireTactic::Redirect),
        ),
        (
            "replay-splice",
            TransportKind::Mem,
            DriverMode::Threaded,
            TamperPlan::against(TARGET_SID)
                .tactic(Window::between(0, 10), WireTactic::Replay)
                .tactic(Window::between(10, 20), WireTactic::Drop),
        ),
        (
            "truncate",
            TransportKind::Tcp,
            DriverMode::Reactor,
            TamperPlan::against(TARGET_SID)
                .tactic(Window::between(5, 6), WireTactic::Truncate { cut: 4 }),
        ),
        (
            "drop",
            TransportKind::Mem,
            DriverMode::Reactor,
            TamperPlan::against(TARGET_SID).tactic(Window::between(5, 15), WireTactic::Drop),
        ),
    ];

    // How each plain-channel attack is expected to land, and which typed
    // verdict the authenticated run must produce. Drop is the documented
    // limitation: undetectable by MACs, owned by IdleTimeout in both modes.
    let describe = |pair: &TamperedPair| -> String {
        match &pair.target {
            Ok(o) if o.resolve_default(&vec![0; n]) != base_profile => {
                format!("silent corruption ({:?}, wrong profile)", o.termination)
            }
            Ok(o) => format!("{:?} (baseline profile)", o.termination),
            Err(e) => format!("{e:?}"),
        }
    };
    let mut rows: Vec<(String, String, String, bool, bool)> = Vec::new();
    let mut all_ok = true;
    for (name, transport, driver, tp) in &cells {
        let plain = run_tampered_pair(
            &plan,
            *transport,
            *driver,
            cfg(false),
            tp.clone(),
            SchedulerKind::Fifo,
            0,
        );
        let authed = run_tampered_pair(
            &plan,
            *transport,
            *driver,
            cfg(true),
            tp.clone(),
            SchedulerKind::Fifo,
            0,
        );
        let attack_succeeded = match &plain.target {
            Ok(o) => o.resolve_default(&vec![0; n]) != base_profile,
            Err(_) => true,
        };
        let (detected, honest_ok) = match (*name, &authed.target) {
            ("drop", Err(NetError::IdleTimeout { .. })) => (true, authed.honest.is_ok()),
            (_, Err(NetError::AuthFailure { session, kind, .. })) => {
                let expect = match *name {
                    "rewrite" | "redirect" => TamperKind::BadMac,
                    "replay-splice" => TamperKind::Replayed,
                    "truncate" => TamperKind::Truncated,
                    _ => unreachable!("drop handled above"),
                };
                (
                    *session == TARGET_SID && *kind == expect,
                    authed.honest.is_ok(),
                )
            }
            _ => (false, authed.honest.is_ok()),
        };
        let pass = attack_succeeded && detected && honest_ok;
        all_ok &= pass;
        rows.push((
            format!("{name} ({transport:?}/{driver:?})"),
            describe(&plain),
            describe(&authed),
            honest_ok,
            pass,
        ));
    }

    let mut t = Table::new(
        "Byzantine-relay battery: attack succeeds plain / dies authenticated",
        &[
            "tactic (cell)",
            "plain channel",
            "authenticated",
            "honest ok",
            "pass",
        ],
    );
    for (name, plain, authed, honest, pass) in &rows {
        t.row(vec![
            name.clone(),
            plain.clone(),
            authed.clone(),
            check(*honest),
            check(*pass),
        ]);
    }
    print!("{t}");

    let mut json = String::from("{\n  \"entries\": [\n");
    for (i, (name, plain, authed, honest, pass)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"cell\": \"{name}\", \"plain\": \"{plain}\", \
             \"authenticated\": \"{authed}\", \"honest_unaffected\": {honest}, \
             \"pass\": {pass} }}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out, json).expect("write tamper JSON");
    println!("wrote {out}");
    assert!(
        all_ok,
        "tamper battery: at least one cell misbehaved (see table)"
    );
}

/// The Theorem 4.1 cheap-talk working point of the conformance battery
/// (n = 5 > 4k + 4t) — factored out so `--replay` can rebuild the exact
/// plan a stored witness names.
fn conformance_cheap_talk_plan() -> CheapTalkPlan {
    let n = 5;
    Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(ones_inputs(n))
        .build()
        .expect("5 > 4")
}

/// The §6.4 naive mediator of the conformance battery (n = 7, k = 2 —
/// below the 4.1 bound, so the harness must find the deviation).
fn conformance_naive_plan() -> MediatorPlan {
    let n = 7;
    let (_, _, k) = library::counterexample_game(n);
    let bot = library::BOTTOM as u64;
    Scenario::mediator(catalog::counterexample_naive(n))
        .players(n)
        .tolerance(k, 0)
        .naive_split()
        .wills(vec![bot; n])
        .resolve_defaults(vec![bot; n])
        .build()
        .expect("n − k ≥ 1")
}

/// The minimally-informative §6.4 fix of the conformance battery.
fn conformance_minfo_plan() -> MediatorPlan {
    let n = 7;
    let (_, _, k) = library::counterexample_game(n);
    let bot = library::BOTTOM as u64;
    Scenario::mediator(catalog::counterexample_minfo(n))
        .players(n)
        .tolerance(k, 0)
        .wills(vec![bot; n])
        .resolve_defaults(vec![bot; n])
        .build()
        .expect("n − k ≥ 1")
}

/// Re-runs one conformance sweep sharded over `workers` in-process mem
/// workers and asserts the rendered report is **byte-identical** to the
/// already-computed local fan-out — the `--shard N` differential pin.
fn shard_check<P: mediator_core::adversary::SweepPlan>(
    name: &str,
    workers: usize,
    plan: &P,
    game: &mediator_games::BayesianGame,
    types: &[usize],
    conf: &mediator_core::adversary::Conformance,
    local: &mediator_core::adversary::ConformanceReport,
) {
    use mediator_net::{ShardConfig, ShardedSweep, TransportKind};
    let cfg = ShardConfig::default().lease_deadline(std::time::Duration::from_secs(60));
    let (sharded, log) = conf.sharded(plan, game, types, workers, TransportKind::Mem, &cfg);
    assert_eq!(
        local.to_json(),
        sharded.to_json(),
        "{name}: sharded sweep diverged from the local fan-out"
    );
    println!(
        "{name}: sharded over {workers} worker(s) — report identical to local \
         ({} units, {} re-leases, {} discarded)",
        log.units, log.releases, log.discarded
    );
}

/// `--conformance` — the statistical ε-resilience conformance battery:
/// the Theorem 4.1 cheap talk at a paper-valid working point (must be
/// resilient), the §6.4 naive mediator below the 4.1 bound (the harness
/// must *find* the profitable deviation), and the minimally-informative
/// fix (resilient again). Writes all three reports to `out` as JSON,
/// persists every Violated verdict's witness run as a replayable trace
/// in `witness_out` (one `experiments -- --replay <path>` from a rerun),
/// and panics — failing CI — on any unexpected verdict. With
/// `shard = Some(n)` every sweep also runs sharded over `n` workers and
/// must render byte-identically (see [`shard_check`]).
fn conformance_battery(out: &str, witness_out: &str, fast: bool, shard: Option<usize>) {
    use mediator_core::adversary::Conformance;

    let seeds = if fast { 16 } else { 48 };
    let ct_seeds = if fast { 3 } else { 6 };
    println!(
        "# conformance battery ({seeds} seeds/kind on mediator games, \
         {ct_seeds} on cheap talk) → {out}"
    );
    let mut entries: Vec<(&str, mediator_core::adversary::ConformanceReport)> = Vec::new();

    // Theorem 4.1 working point: n = 5 > 4k + 4t.
    let n = 5;
    let game = library::byzantine_agreement_game(n);
    let plan = conformance_cheap_talk_plan();
    let ct_conf = Conformance::new(0.05, 1, 0)
        .battery(if fast {
            vec![SchedulerKind::Random]
        } else {
            vec![
                SchedulerKind::Random,
                SchedulerKind::Fifo,
                SchedulerKind::Lifo,
            ]
        })
        .seeds(ct_seeds);
    let report = plan.conformance(&game, &vec![1usize; n], &ct_conf);
    assert!(
        report.is_resilient(),
        "Theorem 4.1 cheap talk must be resilient: {:?}",
        report.verdict
    );
    if let Some(w) = shard {
        shard_check(
            "cheap_talk_thm41_n5",
            w,
            &plan,
            &game,
            &vec![1usize; n],
            &ct_conf,
            &report,
        );
    }
    entries.push(("cheap_talk_thm41_n5", report));

    // §6.4: naive mediator at n = 7, k = 2 (n ≤ 4k — below the 4.1 bound).
    let n = 7;
    let (game, _, k) = library::counterexample_game(n);
    let bot = library::BOTTOM as u64;
    let cfg = Conformance::new(0.01, k, 0)
        .battery(vec![SchedulerKind::Random])
        .seeds(seeds)
        .coalitions(vec![vec![0], vec![0, 1]])
        .deadlock_action(bot);
    let naive = conformance_naive_plan();
    let report = naive.conformance(&game, &vec![0; n], &cfg);
    let witness = report
        .witness()
        .expect("the naive mediator's profitable deviation must be found")
        .clone();
    assert_eq!(witness.strategy, "deadlock-if-bit=0");
    if let Some(w) = shard {
        shard_check(
            "naive_mediator_sec6_4",
            w,
            &naive,
            &game,
            &vec![0; n],
            &cfg,
            &report,
        );
    }
    entries.push(("naive_mediator_sec6_4", report));

    let fixed = conformance_minfo_plan();
    let report = fixed.conformance(&game, &vec![0; n], &cfg);
    assert!(
        report.is_resilient(),
        "min-info mediator must be resilient: {:?}",
        report.verdict
    );
    if let Some(w) = shard {
        shard_check(
            "min_info_mediator_sec6_4",
            w,
            &fixed,
            &game,
            &vec![0; n],
            &cfg,
            &report,
        );
    }
    entries.push(("min_info_mediator_sec6_4", report));

    let mut t = Table::new(
        "Conformance verdicts",
        &["scenario", "cells", "verdict", "max gain"],
    );
    for (name, rep) in &entries {
        let verdict = if rep.is_resilient() {
            "ε-k-resilient".to_string()
        } else {
            format!(
                "VIOLATED ({})",
                rep.witness().expect("non-resilient").strategy
            )
        };
        t.row(vec![
            name.to_string(),
            rep.cells.len().to_string(),
            verdict,
            f4(rep.max_gain()),
        ]);
    }
    print!("{t}");
    println!("witness: {witness}");

    let mut json = String::from("{\n  \"entries\": [\n");
    for (i, (name, rep)) in entries.iter().enumerate() {
        let body: String = rep
            .to_json()
            .lines()
            .map(|l| format!("      {l}\n"))
            .collect();
        json.push_str(&format!(
            "    {{ \"name\": \"{name}\",\n      \"report\":\n{body}    }}{}\n",
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out, json).expect("write conformance JSON");
    println!("wrote {out}");

    // Persist every Violated verdict's witness run as a replayable trace:
    // the deviant cell is rebuilt from its (strategy, coalition) recipe,
    // re-run at the witnessing (scheduler, seed), and recorded with the
    // recipe in the header metadata so `--replay` needs nothing else.
    let mut wstore = mediator_store::TraceStore::create(std::path::Path::new(witness_out))
        .expect("create witness trace store");
    let mut stored = 0u64;
    for (i, (name, rep)) in entries.iter().enumerate() {
        let Some(w) = rep.witness() else { continue };
        let (plan_kind, outcome, n, k) = match *name {
            "cheap_talk_thm41_n5" => {
                let base = conformance_cheap_talk_plan();
                let cell = cheap_talk_deviant_cells(&base, &w.coalition)
                    .into_iter()
                    .find(|(s, _)| *s == w.strategy)
                    .unwrap_or_else(|| panic!("unknown cheap-talk strategy '{}'", w.strategy))
                    .1;
                let out = cell.run_with(&w.kind, w.seed);
                (mediator_store::PlanKind::CheapTalk, out, 5u64, 1u64)
            }
            med @ ("naive_mediator_sec6_4" | "min_info_mediator_sec6_4") => {
                let base = if med == "naive_mediator_sec6_4" {
                    conformance_naive_plan()
                } else {
                    conformance_minfo_plan()
                };
                let cell = mediator_deviant_cells(&base, &w.coalition, Some(bot))
                    .into_iter()
                    .find(|(s, _)| *s == w.strategy)
                    .unwrap_or_else(|| panic!("unknown mediator strategy '{}'", w.strategy))
                    .1;
                let out = cell.run_with(&w.kind, w.seed);
                (mediator_store::PlanKind::Mediator, out, 7u64, k as u64)
            }
            other => panic!("no witness recipe for conformance entry '{other}'"),
        };
        let coalition = w
            .coalition
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut header = mediator_store::RunHeader::bare(i as u64, w.seed);
        header.kind = Some(w.kind.clone());
        header.plan = plan_kind;
        header.n = n;
        header.k = k;
        header.meta = vec![
            ("entry".to_string(), name.to_string()),
            ("strategy".to_string(), w.strategy.clone()),
            ("coalition".to_string(), coalition),
            ("deadlock".to_string(), bot.to_string()),
        ];
        wstore.record(header, &outcome).expect("record witness");
        stored += 1;
    }
    if stored > 0 {
        println!("stored {stored} witness trace(s) → {witness_out}");
        println!(
            "reproduce: cargo run -p mediator-bench --bin experiments -- --replay {witness_out}"
        );
    }
}

/// `--frontier` — the lower-bound frontier atlas (DESIGN.md §13): run the
/// grid, machine-check it against the theorem predicates, persist every
/// `Violated` cell's witness run with its typed rebuild recipe, and write
/// the deterministic `FRONTIER.json`. With `--shard N` the grid
/// additionally runs over the PR 9 coordinator/worker plane and the
/// artifact is asserted byte-identical to the local fan-out.
fn frontier_atlas(out: &str, witness_out: &str, fast: bool, shard: Option<usize>) {
    use mediator_core::frontier::{companion_plan, run_frontier_local, FrontierSpec, BOT};
    use mediator_store::FrontierRecipe;

    let spec = if fast {
        FrontierSpec::fast()
    } else {
        FrontierSpec::full()
    };
    println!(
        "# frontier atlas: '{}' grid, {} cells",
        spec.name,
        spec.cells().len()
    );
    let atlas = run_frontier_local(&spec);

    let mut t = Table::new(
        "Frontier atlas — empirical classification vs theorem predicate",
        &["cell", "bound", "admits", "experiment", "class", "max gain"],
    );
    for r in &atlas.results {
        t.row(vec![
            r.cell.key(),
            format!("n > {}", r.cell.bound()),
            r.cell.admits().to_string(),
            r.experiment.to_string(),
            r.class.name().to_string(),
            r.max_gain.map(f4).unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{t}");
    let (res, vio, inc) = atlas.counts();
    println!("resilient {res} / violated {vio} / inconclusive {inc}");

    // The machine check: the empirical boundary must coincide with the
    // theorem predicate on every cell.
    if let Err(mismatches) = atlas.check() {
        for m in &mismatches {
            eprintln!("MISMATCH: {m}");
        }
        eprintln!(
            "{} cell(s) contradict the theorem predicate",
            mismatches.len()
        );
        std::process::exit(1);
    }
    println!("machine check: empirical boundary == theorem predicate on all cells");

    // The sharded differential: the whole grid over the coordinator/
    // worker plane must render the identical artifact, byte for byte.
    if let Some(workers) = shard {
        use mediator_net::{run_frontier_sharded, ShardConfig, TransportKind};
        let cfg = ShardConfig::default().lease_deadline(std::time::Duration::from_secs(60));
        let (sharded, log) = run_frontier_sharded(&spec, workers, TransportKind::Mem, &cfg);
        assert_eq!(
            atlas.to_json(),
            sharded.to_json(),
            "sharded atlas ({workers} workers) diverged from the local fan-out"
        );
        println!(
            "sharded differential ({} workers, mem): byte-identical artifact, \
             {} units leased, {} witnesses re-enacted, {} failures",
            workers,
            log.units(),
            log.witnesses_reenacted(),
            log.failures()
        );
    }

    std::fs::write(out, atlas.to_json()).expect("write FRONTIER.json");
    println!("wrote {out}");

    // Persist every Violated cell's witness as a replayable trace: the
    // deviant companion plan is rebuilt from the cell coordinates and the
    // witness's (strategy, coalition) recipe, re-run at the witnessing
    // (scheduler, seed), and recorded under a typed FrontierRecipe header
    // so `--replay` needs nothing else.
    let mut wstore = mediator_store::TraceStore::create(std::path::Path::new(witness_out))
        .expect("create frontier witness store");
    let mut stored = 0u64;
    for (i, r) in atlas.violated().enumerate() {
        let w = r.witness.as_ref().expect("violated cells carry witnesses");
        let plan = companion_plan(r.cell.n, r.cell.k, r.cell.t);
        let cell = mediator_deviant_cells(&plan, &w.coalition, Some(BOT))
            .into_iter()
            .find(|(s, _)| *s == w.strategy)
            .unwrap_or_else(|| panic!("unknown mediator strategy '{}'", w.strategy))
            .1;
        let outcome = cell.run_with(&w.kind, w.seed);
        let recipe = FrontierRecipe {
            theorem: r.cell.theorem.name().to_string(),
            cell_key: r.cell.key(),
            strategy: w.strategy.clone(),
            coalition: w.coalition.clone(),
            deadlock: BOT,
        };
        let mut header = mediator_store::RunHeader::bare(i as u64, w.seed);
        header.kind = Some(w.kind.clone());
        header.plan = mediator_store::PlanKind::Mediator;
        header.n = r.cell.n as u64;
        header.k = r.cell.k as u64;
        header.t = r.cell.t as u64;
        header.meta = recipe.meta();
        wstore.record(header, &outcome).expect("record witness");
        stored += 1;
    }
    println!("stored {stored} witness trace(s) → {witness_out}");
    println!("reproduce: cargo run -p mediator-bench --bin experiments -- --replay {witness_out}");
}

/// `--replay <store>` — re-enacts every run persisted in a trace log and
/// checks each reproduces byte-identically: the header's metadata names
/// the conformance entry and the (strategy, coalition) recipe, the plan
/// is rebuilt from the same single-sourced deviant-cell tables the sweep
/// used, and [`mediator_store::replay_plan`] pins the re-recorded trace
/// against the stored one. Exits nonzero on any divergence.
fn replay_store(path: &str) {
    let store =
        mediator_store::TraceStore::open(std::path::Path::new(path)).expect("open trace store");
    println!("# replaying {} stored run(s) from {path}", store.len());
    let mut failures = 0usize;
    for id in store.ids().collect::<Vec<_>>() {
        let run = store.load(id).expect("stored run loads");
        let entry = run.header.meta_value("entry").unwrap_or("?").to_string();
        let strategy = run.header.meta_value("strategy").map(str::to_string);
        let coalition: Vec<usize> = run
            .header
            .meta_value("coalition")
            .map(|s| {
                s.split(',')
                    .filter(|p| !p.is_empty())
                    .map(|p| p.parse().expect("coalition member id"))
                    .collect()
            })
            .unwrap_or_default();
        let deadlock: Option<u64> = run
            .header
            .meta_value("deadlock")
            .and_then(|s| s.parse().ok());
        let result = match entry.as_str() {
            "cheap_talk_thm41_n5" => {
                let mut plan = conformance_cheap_talk_plan();
                if let Some(strategy) = &strategy {
                    plan = cheap_talk_deviant_cells(&plan, &coalition)
                        .into_iter()
                        .find(|(s, _)| s == strategy)
                        .unwrap_or_else(|| panic!("unknown cheap-talk strategy '{strategy}'"))
                        .1;
                }
                mediator_store::replay_plan(&plan, &run).map(|r| r.termination)
            }
            med @ ("naive_mediator_sec6_4" | "min_info_mediator_sec6_4") => {
                let mut plan = if med == "naive_mediator_sec6_4" {
                    conformance_naive_plan()
                } else {
                    conformance_minfo_plan()
                };
                if let Some(strategy) = &strategy {
                    plan = mediator_deviant_cells(&plan, &coalition, deadlock)
                        .into_iter()
                        .find(|(s, _)| s == strategy)
                        .unwrap_or_else(|| panic!("unknown mediator strategy '{strategy}'"))
                        .1;
                }
                mediator_store::replay_plan(&plan, &run).map(|r| r.termination)
            }
            mediator_store::FrontierRecipe::ENTRY => {
                // A frontier-atlas witness: the header's typed recipe plus
                // its (n, k, t) fields rebuild the companion plan and its
                // deviant cell from scratch.
                let recipe = mediator_store::FrontierRecipe::from_header(&run.header)
                    .expect("frontier witnesses carry a well-formed recipe");
                let plan = mediator_core::frontier::companion_plan(
                    run.header.n as usize,
                    run.header.k as usize,
                    run.header.t as usize,
                );
                let plan = mediator_deviant_cells(&plan, &recipe.coalition, Some(recipe.deadlock))
                    .into_iter()
                    .find(|(s, _)| *s == recipe.strategy)
                    .unwrap_or_else(|| panic!("unknown frontier strategy '{}'", recipe.strategy))
                    .1;
                mediator_store::replay_plan(&plan, &run).map(|r| r.termination)
            }
            other => {
                println!("run {id}: no recipe for entry '{other}', skipped");
                continue;
            }
        };
        let strategy = strategy.as_deref().unwrap_or("honest");
        let cell = format!(
            "{entry} / {strategy} / coalition {coalition:?} / {:?} seed {}",
            run.header.kind, run.header.seed
        );
        match result {
            Ok(t) => println!("run {id} [{cell}]: reproduced byte-identically, {t:?}"),
            Err(e) => {
                failures += 1;
                println!("run {id} [{cell}]: REPLAY FAILED: {e:?}");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} stored run(s) failed to reproduce");
        std::process::exit(1);
    }
    println!("all runs reproduced");
}

/// E11 — quick wall-clock substrate measurements (the Criterion benches in
/// `crates/bench/benches/` are the precise companion; this row gives the
/// one-shot orders of magnitude).
fn e11_substrate_timings() {
    use mediator_field::{rs, Poly};
    use std::time::Instant;
    let mut t = Table::new(
        "E11 — substrate one-shot timings (see `cargo bench` for distributions)",
        &["operation", "params", "time"],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    use rand::SeedableRng;

    let p = Poly::random_with_secret(Fp::new(5), 4, &mut rng);
    let mut pts: Vec<(Fp, Fp)> = (1..=17u64)
        .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
        .collect();
    for pt in pts.iter_mut().take(4) {
        pt.1 += Fp::new(99);
    }
    let start = Instant::now();
    let iters = 200;
    for _ in 0..iters {
        let _ = rs::decode_robust(&pts, 4, 4).unwrap();
    }
    t.row(vec![
        "Berlekamp–Welch decode".into(),
        "deg 4, e 4, n 17".into(),
        format!("{:?}/op", start.elapsed() / iters),
    ]);

    let spec = majority_spec_robust(5, 1, 0);
    let inputs = ones_inputs(5);
    let start = Instant::now();
    let out = run_with_deviant(&spec, &inputs, None, &SchedulerKind::Random, 1);
    t.row(vec![
        "cheap talk (Thm 4.1)".into(),
        format!("n 5, majority, {} msgs", out.messages_sent),
        format!("{:?}", start.elapsed()),
    ]);

    let med = MediatorGameSpec::standard(
        5,
        1,
        0,
        catalog::majority_circuit(5),
        vec![vec![Fp::ZERO]; 5],
    );
    let start = Instant::now();
    let out = run_mediator_game(
        &med,
        &inputs,
        BTreeMap::new(),
        &SchedulerKind::Random,
        1,
        200_000,
    );
    t.row(vec![
        "mediator game".into(),
        format!("n 5, majority, {} msgs", out.messages_sent),
        format!("{:?}", start.elapsed()),
    ]);
    print!("{t}");
}

/// E1 — Theorem 4.1: `n > 4k + 4t` suffices for full robustness; below it
/// the construction is rejected (the OEC liveness bound is unsatisfiable).
fn e1_thresholds_robust(samples: usize) {
    let mut t = Table::new(
        "E1 — Theorem 4.1 thresholds (robust cheap talk, majority mediator)",
        &[
            "k",
            "t",
            "n",
            "paper",
            "built?",
            "honest ok",
            "f silent ok",
            "f liars ok",
            "msgs/run",
        ],
    );
    for &(k, tt) in &[(1usize, 0usize), (0, 1), (1, 1)] {
        let f = k + tt;
        for n in [4 * f, 4 * f + 1, 4 * f + 3] {
            let paper = if n > 4 * f {
                "n > 4k+4t ✓"
            } else {
                "n ≤ 4k+4t ✗"
            };
            // The builder validates the Theorem 4.1 threshold at build
            // time; below 4f+1 decoding the degree-2f product openings
            // with f errors is information-theoretically impossible
            // anyway (see vss::reconstruct for the ambiguity witness).
            let built = Scenario::cheap_talk(catalog::majority_circuit(n))
                .players(n)
                .tolerance(k, tt)
                .inputs(ones_inputs(n))
                .build();
            let Ok(plan) = built else {
                t.row(vec![
                    k.to_string(),
                    tt.to_string(),
                    n.to_string(),
                    paper.into(),
                    check(false),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                ]);
                continue;
            };
            // Three seed-sweep batches: honest, f players silent, f
            // players lying in openings.
            let deviant_plan = |b: Behavior| {
                let mut p = plan.clone();
                for player in 0..f {
                    p = p.with_deviant(player, b.clone());
                }
                p
            };
            let honest = plan.seeds(0..samples as u64).run_batch();
            let honest_ok = honest
                .outcomes()
                .all(|out| out.resolve_default(&vec![0; n]) == vec![1; n]);
            let msgs: u64 = honest.outcomes().map(|o| o.messages_sent).sum();
            let silent_ok = deviant_plan(Behavior {
                silent: true,
                ..Behavior::default()
            })
            .seeds(0..samples as u64)
            .run_batch()
            .outcomes()
            .all(|out| (f..n).all(|p| out.moves[p] == Some(1)));
            let liar_ok = deviant_plan(Behavior {
                lie_in_opens: true,
                ..Behavior::default()
            })
            .seeds(0..samples as u64)
            .run_batch()
            .outcomes()
            .all(|out| (f..n).all(|p| out.moves[p] == Some(1)));
            t.row(vec![
                k.to_string(),
                tt.to_string(),
                n.to_string(),
                paper.into(),
                check(true),
                check(honest_ok),
                check(silent_ok),
                check(liar_ok),
                (msgs / samples as u64).to_string(),
            ]);
        }
    }
    print!("{t}");
}

/// E1b — empirical (k,t)-robustness over the deviation battery: gains and
/// harms per attack on the Byzantine-agreement game (Theorem 4.1's
/// "equilibrium survives the transform" claim, measured).
fn e1b_robustness_report(samples: usize) {
    let n = 5;
    let game = library::byzantine_agreement_game(n);
    let spec = majority_spec_robust(n, 1, 0);
    let types = vec![1usize; n];
    let inputs = ones_inputs(n);
    let report = mediator_core::deviations::cheap_talk_robustness_report(
        &spec, &game, &types, &inputs, 2, samples,
    );

    // Theorem 4.1's actual claim: the cheap talk matches the *mediator game*
    // under the same deviation. Compute the mediator-game honest harm for
    // the not-moving deviations (the deviator simply never moves there too).
    let med = MediatorGameSpec::standard(
        n,
        1,
        0,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
    );
    let med_harm_not_moving = {
        let mut honest_sum = 0.0;
        for seed in 0..samples as u64 {
            let mut deviants: BTreeMap<usize, Box<dyn Process<MedMsg>>> = BTreeMap::new();
            deviants.insert(2, Box::new(mediator_core::deviations::SilentProcess));
            let out = run_mediator_game(
                &med,
                &inputs,
                deviants,
                &SchedulerKind::Random,
                seed,
                200_000,
            );
            let mut actions: Vec<usize> = out.resolve_default(&vec![0; n + 1])[..n]
                .iter()
                .map(|&a| a as usize)
                .collect();
            // The deviator never moved; its default 0 breaks unanimity just
            // as in the cheap-talk game.
            actions[2] = usize::from(out.moves[2].map(|a| a as usize).unwrap_or(0) == 1);
            honest_sum += game.utilities(&types, &actions)[0];
        }
        1.0 - honest_sum / samples as f64 // baseline honest utility is 1
    };

    let mut t = Table::new(
        "E1b — deviation battery on the robust cheap talk (BA game, deviator = player 2)",
        &[
            "deviation",
            "deviator gain",
            "honest harm (CT)",
            "honest harm (mediator game)",
            "note",
        ],
    );
    for row in &report.rows {
        let (med_harm, note) = match row.name.as_str() {
            "silent" | "refuse-move" => (
                f4(med_harm_not_moving),
                "not moving breaks unanimity — in both games equally",
            ),
            "crash-mid" => ("≤ same".to_string(), "tolerated: f = 1 crash is corrected"),
            "lie-opens" => (
                "n/a (no openings)".to_string(),
                "corrected by OEC: no gain, no harm",
            ),
            "lie-input" => ("0.0000".to_string(), "own input; unanimity keeps majority"),
            _ => (String::new(), ""),
        };
        t.row(vec![
            row.name.clone(),
            f4(row.gain()),
            f4(row.harm()),
            med_harm,
            note.into(),
        ]);
    }
    print!("{t}");
    println!(
        "max deviator gain over the battery: {} — no message-level attack profits; \
         the only honest harm comes from the deviator not moving, which costs the \
         honest players exactly as much in the mediator game (implementation, not protocol weakness)",
        f4(report.max_gain()),
    );
}

/// E2 — Theorem 4.2: at `n > 3k + 3t` the ε-variant completes honest runs,
/// survives silence, and *detects* (rather than corrects) active lies;
/// the accepted-wrong-value rate stays ≤ ε.
fn e2_epsilon(samples: usize) {
    let mut t = Table::new(
        "E2 — Theorem 4.2 (ε cheap talk at n = 3f+1, majority mediator)",
        &[
            "k",
            "t",
            "n",
            "κ",
            "honest ok",
            "silent ok",
            "liar: abort/stall",
            "wrong accepted",
            "msgs/run",
        ],
    );
    for &(k, tt) in &[(0usize, 1usize), (1, 1)] {
        let f = k + tt;
        let n = 3 * f + 1;
        let kappa = 3;
        let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
            .players(n)
            .tolerance(k, tt)
            .epsilon(kappa)
            .inputs(ones_inputs(n))
            .build()
            .expect("n = 3f+1 > 3k+3t");
        let honest = plan.seeds(0..samples as u64).run_batch();
        let honest_ok = honest
            .outcomes()
            .all(|out| out.resolve_default(&vec![0; n]) == vec![1; n]);
        let msgs: u64 = honest.outcomes().map(|o| o.messages_sent).sum();
        let silent_ok = plan
            .clone()
            .with_deviant(
                0,
                Behavior {
                    silent: true,
                    ..Behavior::default()
                },
            )
            .seeds(0..samples as u64)
            .run_batch()
            .outcomes()
            .all(|out| (1..n).all(|p| out.moves[p] == Some(1)));
        let liar = plan
            .clone()
            .with_deviant(
                0,
                Behavior {
                    lie_in_opens: true,
                    ..Behavior::default()
                },
            )
            .seeds(0..samples as u64)
            .run_batch();
        let mut aborts = 0usize;
        let mut wrong = 0usize;
        for out in liar.outcomes() {
            // Every honest player either stalls/aborts to default (0) or
            // moves the true value; accepting a *wrong* value is the ε-event.
            for p in 1..n {
                match out.moves[p] {
                    Some(1) => {}
                    None | Some(0) => aborts += 1,
                    Some(_) => wrong += 1,
                }
            }
        }
        let silent_cell = if silent_ok {
            check(true)
        } else {
            "stalls*".to_string()
        };
        t.row(vec![
            k.to_string(),
            tt.to_string(),
            n.to_string(),
            kappa.to_string(),
            check(honest_ok),
            silent_cell,
            format!("{aborts}/{}", samples * (n - 1)),
            format!("{wrong} (ε ≈ 2^-61·κ)"),
            (msgs / samples as u64).to_string(),
        ]);
    }
    print!("{t}");
    println!(
        "*at n = 3f+1 with k < t, a silent player stalls the degree-2f mul openings \
         (they need deg+t+1 = n points): the BKR guaranteed-output-delivery gap, \
         substituted by detect-and-abort — see EXPERIMENTS.md. For k ≥ t the margin \
         covers it (the k=1,t=1 row survives silence)."
    );
}

/// E3 — Theorem 4.4: punishment wills + cotermination barrier at
/// `n > 3k + 4t`. Crashing players either leave everyone finishing or
/// everyone punished — never a mix; message count is bounded.
fn e3_punishment(samples: usize) {
    let mut t = Table::new(
        "E3 — Theorem 4.4 (punishment wills + cotermination, n > 3k+4t)",
        &[
            "k",
            "t",
            "n",
            "runs",
            "coterminated",
            "finish",
            "punish-all",
            "mixed",
            "msgs/run",
        ],
    );
    for &(k, tt) in &[(1usize, 0usize), (1, 1)] {
        let n = (3 * k + 4 * tt + 1).max(4 * (k + tt) + 1); // engine robustness also needs n > 4f
        let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
            .players(n)
            .tolerance(k, tt)
            .wills(vec![3; n]) // punishment action, out of the game's range on purpose
            .inputs(ones_inputs(n))
            .build()
            .expect("n > 3k+4t by construction");
        let (mut finish, mut punish, mut mixed) = (0usize, 0usize, 0usize);
        let mut msgs = 0u64;
        // The crash point varies with the seed, so this stays a per-seed
        // sweep of the plan rather than one fixed-deviant batch.
        for seed in 0..samples as u64 {
            let out = plan
                .clone()
                .with_deviant(
                    1,
                    Behavior {
                        crash_after_sends: Some(40 + seed % 40),
                        ..Behavior::default()
                    },
                )
                .run_with(&SchedulerKind::Random, seed);
            msgs += out.messages_sent;
            let honest: Vec<bool> = (0..n)
                .filter(|&p| p != 1)
                .map(|p| out.moves[p].is_some())
                .collect();
            if honest.iter().all(|&b| b) {
                finish += 1;
            } else if honest.iter().all(|&b| !b) {
                punish += 1;
            } else {
                mixed += 1;
            }
        }
        t.row(vec![
            k.to_string(),
            tt.to_string(),
            n.to_string(),
            samples.to_string(),
            check(mixed == 0),
            finish.to_string(),
            punish.to_string(),
            mixed.to_string(),
            (msgs / samples as u64).to_string(),
        ]);
    }
    print!("{t}");
}

/// E3b — the relaxed-scheduler deadlock machinery (Lemma 6.10 /
/// Proposition 6.9): withholding the mediator's STOP batch deadlocks the
/// canonical game uniformly and the punishment wills fire.
fn e3b_relaxed_deadlock(samples: usize) {
    let n = 5;
    let plan = Scenario::mediator(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .wills(vec![9; n])
        .inputs(ones_inputs(n))
        .build()
        .expect("n − k − t ≥ 1");
    let mut all_punished = 0usize;
    let mut all_finished = 0usize;
    let mut mixed = 0usize;
    for seed in 0..samples as u64 {
        let out = plan.run_relaxed(n as u64 + 1 + seed % 3, seed);
        let moved: Vec<bool> = (0..n).map(|p| out.moves[p].is_some()).collect();
        if moved.iter().all(|&b| b) {
            all_finished += 1;
        } else if moved.iter().all(|&b| !b) {
            all_punished += 1;
        } else {
            mixed += 1;
        }
    }
    println!("\n## E3b — relaxed scheduler (Lemma 6.10): mediator STOP batch withheld\n");
    println!(
        "{samples} runs: all-finished {all_finished}, all-punished {all_punished}, mixed {mixed} \
         (the all-or-none batch rule makes mixed = 0 — Definition 5.3's cotermination for free)"
    );
}

/// E4 — Theorem 4.5: ε + punishment at `n > 2k + 3t`.
fn e4_eps_punishment(samples: usize) {
    let mut t = Table::new(
        "E4 — Theorem 4.5 (ε + punishment, n > 2k+3t)",
        &["k", "t", "n", "honest ok", "crash→coterminated", "msgs/run"],
    );
    for &(k, tt) in &[(0usize, 1usize), (1, 1)] {
        let n = 2 * k + 3 * tt + 1;
        let plan = Scenario::cheap_talk(catalog::majority_circuit(n))
            .players(n)
            .tolerance(k, tt)
            .epsilon(3)
            .wills(vec![3; n])
            .inputs(ones_inputs(n))
            .build()
            .expect("n = 2k+3t+1 > 2k+3t");
        let honest = plan.seeds(0..samples as u64).run_batch();
        let honest_ok = honest
            .outcomes()
            .all(|out| out.moves[..n].iter().all(|m| m == &Some(1)));
        let msgs: u64 = honest.outcomes().map(|o| o.messages_sent).sum();
        let cotermination = plan
            .clone()
            .with_deviant(
                0,
                Behavior {
                    crash_after_sends: Some(30),
                    ..Behavior::default()
                },
            )
            .seeds(0..samples as u64)
            .run_batch()
            .outcomes()
            .all(|out| {
                let honest: Vec<bool> = (1..n).map(|p| out.moves[p].is_some()).collect();
                honest.iter().all(|&b| b) || honest.iter().all(|&b| !b)
            });
        t.row(vec![
            k.to_string(),
            tt.to_string(),
            n.to_string(),
            check(honest_ok),
            check(cotermination),
            (msgs / samples as u64).to_string(),
        ]);
    }
    print!("{t}");
}

/// E5 — the `O(nNc)` message bound: measured scaling of messages in the
/// player count `n` and the circuit size `c`.
fn e5_message_scaling() {
    let mut t = Table::new(
        "E5 — message complexity scaling (robust cheap talk)",
        &["sweep", "x", "gates c", "messages", "fitted exponent"],
    );
    // Sweep n at fixed small circuit.
    let mut pts_n = Vec::new();
    for &n in &[5usize, 7, 9, 11] {
        let spec = CheapTalkSpec::theorem_4_1(
            n,
            1,
            0,
            catalog::sum_circuit(n),
            vec![vec![Fp::ZERO]; n],
            vec![0; n],
        );
        let inputs = ones_inputs(n);
        let out = run_with_deviant(&spec, &inputs, None, &SchedulerKind::Random, 5);
        pts_n.push((n as f64, out.messages_sent as f64));
        t.row(vec![
            "n".into(),
            n.to_string(),
            catalog::sum_circuit(n).size().to_string(),
            out.messages_sent.to_string(),
            "".into(),
        ]);
    }
    let slope_n = loglog_slope(&pts_n);
    t.row(vec![
        "n".into(),
        "slope".into(),
        "—".into(),
        "—".into(),
        f4(slope_n),
    ]);

    // Sweep c (mul gates) at fixed n. Total messages are base + α·muls, so
    // linearity shows in the *marginal* cost per added multiplication, not
    // in a raw log-log exponent (the dealing-phase intercept dominates).
    let n = 5;
    let mut pts_c = Vec::new();
    for &depth in &[1usize, 2, 4, 8, 16] {
        let circuit = catalog::work_circuit(n, 2, depth);
        let muls = circuit.mul_count();
        let spec =
            CheapTalkSpec::theorem_4_1(n, 1, 0, circuit, vec![vec![Fp::ZERO]; n], vec![0; n]);
        let inputs = ones_inputs(n);
        let out = run_with_deviant(&spec, &inputs, None, &SchedulerKind::Random, 5);
        pts_c.push((muls as f64, out.messages_sent as f64));
        t.row(vec![
            "c".into(),
            depth.to_string(),
            muls.to_string(),
            out.messages_sent.to_string(),
            "".into(),
        ]);
    }
    // Marginal messages per multiplication between consecutive sweep points:
    // constant ⇒ linear in c.
    let marginals: Vec<f64> = pts_c
        .windows(2)
        .map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0))
        .collect();
    let spread = marginals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - marginals.iter().cloned().fold(f64::INFINITY, f64::min);
    t.row(vec![
        "c".into(),
        "marginal".into(),
        "msgs/mul".into(),
        format!(
            "{:?}",
            marginals.iter().map(|m| m.round()).collect::<Vec<_>>()
        ),
        format!("spread {spread:.1}"),
    ]);
    print!("{t}");
    println!(
        "paper: O(nNc) — the marginal cost per multiplication is flat \
         ({marginals:.0?} msgs/mul: linear in c), and the n-sweep fits exponent {} \
         (the substrate's broadcasts cost n² per opening, so the measured n-exponent \
         sits above the paper's per-N·c accounting)",
        f4(slope_n)
    );
}

/// E6 — implementation distance: the sets of scheduler-induced outcome
/// distributions of the cheap-talk and mediator games.
fn e6_implementation(samples: usize) {
    let mut t = Table::new(
        "E6 — implementation distance over the scheduler battery",
        &[
            "game",
            "n",
            "kinds",
            "samples",
            "set distance",
            "weak distance",
        ],
    );
    // Majority with scheduler-proof inputs: both sides are point masses.
    // One RunSet per side per game — the battery × seed grids run on the
    // worker pool and arrive with their per-kind distributions built in.
    let n = 5;
    let kinds = SchedulerKind::battery(n);
    for (label, circuit) in [
        ("majority (unanimous)", catalog::majority_circuit(n)),
        ("coin (min-info §6.4)", catalog::counterexample_minfo(n)),
    ] {
        let ct_builder = Scenario::cheap_talk(circuit.clone())
            .players(n)
            .tolerance(1, 0);
        let md_builder = Scenario::mediator(circuit).players(n).tolerance(1, 0);
        let (ct_builder, md_builder) = if label.starts_with("majority") {
            (
                ct_builder.inputs(ones_inputs(n)),
                md_builder.inputs(ones_inputs(n)),
            )
        } else {
            (ct_builder, md_builder) // the coin circuit takes no inputs
        };
        let ct = ct_builder
            .build()
            .expect("5 > 4")
            .battery(kinds.clone())
            .seeds(0..samples as u64)
            .run_batch();
        let md = md_builder
            .build()
            .expect("n − k − t ≥ 1")
            .battery(kinds.clone())
            .seeds(0..samples as u64)
            .run_batch();
        let rep = compare_run_sets(&ct, &md);
        t.row(vec![
            label.into(),
            n.to_string(),
            rep.kinds.to_string(),
            rep.samples.to_string(),
            f4(rep.distance),
            f4(rep.weak_distance),
        ]);
    }
    print!("{t}");
    println!("(sampling noise at {samples} samples/kind is ≈ {:.3}; distances below that are statistical zeros)",
        2.0 / (samples as f64).sqrt());
}

/// E7 — the §6.4 counterexample, numbers straight from the paper.
fn e7_counterexample(samples: u64) {
    let n = 7;
    let (game, mediated, k) = library::counterexample_game(n);
    let mut t = Table::new(
        format!("E7 — §6.4 counterexample (n = {n}, k = {k}), paper values: σ = 1.5, ⊥ = 1.1, naive deviation = 1.55"),
        &["mediator", "coalition", "coalition payoff", "paired gain", "paper"],
    );

    // Game-layer ground truth.
    let value = library::dist_utilities(&game, &vec![0; n], &mediated)[0];
    let rho: Vec<mediator_games::Strategy> = (0..n)
        .map(|_| mediator_games::Strategy::pure(1, 3, library::BOTTOM))
        .collect();
    let margin = punishment::punishment_margin(&game, &rho, &vec![value; n], k);
    println!(
        "\nground truth: mediated value = {value}; ⊥ is a {k}-punishment with margin {margin:.2}"
    );

    // Per-seed coalition utilities, so gains can be estimated *paired*
    // (common random numbers: the same coin sequence hits baseline and
    // deviation, cancelling the coin's sampling noise entirely).
    let run_variant = |naive: bool, collude: bool| -> Vec<f64> {
        let circuit = if naive {
            catalog::counterexample_naive(n)
        } else {
            catalog::counterexample_minfo(n)
        };
        let mut builder = Scenario::mediator(circuit)
            .players(n)
            .tolerance(k, 0)
            .wills(vec![library::BOTTOM as u64; n])
            .resolve_defaults(vec![library::BOTTOM as u64; n]);
        if naive {
            builder = builder.naive_split();
        }
        if collude {
            builder = builder
                .deviant(0, move || Box::new(CounterexampleColluder::new(n, 1)))
                .deviant(1, move || Box::new(CounterexampleColluder::new(n, 0)));
        }
        let set = builder
            .build()
            .expect("n − k ≥ 1")
            .seeds(0..samples)
            .run_batch();
        // AH resolution with mass-⊥ fallback comes built into the set.
        set.outcomes()
            .map(|out| {
                let actions = set.profile(out);
                game.utilities(&vec![0; n], &actions)[0]
            })
            .collect()
    };
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let paired_gain =
        |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x - y).sum::<f64>() / a.len() as f64;

    let base_naive = run_variant(true, false);
    let dev_naive = run_variant(true, true);
    let base_mi = run_variant(false, false);
    let dev_mi = run_variant(false, true);
    t.row(vec![
        "naive".into(),
        "none".into(),
        f4(mean(&base_naive)),
        "0 (baseline)".into(),
        "1.5".into(),
    ]);
    t.row(vec![
        "naive".into(),
        "{0,1} deadlock-if-b=0".into(),
        f4(mean(&dev_naive)),
        f4(paired_gain(&dev_naive, &base_naive)),
        "1.55 (gain +0.05)".into(),
    ]);
    t.row(vec![
        "min-info".into(),
        "none".into(),
        f4(mean(&base_mi)),
        "0 (baseline)".into(),
        "1.5".into(),
    ]);
    t.row(vec![
        "min-info".into(),
        "{0,1} deadlock-if-b=0".into(),
        f4(mean(&dev_mi)),
        f4(paired_gain(&dev_mi, &base_mi)),
        "≤ 1.5 (gain 0)".into(),
    ]);
    print!("{t}");

    // Also verify the mediated play is k-resilient at the game layer when
    // modeled as the obvious one-shot profile (everyone plays the coin).
    let coop = solution::best_coalition_gain(
        &game,
        &(0..n)
            .map(|_| mediator_games::Strategy::pure(1, 3, 0))
            .collect::<Vec<_>>(),
        k,
    );
    println!(
        "(game-layer sanity: best coalition gain over all-zeros one-shot play = {})",
        f4(coop)
    );
}

/// E8 — Lemma 6.8: scheduler-class counting and the exact-vs-weak
/// implementation message gap.
fn e8_min_info() {
    let mut t = Table::new(
        "E8 — Lemma 6.8 minimally-informative mediator: scheduler classes and message costs",
        &[
            "r",
            "n",
            "log₂ classes",
            "min R",
            "msgs exact (2Rn)",
            "msgs weak (n)",
            "paper R bound (log₂)",
        ],
    );
    for &(r, n) in &[
        (1u64, 3u64),
        (1, 5),
        (2, 5),
        (4, 5),
        (8, 5),
        (16, 5),
        (4, 9),
    ] {
        let row = &min_info::min_info_table(&[(r, n)])[0];
        t.row(vec![
            r.to_string(),
            n.to_string(),
            format!("{:.1}", row.classes_log2),
            row.min_r.to_string(),
            row.full_messages.to_string(),
            row.weak_messages.to_string(),
            format!("{:.0}", min_info::paper_sufficient_rounds_log2(r, n)),
        ]);
    }
    print!("{t}");
    println!("paper: exact implementation costs 2^{{O(N log N)}} messages, weak costs O(n).");
}

/// E9 — EGL comparison: `Θ(1/ε)` messages for gradual release vs the flat
/// cost of the punishment-based cheap talk.
fn e9_egl() {
    let mut t = Table::new(
        "E9 — EGL gradual release (O(1/ε) msgs) vs punishment cheap talk (flat)",
        &["ε", "EGL messages", "punishment CT messages"],
    );
    // The punishment protocol's cost does not depend on ε: measure once.
    let n = 5;
    let spec = majority_spec_punish(n, 1, 0);
    let out = run_with_deviant(&spec, &ones_inputs(n), None, &SchedulerKind::Random, 3);
    let flat = out.messages_sent;
    let mut pts = Vec::new();
    for &eps in &[0.1f64, 0.03, 0.01, 0.003, 0.001] {
        let (_, msgs) = egl::run_gradual_release(eps, None, 1);
        pts.push((1.0 / eps, msgs as f64));
        t.row(vec![format!("{eps}"), msgs.to_string(), flat.to_string()]);
    }
    print!("{t}");
    println!(
        "fitted EGL exponent in 1/ε: {} (paper: 1)",
        f4(loglog_slope(&pts))
    );
}

/// E10 — Propositions 6.1–6.3: players covertly signal the content-blind
/// scheduler; robust profiles are scheduler-proof.
fn e10_scheduler_collusion(samples: usize) {
    // Covert channel demo.
    let values = [3u64, 0, 7, 2];
    let procs: Vec<Box<dyn Process<u8>>> = values
        .iter()
        .map(|&v| Box::new(CovertSender::new(v)) as Box<dyn Process<u8>>)
        .collect();
    let mut world = World::new(procs, 9);
    let mut decoder = CovertDecoder::new(values.len());
    let out = world.run(&mut decoder, 100_000);
    println!("\n## E10 — scheduler collusion (Prop 6.1) & scheduler-proofness (Cor 6.3)\n");
    println!(
        "covert channel: players encoded {:?}; the content-blind scheduler decoded {:?} ({} messages, {:?})",
        values,
        decoder.decoded(),
        out.messages_sent,
        out.termination
    );
    assert_eq!(decoder.decoded(), &values);

    // Scheduler-proofness: expected moves of the robust protocol are
    // identical across scheduler kinds — one battery × seed batch, grouped
    // per kind.
    let n = 5;
    let set = Scenario::cheap_talk(catalog::majority_circuit(n))
        .players(n)
        .tolerance(1, 0)
        .inputs(ones_inputs(n))
        .build()
        .expect("5 > 4")
        .battery(SchedulerKind::battery(n))
        .seeds(0..samples as u64)
        .run_batch();
    let mut t = Table::new(
        "E10 — outcome by scheduler kind (robust cheap talk, unanimous inputs)",
        &["scheduler", "runs", "all played majority", "deadlocks"],
    );
    for (kind, runs) in set.by_kind() {
        let ok = runs
            .iter()
            .filter(|r| r.outcome.resolve_default(&vec![0; n]) == vec![1; n])
            .count();
        let deadlocks = runs
            .iter()
            .filter(|r| r.outcome.termination == TerminationKind::Deadlock)
            .count();
        t.row(vec![
            format!("{kind:?}"),
            samples.to_string(),
            format!("{ok}/{samples}"),
            deadlocks.to_string(),
        ]);
    }
    print!("{t}");
}
