//! Median-of-samples timing and the `BENCH.json` trajectory writer.
//!
//! Every perf-sensitive PR appends one labelled entry to `BENCH.json` (an
//! array of `{label, metrics}` objects) so the repo carries its own
//! performance trajectory: each future optimisation has a recorded number
//! to beat, measured by the same harness on the same workloads. The format
//! is deliberately tiny and hand-rolled — the offline serde shim does not
//! serialize, and the schema is three levels deep:
//!
//! ```json
//! [
//!   { "label": "pr2-pre",
//!     "metrics": {
//!       "world_rbc_n16_random": { "ns_per_op": 1234567, "messages_sent": 512, "steps": 800 }
//!     } }
//! ]
//! ```

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// One named measurement: median ns/op plus workload counters
/// (message/step counts that make the ns interpretable).
#[derive(Debug, Clone)]
pub struct Metric {
    /// Stable metric name (the BENCH.json key).
    pub name: String,
    /// Median nanoseconds per operation.
    pub ns_per_op: u128,
    /// Workload counters: `(name, value)` pairs riding along the timing.
    pub counters: Vec<(&'static str, u64)>,
}

impl Metric {
    /// A counter-free metric.
    pub fn new(name: impl Into<String>, ns_per_op: u128) -> Self {
        Metric {
            name: name.into(),
            ns_per_op,
            counters: Vec::new(),
        }
    }

    /// Attaches a workload counter.
    pub fn with(mut self, name: &'static str, value: u64) -> Self {
        self.counters.push((name, value));
        self
    }
}

/// Times `op` and returns the **median** ns per call over `samples` timed
/// batches of `iters` calls each (one untimed warm-up call first). The
/// median resists scheduler noise far better than the mean, which is what
/// makes entries comparable across PRs.
pub fn median_ns_per_op<T>(samples: usize, iters: u32, mut op: impl FnMut() -> T) -> u128 {
    assert!(samples > 0 && iters > 0);
    let _ = std::hint::black_box(op());
    let mut per_op: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                let _ = std::hint::black_box(op());
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    per_op.sort_unstable();
    per_op[per_op.len() / 2]
}

/// Times `op` and returns the **minimum** ns per call over `samples` timed
/// batches — the noise-free cost floor, useful for perf attribution on
/// loaded machines (the trajectory itself records medians).
pub fn min_ns_per_op<T>(samples: usize, iters: u32, mut op: impl FnMut() -> T) -> u128 {
    assert!(samples > 0 && iters > 0);
    let _ = std::hint::black_box(op());
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                let _ = std::hint::black_box(op());
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .min()
        .expect("samples > 0")
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders one trajectory entry as a JSON object.
pub fn render_entry(label: &str, metrics: &[Metric]) -> String {
    let mut out = String::new();
    out.push_str(&format!("  {{ \"label\": \"{}\",\n", escape(label)));
    out.push_str("    \"metrics\": {\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "      \"{}\": {{ \"ns_per_op\": {}",
            escape(&m.name),
            m.ns_per_op
        ));
        for (k, v) in &m.counters {
            out.push_str(&format!(", \"{}\": {}", escape(k), v));
        }
        out.push_str(if i + 1 == metrics.len() {
            " }\n"
        } else {
            " },\n"
        });
    }
    out.push_str("    } }");
    out
}

/// Appends one `{label, metrics}` entry to the `BENCH.json` array at
/// `path`, creating the file (as a one-entry array) if absent or empty.
///
/// # Errors
///
/// Propagates filesystem errors; a malformed existing file (no closing
/// `]`) is reported as [`std::io::ErrorKind::InvalidData`].
pub fn append_bench_json(path: &Path, label: &str, metrics: &[Metric]) -> std::io::Result<()> {
    let entry = render_entry(label, metrics);
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let trimmed = existing.trim();
    let body = if trimmed.is_empty() || trimmed == "[]" {
        format!("[\n{entry}\n]\n")
    } else {
        let close = trimmed.rfind(']').ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "BENCH.json is not a JSON array",
            )
        })?;
        let head = trimmed[..close].trim_end();
        format!("{head},\n{entry}\n]\n")
    };
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_reported_in_ns() {
        let ns = median_ns_per_op(3, 10, || std::hint::black_box(41u64) + 1);
        // A single add is far below a microsecond even with timer overhead.
        assert!(ns < 10_000, "{ns}");
    }

    #[test]
    fn entry_renders_counters() {
        let m = vec![Metric::new("x", 5).with("messages", 7)];
        let s = render_entry("lbl", &m);
        assert!(s.contains("\"x\": { \"ns_per_op\": 5, \"messages\": 7 }"));
    }

    #[test]
    fn append_creates_then_extends_array() {
        let dir = std::env::temp_dir().join(format!("benchjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH.json");
        let _ = std::fs::remove_file(&path);
        append_bench_json(&path, "a", &[Metric::new("m", 1)]).unwrap();
        append_bench_json(&path, "b", &[Metric::new("m", 2)]).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.trim_start().starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        assert_eq!(s.matches("\"label\"").count(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escape_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
