//! Shared workloads for the benchmark harness and the `experiments` binary.
//!
//! Every quantitative claim of the paper maps to an experiment E1–E11 (see
//! DESIGN.md §4); this crate hosts the workload builders and measurement
//! helpers those experiments share with the Criterion benches.

pub mod measure;

use mediator_circuits::catalog;
use mediator_core::deviations::Behavior;
use mediator_core::scenario::CheapTalkPlan;
use mediator_core::CheapTalkSpec;
use mediator_field::Fp;
use mediator_sim::{Outcome, SchedulerKind};

/// Builds the Theorem 4.1 majority workload.
pub fn majority_spec_robust(n: usize, k: usize, t: usize) -> CheapTalkSpec {
    CheapTalkSpec::theorem_4_1(
        n,
        k,
        t,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![0; n],
    )
}

/// Builds the Theorem 4.2 majority workload.
pub fn majority_spec_epsilon(n: usize, k: usize, t: usize, kappa: usize) -> CheapTalkSpec {
    CheapTalkSpec::theorem_4_2(
        n,
        k,
        t,
        kappa,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![0; n],
    )
}

/// Builds the Theorem 4.4 majority workload (punishment + barrier).
pub fn majority_spec_punish(n: usize, k: usize, t: usize) -> CheapTalkSpec {
    CheapTalkSpec::theorem_4_4(
        n,
        k,
        t,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![3; n], // punishment action (out of the game's range on purpose)
        vec![0; n],
    )
}

/// Builds the Theorem 4.5 majority workload.
pub fn majority_spec_eps_punish(n: usize, k: usize, t: usize, kappa: usize) -> CheapTalkSpec {
    CheapTalkSpec::theorem_4_5(
        n,
        k,
        t,
        kappa,
        catalog::majority_circuit(n),
        vec![vec![Fp::ZERO]; n],
        vec![3; n],
        vec![0; n],
    )
}

/// Bit inputs `1,0,1,0,...` (scheduler-sensitive majority for odd n).
pub fn alternating_inputs(n: usize) -> Vec<Vec<Fp>> {
    (0..n).map(|i| vec![Fp::new((i % 2 == 0) as u64)]).collect()
}

/// All-ones inputs (scheduler-proof majority).
pub fn ones_inputs(n: usize) -> Vec<Vec<Fp>> {
    vec![vec![Fp::ONE]; n]
}

/// Builds the Scenario plan for a spec + inputs (step budget 8M, the
/// harness default).
pub fn plan_for(spec: &CheapTalkSpec, inputs: &[Vec<Fp>]) -> CheapTalkPlan {
    CheapTalkPlan::from_spec(spec.clone(), inputs.to_vec())
}

/// Runs one cheap-talk execution with a single deviant behaviour.
pub fn run_with_deviant(
    spec: &CheapTalkSpec,
    inputs: &[Vec<Fp>],
    deviant: Option<(usize, Behavior)>,
    kind: &SchedulerKind,
    seed: u64,
) -> Outcome {
    let mut plan = plan_for(spec, inputs);
    if let Some((p, b)) = deviant {
        plan = plan.with_deviant(p, b);
    }
    plan.run_with(kind, seed)
}

/// Least-squares slope of `log y` against `log x` — the fitted scaling
/// exponent used by the E5 tables.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_exact_power_law() {
        let pts: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, (i as f64).powi(3))).collect();
        assert!((loglog_slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn workload_builders_validate() {
        let _ = majority_spec_robust(5, 1, 0);
        let _ = majority_spec_epsilon(4, 0, 1, 2);
        let _ = majority_spec_punish(6, 1, 0);
        let _ = majority_spec_eps_punish(6, 1, 1, 2);
        assert_eq!(alternating_inputs(3).len(), 3);
        assert_eq!(ones_inputs(4)[3][0], Fp::ONE);
    }

    #[test]
    fn robust_majority_smoke() {
        let n = 5;
        let spec = majority_spec_robust(n, 1, 0);
        let out = run_with_deviant(&spec, &ones_inputs(n), None, &SchedulerKind::Random, 1);
        assert_eq!(out.resolve_default(&vec![0; n]), vec![1; n]);
    }
}
