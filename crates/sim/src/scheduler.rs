//! Environment strategies (schedulers).
//!
//! A scheduler picks, at every step, which pending event to dispatch next.
//! It sees only environment-visible metadata ([`PendingView`]) — never
//! message contents — mirroring the paper's assumption that the environment
//! cannot read messages (§6.1). Ordinary schedulers must eventually deliver
//! everything; the [`World`](crate::World) enforces this with a *starvation
//! bound*: any event pending for more than `starvation_bound` steps is
//! force-delivered. Relaxed schedulers (allowed only in mediator games, §5)
//! may instead [`SchedChoice::Drop`] events, subject to the all-or-none
//! batch rule, which the `World` enforces by dropping whole batches.
//!
//! Performance note: every field of a [`PendingView`] is fixed at the
//! moment the event is queued, so the `World` maintains the view array
//! *incrementally* (push on send, `swap_remove` on dispatch) instead of
//! rebuilding it each step. An event's age is therefore derived — the view
//! stores its birth step and [`Scheduler::next`] receives the current step
//! counter (`now`); call [`PendingView::age`] to recover it.

use crate::process::ProcessId;
use crate::trace::TraceEvent;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Environment-visible metadata of one pending event. All fields are
/// immutable for the lifetime of the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingView {
    /// `None` for a start signal, `Some(src)` for a message.
    pub src: Option<ProcessId>,
    /// Destination process.
    pub dst: ProcessId,
    /// Per-(src,dst) sequence number (the `k` of the message pattern).
    pub k: u64,
    /// Global send sequence (FIFO order key).
    pub seq: u64,
    /// Batch id: events emitted in the same activation share it.
    pub batch: u64,
    /// Step at which the event entered the pending set (0 for start
    /// signals: the game "begins" before the first step).
    pub born: u64,
}

impl PendingView {
    /// Steps this event has been pending as of step `now`.
    pub fn age(&self, now: u64) -> u64 {
        now.saturating_sub(self.born)
    }
}

/// A scheduler's decision for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedChoice {
    /// Dispatch the pending event at this index.
    Deliver(usize),
    /// Drop the pending event at this index (and its whole batch).
    /// Only honored by worlds running with relaxed semantics.
    Drop(usize),
}

/// An environment strategy: selects the next pending event.
///
/// Implementations must return an index `< pending.len()`; `pending` is
/// never empty when `next` is called. `now` is the world's step counter
/// (so age-sensitive policies can compute [`PendingView::age`]).
pub trait Scheduler {
    /// Chooses the next event to dispatch or drop.
    fn next(&mut self, pending: &[PendingView], now: u64, rng: &mut StdRng) -> SchedChoice;

    /// A human-readable name for reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Convenient tagged family of the built-in schedulers, so experiment
/// batteries can be described by data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Uniformly random among pending events (fair almost surely).
    Random,
    /// Oldest send first.
    Fifo,
    /// Newest send first (maximally reordering but still fair via the
    /// starvation bound).
    Lifo,
    /// Starves messages to/from the given victims while anything else is
    /// pending.
    TargetedDelay(Vec<ProcessId>),
    /// Partitions the processes into two groups and withholds all
    /// cross-partition traffic for the given number of steps, then heals
    /// (eventual delivery preserved).
    Partition {
        /// One side of the partition (the rest is the other side).
        group: Vec<ProcessId>,
        /// Steps before the partition heals.
        heal_after: u64,
    },
    /// Forces the dispatch order of a previously recorded run (see
    /// [`ReplayScheduler`]). Built from a stored trace; never part of
    /// [`SchedulerKind::battery`].
    Replay(ReplayScript),
}

impl SchedulerKind {
    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Random => Box::new(RandomScheduler::new()),
            SchedulerKind::Fifo => Box::new(FifoScheduler),
            SchedulerKind::Lifo => Box::new(LifoScheduler),
            SchedulerKind::TargetedDelay(v) => Box::new(TargetedDelayScheduler::new(v.clone())),
            SchedulerKind::Partition { group, heal_after } => {
                Box::new(PartitionScheduler::new(group.clone(), *heal_after))
            }
            SchedulerKind::Replay(script) => Box::new(ReplayScheduler::new(script.clone())),
        }
    }

    /// Whether this kind replays a recorded dispatch order (replay runs
    /// disable the starvation watchdog: forced deliveries are already baked
    /// into the script).
    pub fn is_replay(&self) -> bool {
        matches!(self, SchedulerKind::Replay(_))
    }

    /// A small battery of schedulers covering the qualitatively different
    /// environment behaviours, used by implementation-checking experiments.
    pub fn battery(n: usize) -> Vec<SchedulerKind> {
        let mut v = vec![
            SchedulerKind::Random,
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
        ];
        for p in 0..n.min(3) {
            v.push(SchedulerKind::TargetedDelay(vec![p]));
        }
        if n >= 2 {
            v.push(SchedulerKind::Partition {
                group: (0..n / 2).collect(),
                heal_after: 200,
            });
        }
        v
    }
}

/// The recorded message pattern a [`ReplayScheduler`] re-enacts: the full
/// [`TraceEvent`] stream of a completed run, shared cheaply (batteries open
/// many sessions from one recording).
#[derive(Clone, PartialEq, Eq)]
pub struct ReplayScript {
    events: Arc<Vec<TraceEvent>>,
}

impl ReplayScript {
    /// Wraps a recorded event stream.
    pub fn new(events: Vec<TraceEvent>) -> Self {
        ReplayScript {
            events: Arc::new(events),
        }
    }

    /// The recorded events, in dispatch order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` for an empty recording.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether the recording contains relaxed-scheduler drops (a replaying
    /// world must then run with drops allowed).
    pub fn has_drops(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TraceEvent::Dropped { .. }))
    }
}

impl fmt::Debug for ReplayScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Scripts run to millions of events; printing them would swamp any
        // assertion diff that mentions a SchedulerKind.
        write!(f, "ReplayScript({} events)", self.events.len())
    }
}

/// Forces the dispatch order of a recorded run (deterministic replay).
///
/// The scheduler walks the script and, at each step, picks the pending view
/// the next recorded event names: a `Started { p }` entry delivers `p`'s
/// start signal, a `Delivered` entry the matching `(src, dst, k)` message,
/// and a `Dropped` entry issues the matching [`SchedChoice::Drop`] (skipping
/// the whole batch's worth of recorded drop events, since the world extends
/// the drop to the batch). `Sent` entries are activation side effects — the
/// world re-emits them on its own — and are skipped.
///
/// One recorded shape needs care: a message dispatched to a *not-yet-started*
/// process makes the original world run `on_start` and `on_message` in a
/// single step — the script shows `Started { p }`, the `on_start` sends, and
/// then the delivery — leaving the stale start signal to be consumed by a
/// later, trace-silent step. The scheduler detects this shape by lookahead
/// and re-enacts the *combined* step (dispatching the message, which starts
/// `p` on the way), so the pending plane keeps the exact `swap_remove`
/// layout of the recording; that layout is observable through the emission
/// order of relaxed batch drops. The stale start signal is then consumed at
/// script exhaustion or purged when `p` halts, exactly as in the original.
///
/// On script exhaustion or a pick the plane cannot satisfy (a diverged
/// replay), the scheduler falls back to delivering the front of the plane:
/// the `Scheduler` trait is infallible, and divergence is surfaced by the
/// trace comparison the replay harness performs afterwards.
#[derive(Debug, Clone)]
pub struct ReplayScheduler {
    script: ReplayScript,
    cursor: usize,
}

impl ReplayScheduler {
    /// Creates a scheduler re-enacting `script` from the beginning.
    pub fn new(script: ReplayScript) -> Self {
        ReplayScheduler { script, cursor: 0 }
    }

    /// Script position: recorded events consumed so far.
    pub fn cursor(&self) -> usize {
        self.cursor
    }
}

impl Scheduler for ReplayScheduler {
    fn next(&mut self, pending: &[PendingView], _now: u64, _rng: &mut StdRng) -> SchedChoice {
        loop {
            let Some(ev) = self.script.events().get(self.cursor).copied() else {
                // Exhausted: consume leftovers (stale start signals) in
                // plane order.
                return SchedChoice::Deliver(0);
            };
            match ev {
                TraceEvent::Sent { .. } => {
                    // Activation side effect, re-emitted by the world.
                    self.cursor += 1;
                }
                TraceEvent::Started { p } => {
                    // Lookahead: when the recording dispatched a message to a
                    // not-yet-started process, the world emitted `Started` +
                    // the `on_start` sends + `Delivered` in ONE combined step,
                    // leaving the stale start signal in the plane. Replaying
                    // that as an explicit start pick would remove the start
                    // view at the wrong moment and permute the plane relative
                    // to the recording (`swap_remove` layout), which the
                    // emission order of later batch drops exposes. Whenever
                    // the script shape allows the combined reading — the next
                    // non-`Sent` entry delivers to `p` and that message is
                    // pending — prefer it: the re-enacted step emits the same
                    // events and keeps the plane in lockstep.
                    let mut ahead = self.cursor + 1;
                    while matches!(
                        self.script.events().get(ahead),
                        Some(TraceEvent::Sent { .. })
                    ) {
                        ahead += 1;
                    }
                    if let Some(TraceEvent::Delivered { src, dst, k }) =
                        self.script.events().get(ahead).copied()
                    {
                        if dst == p {
                            if let Some(i) = pending
                                .iter()
                                .position(|v| v.src == Some(src) && v.dst == dst && v.k == k)
                            {
                                self.cursor = ahead + 1;
                                return SchedChoice::Deliver(i);
                            }
                        }
                    }
                    self.cursor += 1;
                    let pick = pending.iter().position(|v| v.src.is_none() && v.dst == p);
                    return SchedChoice::Deliver(pick.unwrap_or(0));
                }
                TraceEvent::Delivered { src, dst, k } => {
                    self.cursor += 1;
                    let pick = pending
                        .iter()
                        .position(|v| v.src == Some(src) && v.dst == dst && v.k == k);
                    return SchedChoice::Deliver(pick.unwrap_or(0));
                }
                TraceEvent::Dropped { src, dst, k } => {
                    let pick = pending
                        .iter()
                        .position(|v| v.src == Some(src) && v.dst == dst && v.k == k);
                    match pick {
                        Some(i) => {
                            // The world drops the whole batch and records
                            // one Dropped event per member, in plane order —
                            // exactly the events we skip here.
                            let b = pending[i].batch;
                            let members = pending
                                .iter()
                                .filter(|v| v.src.is_some() && v.batch == b)
                                .count();
                            self.cursor += members;
                            return SchedChoice::Drop(i);
                        }
                        None => {
                            self.cursor += 1;
                            return SchedChoice::Deliver(0);
                        }
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

/// Withholds cross-partition messages until the partition heals, then
/// behaves like the random scheduler. Models the classic "split then merge"
/// network incident while remaining a legal (eventually-fair) environment.
#[derive(Debug, Clone)]
pub struct PartitionScheduler {
    group: Vec<ProcessId>,
    heal_after: u64,
    steps: u64,
}

impl PartitionScheduler {
    /// Creates a scheduler partitioning `group` from everyone else for
    /// `heal_after` steps.
    pub fn new(group: Vec<ProcessId>, heal_after: u64) -> Self {
        PartitionScheduler {
            group,
            heal_after,
            steps: 0,
        }
    }

    fn crosses(&self, v: &PendingView) -> bool {
        match v.src {
            None => false, // start signals always go through
            Some(src) => self.group.contains(&src) != self.group.contains(&v.dst),
        }
    }
}

impl Scheduler for PartitionScheduler {
    fn next(&mut self, pending: &[PendingView], _now: u64, rng: &mut StdRng) -> SchedChoice {
        self.steps += 1;
        if self.steps > self.heal_after {
            return SchedChoice::Deliver(rng.gen_range(0..pending.len()));
        }
        let within: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, v)| !self.crosses(v))
            .map(|(i, _)| i)
            .collect();
        let pool: Vec<usize> = if within.is_empty() {
            (0..pending.len()).collect()
        } else {
            within
        };
        SchedChoice::Deliver(pool[rng.gen_range(0..pool.len())])
    }
    fn name(&self) -> &'static str {
        "partition"
    }
}

/// Picks uniformly at random among pending events. With probability 1 every
/// message is eventually delivered, so this is a *fair* environment.
#[derive(Debug, Clone, Default)]
pub struct RandomScheduler;

impl RandomScheduler {
    /// Creates a random scheduler.
    pub fn new() -> Self {
        RandomScheduler
    }
}

impl Scheduler for RandomScheduler {
    fn next(&mut self, pending: &[PendingView], _now: u64, rng: &mut StdRng) -> SchedChoice {
        SchedChoice::Deliver(rng.gen_range(0..pending.len()))
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

/// Delivers the oldest send first (a synchronous-looking environment).
#[derive(Debug, Clone, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn next(&mut self, pending: &[PendingView], _now: u64, _rng: &mut StdRng) -> SchedChoice {
        let i = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| v.seq)
            .map(|(i, _)| i)
            .expect("pending non-empty");
        SchedChoice::Deliver(i)
    }
    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Delivers the newest send first — an adversarial reordering environment.
#[derive(Debug, Clone, Default)]
pub struct LifoScheduler;

impl Scheduler for LifoScheduler {
    fn next(&mut self, pending: &[PendingView], _now: u64, _rng: &mut StdRng) -> SchedChoice {
        let i = pending
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.seq)
            .map(|(i, _)| i)
            .expect("pending non-empty");
        SchedChoice::Deliver(i)
    }
    fn name(&self) -> &'static str {
        "lifo"
    }
}

/// Starves the victims: any event to or from a victim process waits as long
/// as a non-victim event is pending. The starvation bound in the `World`
/// keeps this technically fair, matching the paper's requirement that all
/// messages are eventually delivered.
#[derive(Debug, Clone)]
pub struct TargetedDelayScheduler {
    victims: Vec<ProcessId>,
}

impl TargetedDelayScheduler {
    /// Creates a scheduler that starves `victims`.
    pub fn new(victims: Vec<ProcessId>) -> Self {
        TargetedDelayScheduler { victims }
    }

    fn involves_victim(&self, v: &PendingView) -> bool {
        self.victims.contains(&v.dst) || v.src.is_some_and(|s| self.victims.contains(&s))
    }
}

impl Scheduler for TargetedDelayScheduler {
    fn next(&mut self, pending: &[PendingView], _now: u64, rng: &mut StdRng) -> SchedChoice {
        let non_victim: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, v)| !self.involves_victim(v))
            .map(|(i, _)| i)
            .collect();
        let pool: Vec<usize> = if non_victim.is_empty() {
            (0..pending.len()).collect()
        } else {
            non_victim
        };
        SchedChoice::Deliver(pool[rng.gen_range(0..pool.len())])
    }
    fn name(&self) -> &'static str {
        "targeted-delay"
    }
}

/// A relaxed scheduler (§5): wraps an inner policy and drops messages from
/// the given sources once `drop_after` deliveries have happened. The `World`
/// extends every drop to the message's entire batch, enforcing the paper's
/// "all messages sent by the mediator at the same step are delivered or none
/// are" constraint.
#[derive(Debug, Clone)]
pub struct RelaxedScheduler {
    /// Sources whose messages are dropped (typically the mediator).
    pub drop_from: Vec<ProcessId>,
    /// Deliveries to allow before the blackout begins.
    pub drop_after: u64,
    delivered: u64,
}

impl RelaxedScheduler {
    /// Drops every message from `drop_from` after `drop_after` deliveries.
    pub fn new(drop_from: Vec<ProcessId>, drop_after: u64) -> Self {
        RelaxedScheduler {
            drop_from,
            drop_after,
            delivered: 0,
        }
    }
}

impl Scheduler for RelaxedScheduler {
    fn next(&mut self, pending: &[PendingView], _now: u64, rng: &mut StdRng) -> SchedChoice {
        if self.delivered >= self.drop_after {
            if let Some((i, _)) = pending
                .iter()
                .enumerate()
                .find(|(_, v)| v.src.is_some_and(|s| self.drop_from.contains(&s)))
            {
                return SchedChoice::Drop(i);
            }
        }
        self.delivered += 1;
        SchedChoice::Deliver(rng.gen_range(0..pending.len()))
    }
    fn name(&self) -> &'static str {
        "relaxed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn views() -> Vec<PendingView> {
        vec![
            PendingView {
                src: None,
                dst: 0,
                k: 0,
                seq: 0,
                batch: 0,
                born: 0,
            },
            PendingView {
                src: Some(1),
                dst: 2,
                k: 1,
                seq: 3,
                batch: 1,
                born: 3,
            },
            PendingView {
                src: Some(2),
                dst: 1,
                k: 1,
                seq: 7,
                batch: 2,
                born: 5,
            },
        ]
    }

    #[test]
    fn age_is_derived_from_birth_step() {
        let v = views();
        assert_eq!(v[0].age(5), 5);
        assert_eq!(v[1].age(5), 2);
        assert_eq!(v[2].age(5), 0);
        // `now` never runs behind `born`, but saturation keeps it total.
        assert_eq!(v[2].age(0), 0);
    }

    #[test]
    fn fifo_picks_lowest_seq() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            FifoScheduler.next(&views(), 5, &mut rng),
            SchedChoice::Deliver(0)
        );
    }

    #[test]
    fn lifo_picks_highest_seq() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            LifoScheduler.next(&views(), 5, &mut rng),
            SchedChoice::Deliver(2)
        );
    }

    #[test]
    fn random_is_deterministic_given_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let mut s = RandomScheduler::new();
        for _ in 0..20 {
            assert_eq!(s.next(&views(), 0, &mut r1), s.next(&views(), 0, &mut r2));
        }
    }

    #[test]
    fn targeted_delay_avoids_victims() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = TargetedDelayScheduler::new(vec![2]);
        for _ in 0..20 {
            // Events 1 (dst=2) and 2 (src=2) involve the victim; only event 0
            // is selectable.
            assert_eq!(s.next(&views(), 0, &mut rng), SchedChoice::Deliver(0));
        }
    }

    #[test]
    fn targeted_delay_falls_back_when_only_victim_events_remain() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = TargetedDelayScheduler::new(vec![0, 1, 2]);
        let c = s.next(&views(), 0, &mut rng);
        assert!(matches!(c, SchedChoice::Deliver(_)));
    }

    #[test]
    fn relaxed_drops_after_budget() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = RelaxedScheduler::new(vec![1], 0);
        // Event 1 has src=1: must be dropped.
        assert_eq!(s.next(&views(), 0, &mut rng), SchedChoice::Drop(1));
    }

    #[test]
    fn battery_contains_core_families() {
        let b = SchedulerKind::battery(5);
        assert!(b.contains(&SchedulerKind::Random));
        assert!(b.contains(&SchedulerKind::Fifo));
        assert!(b.contains(&SchedulerKind::Lifo));
        assert!(b
            .iter()
            .any(|k| matches!(k, SchedulerKind::TargetedDelay(_))));
        assert!(b
            .iter()
            .any(|k| matches!(k, SchedulerKind::Partition { .. })));
        for k in &b {
            let _ = k.build();
        }
    }

    #[test]
    fn replay_scheduler_follows_script_and_skips_sent_entries() {
        let mut rng = StdRng::seed_from_u64(0);
        // Script: start 0 was dispatched, then (after an intervening Sent
        // side effect) message (1→2, k=1) was delivered.
        let script = ReplayScript::new(vec![
            TraceEvent::Started { p: 0 },
            TraceEvent::Sent {
                src: 1,
                dst: 2,
                k: 1,
            },
            TraceEvent::Delivered {
                src: 1,
                dst: 2,
                k: 1,
            },
        ]);
        assert!(!script.has_drops());
        let mut s = ReplayScheduler::new(script);
        // views(): [start→0, msg 1→2 k=1, msg 2→1 k=1].
        assert_eq!(s.next(&views(), 0, &mut rng), SchedChoice::Deliver(0));
        assert_eq!(s.next(&views(), 1, &mut rng), SchedChoice::Deliver(1));
        // Exhausted: falls back to the plane front.
        assert_eq!(s.next(&views(), 2, &mut rng), SchedChoice::Deliver(0));
    }

    #[test]
    fn replay_scheduler_drop_skips_whole_batch() {
        let mut rng = StdRng::seed_from_u64(0);
        let batch = |src: ProcessId, dst: ProcessId, k: u64, seq: u64| PendingView {
            src: Some(src),
            dst,
            k,
            seq,
            batch: 9,
            born: 0,
        };
        let pending = vec![batch(5, 0, 1, 0), batch(5, 1, 1, 1), batch(5, 2, 1, 2)];
        let script = ReplayScript::new(vec![
            TraceEvent::Dropped {
                src: 5,
                dst: 0,
                k: 1,
            },
            TraceEvent::Dropped {
                src: 5,
                dst: 1,
                k: 1,
            },
            TraceEvent::Dropped {
                src: 5,
                dst: 2,
                k: 1,
            },
        ]);
        assert!(script.has_drops());
        let mut s = ReplayScheduler::new(script);
        assert_eq!(s.next(&pending, 0, &mut rng), SchedChoice::Drop(0));
        // All three recorded drop events were consumed by the one choice.
        assert_eq!(s.cursor(), 3);
    }

    #[test]
    fn replay_kind_builds_and_debug_is_compact() {
        let script = ReplayScript::new(vec![TraceEvent::Started { p: 0 }; 1000]);
        let kind = SchedulerKind::Replay(script);
        assert!(kind.is_replay());
        assert!(!SchedulerKind::Random.is_replay());
        let _ = kind.build();
        assert_eq!(format!("{kind:?}"), "Replay(ReplayScript(1000 events))");
    }

    #[test]
    fn partition_blocks_cross_traffic_until_heal() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = PartitionScheduler::new(vec![0, 1], 100);
        // Pending: one within-group (0→1), one cross (0→2).
        let within = PendingView {
            src: Some(0),
            dst: 1,
            k: 1,
            seq: 0,
            batch: 0,
            born: 0,
        };
        let cross = PendingView {
            src: Some(0),
            dst: 2,
            k: 1,
            seq: 1,
            batch: 0,
            born: 0,
        };
        for _ in 0..50 {
            assert_eq!(
                s.next(&[within, cross], 0, &mut rng),
                SchedChoice::Deliver(0),
                "cross-partition message must wait"
            );
        }
        // Only cross traffic pending: the scheduler must not deadlock the
        // model — it falls back to delivering it.
        let c = s.next(&[cross], 0, &mut rng);
        assert_eq!(c, SchedChoice::Deliver(0));
        // After healing, anything goes.
        let mut s = PartitionScheduler::new(vec![0, 1], 0);
        let got = s.next(&[within, cross], 0, &mut rng);
        assert!(matches!(got, SchedChoice::Deliver(_)));
    }
}
