//! A deterministic asynchronous message-passing simulator implementing the
//! environment model of Abraham–Dolev–Geffner–Halpern (PODC 2019), §2.
//!
//! In the paper's model, players alternate moves with an *environment*: the
//! environment picks which player moves next and which in-transit messages are
//! delivered to it. The environment cannot read message contents — it only
//! sees the *message pattern* (who sent what to whom, in which order). The
//! environment is constrained to eventually deliver every message and to
//! eventually schedule every live player, except for **relaxed schedulers**
//! (§5), which may withhold messages forever — subject to the all-or-none
//! rule for batches the mediator sent at the same step.
//!
//! This crate provides:
//!
//! * [`Process`] — the protocol state-machine trait (event-driven: `on_start`
//!   / `on_message`), with effects collected through [`Ctx`]: sending
//!   messages, making the (single) move in the underlying game, writing a
//!   *will* (the Aumann–Hart approach to infinite play), and halting.
//! * [`World`] — the deterministic event loop; produces an [`Outcome`] with
//!   the moves made, the wills, message counts, and a full [`Trace`] in the
//!   paper's `(s,i,j,k)/(d,i,j,k)` message-pattern notation.
//! * [`Scheduler`] implementations — fair random, FIFO, LIFO, targeted-delay
//!   adversaries, and the relaxed scheduler wrapper.
//! * [`sansio`] — the shared sans-IO driving contract ([`Outgoing`],
//!   [`Dest`], [`SansIo`]) plus the generic [`SansIoProcess`] adapter and
//!   [`run_machines`] runner that let any protocol state machine (reliable
//!   broadcast, agreement, AVSS, the MPC engine) run under the full `World`
//!   with every scheduler.
//! * [`Session`] — a steppable, non-consuming handle over a running
//!   [`World`]: `step` one event at a time, inspect the pending plane,
//!   `inject` external messages (the seam an async/network backend attaches
//!   to), `finish` into the ordinary [`Outcome`].
//! * [`covert`] — the Proposition 6.1 covert channel: players signalling
//!   values to the content-blind scheduler via counted self-messages.
//!
//! # Example
//!
//! ```
//! use mediator_sim::{Ctx, Process, ProcessId, RandomScheduler, World};
//!
//! struct Echoer;
//! impl Process<u64> for Echoer {
//!     fn on_start(&mut self, ctx: &mut Ctx<u64>) {
//!         if ctx.me() == 0 {
//!             ctx.send(1, 42);
//!         }
//!     }
//!     fn on_message(&mut self, _src: ProcessId, msg: u64, ctx: &mut Ctx<u64>) {
//!         ctx.make_move(msg);
//!         ctx.halt();
//!     }
//! }
//!
//! let mut world = World::new(vec![Box::new(Echoer), Box::new(Echoer)], 7);
//! let outcome = world.run(&mut RandomScheduler::new(), 10_000);
//! assert_eq!(outcome.moves[1], Some(42));
//! ```

pub mod covert;
pub mod process;
pub mod sansio;
pub mod scheduler;
pub mod session;
pub mod sink;
pub mod trace;
pub mod world;

pub use process::{Action, Ctx, OutgoingTamper, Process, ProcessId, Tamper, TamperVerdict};
pub use sansio::{
    map_batch, route_batch, run_machines, Behavior, BehaviorFn, ByzantineProcess, Dest, Machines,
    Outgoing, Payload, RunOutputs, SansIo, SansIoProcess,
};
pub use scheduler::{
    FifoScheduler, LifoScheduler, PartitionScheduler, PendingView, RandomScheduler,
    RelaxedScheduler, ReplayScheduler, ReplayScript, SchedChoice, Scheduler, SchedulerKind,
    TargetedDelayScheduler,
};
pub use session::{Injected, Session, SessionStatus, SessionWants};
pub use sink::{RunMeta, TraceSink};
pub use trace::{Trace, TraceEvent, TraceMode};
pub use world::{Envelope, Outcome, TerminationKind, World};
