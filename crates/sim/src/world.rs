//! The deterministic event loop, built on an **indexed event plane**.
//!
//! The seed implementation kept one flat `Vec<Pending<M>>` and, on *every*
//! step, rebuilt the scheduler-visible [`PendingView`] array and re-scanned
//! the whole pending set for events addressed to halted processes — O(P)
//! work per step, O(steps·P) per run. The event plane replaces that with
//! three parallel dense arrays maintained *incrementally*:
//!
//! * `views:  Vec<PendingView>` — the scheduler-visible index, pushed on
//!   send and `swap_remove`d on dispatch/drop. Handed to schedulers as a
//!   slice with **exactly** the element order the seed implementation
//!   produced, so every scheduler makes byte-for-byte the same choices
//!   (the trace-golden suites pin this).
//! * `stores: Vec<Stored<M>>` — the payloads, in lockstep with `views`:
//!   the pop addressed by a scheduler index is one O(1) `swap_remove`
//!   keyed by the event's stable position, never a shifting `Vec::remove`.
//!
//! Two invariants make the per-step purge unnecessary:
//!
//! 1. when a process halts, its pending events are removed *at that
//!    moment* (one order-preserving compaction per halt, not per step);
//! 2. a message sent to an already-halted process is counted and traced as
//!    sent but never enters the plane (the seed queued it and purged it
//!    before the next pick — observationally identical).
//!
//! The starvation backstop costs one comparison per step: the cached
//! `watchdog_deadline` is a lower bound on the first step at which *any*
//! pending event can be over-age (removals only raise the true deadline,
//! and birth steps are nondecreasing, so a push can only set it when the
//! plane was idle). Steps before the deadline skip the watchdog entirely;
//! at the deadline one scan recomputes the exact minimum birth step and
//! either force-delivers the first over-age index — exactly the pick the
//! seed's per-step linear scan made — or pushes the deadline forward.

use crate::process::{Action, Ctx, Process, ProcessId};
use crate::scheduler::{PendingView, SchedChoice, Scheduler};
use crate::trace::{Trace, TraceEvent, TraceMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationKind {
    /// Every process halted (or every pending event was consumed) and all
    /// processes that wanted to move have moved.
    Quiescent,
    /// No pending events remain but some live process never halted — the
    /// run deadlocked (possible only with relaxed schedulers or buggy
    /// protocols).
    Deadlock,
    /// The step budget ran out with events still pending (livelock guard).
    BudgetExhausted,
}

/// The result of running a [`World`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// The move each process made in the underlying game, if any.
    pub moves: Vec<Option<Action>>,
    /// The will each process left, if any (the Aumann–Hart approach).
    pub wills: Vec<Option<Action>>,
    /// Which processes halted.
    pub halted: Vec<bool>,
    /// Messages sent during the run.
    pub messages_sent: u64,
    /// Messages delivered during the run.
    pub messages_delivered: u64,
    /// Steps (events dispatched).
    pub steps: u64,
    /// How the run ended.
    pub termination: TerminationKind,
    /// The full message pattern.
    pub trace: Trace,
}

impl Outcome {
    /// Resolves final moves for the **default-move approach**: a process
    /// that never moved is assigned `defaults[i]` (the paper's `M_i(t)`).
    pub fn resolve_default(&self, defaults: &[Action]) -> Vec<Action> {
        self.moves
            .iter()
            .enumerate()
            .map(|(i, m)| m.unwrap_or(defaults[i]))
            .collect()
    }

    /// Resolves final moves for the **AH (wills) approach**: a process that
    /// never moved plays its will if it wrote one, else `fallback[i]`.
    /// (The paper's strategies always write a will before any deadlock can
    /// occur; the fallback covers ill-formed strategies.)
    pub fn resolve_ah(&self, fallback: &[Action]) -> Vec<Action> {
        self.moves
            .iter()
            .zip(&self.wills)
            .enumerate()
            .map(|(i, (m, w))| m.or(*w).unwrap_or(fallback[i]))
            .collect()
    }

    /// A stable FNV-1a fingerprint of the run: the full message pattern
    /// (Lemma 6.8 notation) plus moves, wills, halted flags, counters and
    /// termination. Any change to the scheduler-visible semantics flips
    /// it — this is what the trace-golden suites pin across refactors, so
    /// the summary format is single-sourced here.
    pub fn fingerprint(&self) -> u64 {
        let summary = format!(
            "{}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}",
            self.trace.to_pattern_string(),
            self.moves,
            self.wills,
            self.halted,
            self.messages_sent,
            self.messages_delivered,
            self.steps,
            self.termination,
        );
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in summary.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Payload storage for one pending event (the metadata lives in the
/// parallel [`PendingView`]).
enum Stored<M> {
    Start,
    Msg(M),
}

/// One in-flight message extracted from the pending plane by
/// [`World::drain_messages`]: the addressing a transport needs, with the
/// plane metadata (batch, per-pair `k`, global seq) stripped — a drained
/// message re-enters the run as a fresh one-message batch via
/// [`World::inject`], so the old sequencing would be stale anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The sending process.
    pub src: ProcessId,
    /// The addressed process.
    pub dst: ProcessId,
    /// The payload.
    pub msg: M,
}

/// A deterministic asynchronous world: processes plus in-flight events.
///
/// Determinism: one master seed derives one RNG per process and one for the
/// scheduler; two runs with the same processes, scheduler, and seed produce
/// identical traces.
pub struct World<M> {
    procs: Vec<Box<dyn Process<M>>>,
    // The indexed event plane (see the module docs): two dense arrays in
    // lockstep plus the cached starvation-watchdog deadline.
    views: Vec<PendingView>,
    stores: Vec<Stored<M>>,
    watchdog_deadline: u64, // earliest step any event can be over-age
    outbox_pool: Vec<(ProcessId, M)>, // recycled activation outbox
    started: Vec<bool>,
    halted: Vec<bool>,
    moves: Vec<Option<Action>>,
    wills: Vec<Option<Action>>,
    proc_rngs: Vec<StdRng>,
    sched_rng: StdRng,
    pair_seq: Vec<u64>, // (src*n_total + dst) -> next k
    next_seq: u64,
    next_batch: u64,
    steps: u64,
    sent: u64,
    delivered: u64,
    trace: Trace,
    allow_drop: bool,
    starvation_bound: u64,
    ran: bool,
}

impl<M> World<M> {
    /// Creates a world over the given processes with a master seed.
    pub fn new(procs: Vec<Box<dyn Process<M>>>, seed: u64) -> Self {
        let n = procs.len();
        let proc_rngs = (0..n)
            .map(|i| {
                StdRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64),
                )
            })
            .collect();
        World {
            procs,
            views: Vec::new(),
            stores: Vec::new(),
            watchdog_deadline: u64::MAX,
            outbox_pool: Vec::new(),
            started: vec![false; n],
            halted: vec![false; n],
            moves: vec![None; n],
            wills: vec![None; n],
            proc_rngs,
            sched_rng: StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF_CAFE_F00D),
            pair_seq: vec![0; n * n],
            next_seq: 0,
            next_batch: 0,
            steps: 0,
            sent: 0,
            delivered: 0,
            trace: Trace::new(),
            allow_drop: false,
            starvation_bound: u64::MAX,
            ran: false,
        }
    }

    /// Permits [`SchedChoice::Drop`] (relaxed-scheduler semantics, §5).
    /// Dropping one message drops its entire batch (all-or-none rule).
    pub fn allow_drops(&mut self) -> &mut Self {
        self.allow_drop = true;
        self
    }

    /// Force-delivers any event pending longer than `bound` steps, keeping
    /// adversarial schedulers technically fair (eventual delivery).
    ///
    /// Must be configured before [`World::run`].
    pub fn set_starvation_bound(&mut self, bound: u64) -> &mut Self {
        self.starvation_bound = bound;
        self
    }

    /// Selects how much of the event stream the [`Trace`] retains
    /// (full / ring-buffered / counters-only — see [`TraceMode`]). Long
    /// benchmark runs use [`TraceMode::Off`] to keep memory flat; the
    /// default records everything.
    ///
    /// Must be configured before [`World::run`].
    pub fn set_trace_mode(&mut self, mode: TraceMode) -> &mut Self {
        debug_assert!(!self.ran, "trace mode must be set before run()");
        self.trace = Trace::with_mode(mode);
        self
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Returns `true` if the world has no processes.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Runs to quiescence, deadlock, or the step budget; consumes the
    /// schedule produced by `scheduler`.
    ///
    /// A world runs once: the returned [`Outcome`] takes ownership of the
    /// per-process results instead of cloning them. For incremental driving
    /// (step-by-step inspection, external message injection) use
    /// [`World::start`] / [`World::step_once`] / [`World::take_outcome`] —
    /// or the [`Session`](crate::session::Session) handle that packages
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if called a second time on the same world (or after
    /// [`World::start`]).
    pub fn run(&mut self, scheduler: &mut dyn Scheduler, max_steps: u64) -> Outcome {
        assert!(
            !self.ran,
            "World::run called twice; build a fresh World per run"
        );
        self.start();
        let termination = loop {
            if let Some(t) = self.step_once(scheduler, max_steps) {
                break t;
            }
        };
        self.take_outcome(termination)
    }

    /// Queues the start signals (the paper: each player receives a signal
    /// that the game has started when first scheduled) and marks the world
    /// as running. Idempotent; called implicitly by [`World::run`] and by
    /// [`Session::new`](crate::session::Session::new).
    pub fn start(&mut self) {
        if self.ran {
            return;
        }
        self.ran = true;
        let n = self.procs.len();
        for p in 0..n {
            self.push_event(
                PendingView {
                    src: None,
                    dst: p,
                    k: 0,
                    seq: 0,
                    batch: 0,
                    born: 0,
                },
                Stored::Start,
            );
        }
    }

    /// Executes one scheduler step: termination check, pick, dispatch.
    ///
    /// Returns `None` while the run continues, `Some(kind)` the moment it
    /// terminates (the event plane is drained, or `max_steps` is reached).
    /// This is the steppable core `run` loops over — a driver calling it
    /// directly sees exactly the run `run` would have produced, one event
    /// at a time. Call [`World::start`] first.
    pub fn step_once(
        &mut self,
        scheduler: &mut dyn Scheduler,
        max_steps: u64,
    ) -> Option<TerminationKind> {
        debug_assert!(self.ran, "call World::start() before step_once()");
        // Plane invariant (replaces the seed's per-step purge): no event
        // addressed to a halted process is ever pending — halting
        // compacts the plane, and later sends to halted processes are
        // counted but never enqueued.
        if self.views.is_empty() {
            let all_done = self.halted.iter().all(|&h| h);
            return Some(if all_done {
                TerminationKind::Quiescent
            } else {
                TerminationKind::Deadlock
            });
        }
        if self.steps >= max_steps {
            return Some(TerminationKind::BudgetExhausted);
        }

        let choice = self.pick(scheduler);
        match choice {
            SchedChoice::Deliver(i) => self.dispatch(i),
            SchedChoice::Drop(i) => {
                if self.allow_drop {
                    self.drop_batch(i);
                } else {
                    // Ordinary games: dropping is not available; deliver
                    // instead so a buggy scheduler cannot violate the
                    // model.
                    self.dispatch(i);
                }
            }
        }
        self.steps += 1;
        None
    }

    /// Takes the run's results out of the world. Intended for steppable
    /// drivers that reached a termination via [`World::step_once`];
    /// [`World::run`] calls it internally. The world is spent afterwards.
    pub fn take_outcome(&mut self, termination: TerminationKind) -> Outcome {
        Outcome {
            moves: std::mem::take(&mut self.moves),
            wills: std::mem::take(&mut self.wills),
            halted: std::mem::take(&mut self.halted),
            messages_sent: self.sent,
            messages_delivered: self.delivered,
            steps: self.steps,
            termination,
            trace: std::mem::take(&mut self.trace),
        }
    }

    /// The scheduler-visible pending events, in plane order (the same slice
    /// handed to [`Scheduler::next`]).
    pub fn pending(&self) -> &[PendingView] {
        &self.views
    }

    /// The global step counter (events dispatched so far).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The moves made so far (indexed by process id).
    pub fn moves(&self) -> &[Option<Action>] {
        &self.moves
    }

    /// The message pattern recorded so far — live read access for drivers
    /// that track replay progress or persist traces incrementally (the
    /// completed trace also travels in [`Outcome::trace`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Injects a message from `src` to `dst` as if `src` had sent it in an
    /// activation of its own — the seam an external (network/async) backend
    /// attaches to. The event is traced, counted, and sequenced exactly
    /// like an internal send (`World::enqueue_send` is the one shared
    /// implementation); it forms a one-message batch.
    ///
    /// Returns `true` if the message entered the pending plane, `false` if
    /// `dst` had already halted (the send is counted and traced, but it is
    /// dead on arrival — the same rule internal sends follow).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a process of this world.
    pub fn inject(&mut self, src: ProcessId, dst: ProcessId, msg: M) -> bool {
        assert!(src < self.procs.len(), "inject from unknown process {src}");
        let batch = self.next_batch;
        self.next_batch += 1;
        let planned = !self.halted[dst];
        self.enqueue_send(src, dst, msg, batch);
        planned
    }

    /// Removes every *message* event from the pending plane (start signals
    /// stay put), returning the drained envelopes in plane order and
    /// preserving the relative order of what remains.
    ///
    /// This is the outbox of a networked run: a transport backend drains
    /// the messages the processes just sent, carries them over real I/O,
    /// and re-delivers each one later via [`World::inject`]. The drained
    /// events' plane metadata (batch, per-pair `k`, seq) is dropped — the
    /// wire hop re-sequences each message as a fresh one-message batch, so
    /// a networked trace differs from the in-process trace of the same
    /// seed in exactly the way a different scheduler's would.
    pub fn drain_messages(&mut self) -> Vec<Envelope<M>> {
        let views = std::mem::take(&mut self.views);
        let stores = std::mem::take(&mut self.stores);
        let mut drained = Vec::new();
        for (view, store) in views.into_iter().zip(stores) {
            match store {
                Stored::Start => {
                    self.views.push(view);
                    self.stores.push(Stored::Start);
                }
                Stored::Msg(msg) => drained.push(Envelope {
                    src: view.src.expect("message event has a source"),
                    dst: view.dst,
                    msg,
                }),
            }
        }
        drained
    }

    /// The one send-sequencing protocol: per-pair `k`, global `seq`, Sent
    /// trace event, counter — shared by activation outboxes
    /// (`apply_effects`) and external injection (`inject`) so the two can
    /// never drift apart.
    fn enqueue_send(&mut self, src: ProcessId, dst: ProcessId, payload: M, batch: u64) {
        let n = self.procs.len();
        assert!(dst < n, "send to unknown process {dst}");
        let slot = src * n + dst;
        self.pair_seq[slot] += 1;
        let k = self.pair_seq[slot];
        self.trace.push(TraceEvent::Sent { src, dst, k });
        self.sent += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        // A send to a halted process is observable (Sent event, counter)
        // but dead on arrival: the seed queued it and purged it before
        // the next scheduler pick, so it never entered any view.
        if !self.halted[dst] {
            self.push_event(
                PendingView {
                    src: Some(src),
                    dst,
                    k,
                    seq,
                    batch,
                    born: self.steps,
                },
                Stored::Msg(payload),
            );
        }
    }

    /// Queues one event on the plane.
    fn push_event(&mut self, view: PendingView, store: Stored<M>) {
        self.views.push(view);
        self.stores.push(store);
        // Birth steps are nondecreasing, so a push can tighten the cached
        // watchdog deadline only when the plane had gone idle (deadline
        // reset to MAX); one branch in the common case.
        if self.starvation_bound != u64::MAX && self.watchdog_deadline == u64::MAX {
            self.watchdog_deadline = view
                .born
                .saturating_add(self.starvation_bound)
                .saturating_add(1);
        }
    }

    /// Removes the event at dense index `i`, returning its view + payload.
    fn pop_event(&mut self, i: usize) -> (PendingView, Stored<M>) {
        let view = self.views.swap_remove(i);
        let store = self.stores.swap_remove(i);
        (view, store)
    }

    /// The starvation backstop: one comparison per step in the common case
    /// (`steps < watchdog_deadline`). At the deadline, one pass over the
    /// plane finds the first over-age dense index (the same pick the
    /// seed's per-step linear scan made) — or, if the cached lower bound
    /// was stale (the oldest event has since been dispatched), the exact
    /// minimum birth step, which becomes the new deadline.
    fn overdue_index(&mut self) -> Option<usize> {
        if self.steps < self.watchdog_deadline {
            return None;
        }
        let bound = self.starvation_bound;
        let steps = self.steps;
        let mut min_born = u64::MAX;
        for (i, v) in self.views.iter().enumerate() {
            // Over-age ⇔ age > bound ⇔ born + bound < steps.
            if v.born.saturating_add(bound) < steps {
                return Some(i);
            }
            min_born = min_born.min(v.born);
        }
        // Nothing over-age: cache the exact next deadline. The run loop
        // guarantees a non-empty plane here, but an empty one degrades to
        // "idle" (deadline MAX, re-armed by the next push).
        self.watchdog_deadline = min_born.saturating_add(bound).saturating_add(1);
        None
    }

    fn pick(&mut self, scheduler: &mut dyn Scheduler) -> SchedChoice {
        // Starvation backstop: force-deliver over-age events.
        if let Some(i) = self.overdue_index() {
            return SchedChoice::Deliver(i);
        }
        let c = scheduler.next(&self.views, self.steps, &mut self.sched_rng);
        let idx = match c {
            SchedChoice::Deliver(i) | SchedChoice::Drop(i) => i,
        };
        assert!(
            idx < self.views.len(),
            "scheduler returned out-of-range index"
        );
        c
    }

    fn dispatch(&mut self, i: usize) {
        let (view, store) = self.pop_event(i);
        match store {
            Stored::Start => self.start_if_needed(view.dst),
            Stored::Msg(payload) => {
                let src = view.src.expect("message event has a source");
                let dst = view.dst;
                // The paper: a player gets its start signal when *first
                // scheduled*, whether by an external signal or by a
                // game-related message. Deliver the start before the message.
                self.start_if_needed(dst);
                if self.halted[dst] {
                    return; // halted during on_start; message discarded
                }
                self.trace.push(TraceEvent::Delivered {
                    src,
                    dst,
                    k: view.k,
                });
                self.delivered += 1;
                let buf = std::mem::take(&mut self.outbox_pool);
                let mut ctx = Ctx::new(dst, self.steps, &mut self.proc_rngs[dst], buf);
                self.procs[dst].on_message(src, payload, &mut ctx);
                let effects = ctx.finish();
                self.apply_effects(dst, effects);
            }
        }
    }

    fn start_if_needed(&mut self, pid: ProcessId) {
        if self.started[pid] {
            return;
        }
        self.started[pid] = true;
        self.trace.push(TraceEvent::Started { p: pid });
        let buf = std::mem::take(&mut self.outbox_pool);
        let mut ctx = Ctx::new(pid, self.steps, &mut self.proc_rngs[pid], buf);
        self.procs[pid].on_start(&mut ctx);
        let effects = ctx.finish();
        self.apply_effects(pid, effects);
    }

    fn apply_effects(&mut self, pid: ProcessId, mut effects: crate::process::Effects<M>) {
        let batch = self.next_batch;
        self.next_batch += 1;
        for (dst, payload) in effects.outbox.drain(..) {
            self.enqueue_send(pid, dst, payload, batch);
        }
        // Recycle the drained activation outbox (capacity is the point).
        self.outbox_pool = effects.outbox;
        if let Some(a) = effects.made_move {
            if self.moves[pid].is_none() {
                self.moves[pid] = Some(a);
            }
        }
        match effects.will {
            Some((_, true)) => self.wills[pid] = None,
            Some((a, false)) => self.wills[pid] = Some(a),
            None => {}
        }
        if effects.halted && !self.halted[pid] {
            self.halted[pid] = true;
            self.purge_for(pid);
        }
    }

    /// Removes every pending event addressed to `pid` (its start signal
    /// included), preserving the relative order of everything kept — the
    /// same order the seed's per-step `retain` produced. One pass per halt
    /// instead of one per step.
    fn purge_for(&mut self, pid: ProcessId) {
        let len = self.views.len();
        let mut w = 0;
        for r in 0..len {
            if self.views[r].dst != pid {
                if w != r {
                    self.views.swap(w, r);
                    self.stores.swap(w, r);
                }
                w += 1;
            }
        }
        self.views.truncate(w);
        self.stores.truncate(w);
    }

    fn drop_batch(&mut self, i: usize) {
        if self.views[i].src.is_none() {
            // Start signals cannot be dropped: the game always starts.
            self.dispatch(i);
            return;
        }
        let batch = self.views[i].batch;
        // Emit the batch's `Dropped` events in send (`seq`) order: the trace
        // stays a pure function of the content-level schedule, independent of
        // the plane's `swap_remove` layout. (Deterministic replay relies on
        // this — the layout depends on trace-silent steps a recording cannot
        // show, so a layout-dependent emission order would not replay.)
        let mut members: Vec<usize> = (0..self.views.len())
            .filter(|&j| self.views[j].src.is_some() && self.views[j].batch == batch)
            .collect();
        members.sort_unstable_by_key(|&j| self.views[j].seq);
        for &j in &members {
            let v = self.views[j];
            self.trace.push(TraceEvent::Dropped {
                src: v.src.expect("checked"),
                dst: v.dst,
                k: v.k,
            });
        }
        // Remove back-to-front so `swap_remove` never disturbs a member
        // that is still waiting to be removed.
        members.sort_unstable_by(|a, b| b.cmp(a));
        for &j in &members {
            let _ = self.pop_event(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FifoScheduler, LifoScheduler, RandomScheduler, RelaxedScheduler};

    /// Sends `fanout` messages to everyone on start; echoes once on receipt;
    /// moves with the number of messages received after `quota` receipts.
    struct Chatter {
        n: usize,
        fanout: usize,
        quota: usize,
        received: usize,
    }

    impl Process<u32> for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            for d in 0..self.n {
                if d != ctx.me() {
                    for _ in 0..self.fanout {
                        ctx.send(d, 1);
                    }
                }
            }
        }
        fn on_message(&mut self, _src: ProcessId, _msg: u32, ctx: &mut Ctx<u32>) {
            self.received += 1;
            if self.received == self.quota {
                ctx.make_move(self.received as Action);
                ctx.halt();
            }
        }
    }

    fn chatter_world(n: usize, fanout: usize, quota: usize, seed: u64) -> World<u32> {
        let procs: Vec<Box<dyn Process<u32>>> = (0..n)
            .map(|_| {
                Box::new(Chatter {
                    n,
                    fanout,
                    quota,
                    received: 0,
                }) as Box<dyn Process<u32>>
            })
            .collect();
        World::new(procs, seed)
    }

    #[test]
    fn all_processes_receive_quota_and_move() {
        let mut w = chatter_world(4, 2, 3, 1);
        let out = w.run(&mut RandomScheduler::new(), 100_000);
        assert_eq!(out.termination, TerminationKind::Quiescent);
        for m in &out.moves {
            assert_eq!(*m, Some(3));
        }
        assert_eq!(out.messages_sent, 4 * 3 * 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut w = chatter_world(5, 1, 2, seed);
            w.run(&mut RandomScheduler::new(), 100_000)
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a.trace.events(), b.trace.events());
        let c = run(100);
        // Different seed ⇒ (almost surely) different schedule.
        assert_ne!(a.trace.events(), c.trace.events());
    }

    #[test]
    fn fifo_and_lifo_schedules_differ() {
        let mut w1 = chatter_world(3, 2, 2, 7);
        let mut w2 = chatter_world(3, 2, 2, 7);
        let o1 = w1.run(&mut FifoScheduler, 100_000);
        let o2 = w2.run(&mut LifoScheduler, 100_000);
        assert_ne!(o1.trace.events(), o2.trace.events());
        // But both terminate with the same moves — scheduler-proofness of
        // this trivial protocol.
        assert_eq!(o1.moves, o2.moves);
    }

    #[test]
    fn deadlock_detected_when_waiting_forever() {
        /// Waits for a message that never comes.
        struct Waiter;
        impl Process<u32> for Waiter {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.set_will(13);
            }
            fn on_message(&mut self, _src: ProcessId, _m: u32, _ctx: &mut Ctx<u32>) {}
        }
        let mut w: World<u32> = World::new(vec![Box::new(Waiter)], 0);
        let out = w.run(&mut RandomScheduler::new(), 1000);
        assert_eq!(out.termination, TerminationKind::Deadlock);
        assert_eq!(out.moves[0], None);
        // AH approach: the will fires.
        assert_eq!(out.resolve_ah(&[0]), vec![13]);
        // Default-move approach: the default fires.
        assert_eq!(out.resolve_default(&[7]), vec![7]);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        /// Two processes ping-pong forever.
        struct PingPong;
        impl Process<u32> for PingPong {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                let peer = 1 - ctx.me();
                ctx.send(peer, 0);
            }
            fn on_message(&mut self, src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                ctx.send(src, m + 1);
            }
        }
        let mut w: World<u32> = World::new(vec![Box::new(PingPong), Box::new(PingPong)], 3);
        let out = w.run(&mut RandomScheduler::new(), 500);
        assert_eq!(out.termination, TerminationKind::BudgetExhausted);
        assert_eq!(out.steps, 500);
    }

    #[test]
    fn relaxed_scheduler_can_cause_deadlock_but_batches_drop_atomically() {
        /// Process 0 sends one batch of two messages to 1 and 2; they move on
        /// receipt.
        struct Sender;
        impl Process<u32> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(1, 10);
                    ctx.send(2, 20);
                    ctx.make_move(0);
                    ctx.halt();
                }
            }
            fn on_message(&mut self, _src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                ctx.make_move(m as Action);
                ctx.halt();
            }
        }
        let procs: Vec<Box<dyn Process<u32>>> =
            vec![Box::new(Sender), Box::new(Sender), Box::new(Sender)];
        let mut w = World::new(procs, 11);
        w.allow_drops();
        let out = w.run(&mut RelaxedScheduler::new(vec![0], 0), 10_000);
        // The whole batch was dropped: receivers never move — and crucially
        // NOT only one of them (all-or-none, Lemma 6.10's hypothesis).
        assert_eq!(out.trace.dropped_count(), 2);
        assert_eq!(out.moves[1], None);
        assert_eq!(out.moves[2], None);
        assert_eq!(out.termination, TerminationKind::Deadlock);
    }

    #[test]
    fn drops_ignored_without_relaxed_semantics() {
        struct Sender;
        impl Process<u32> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(1, 10);
                    ctx.halt();
                }
            }
            fn on_message(&mut self, _src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                ctx.make_move(m as Action);
                ctx.halt();
            }
        }
        let procs: Vec<Box<dyn Process<u32>>> = vec![Box::new(Sender), Box::new(Sender)];
        let mut w = World::new(procs, 11);
        // No allow_drops(): the Drop choice degrades to Deliver.
        let out = w.run(&mut RelaxedScheduler::new(vec![0], 0), 10_000);
        assert_eq!(out.moves[1], Some(10));
        assert_eq!(out.trace.dropped_count(), 0);
    }

    #[test]
    fn starvation_bound_forces_delivery() {
        // LIFO + a self-feeding process would starve the other message
        // forever; the bound forces it through.
        struct SelfFeeder {
            count: u32,
        }
        impl Process<u32> for SelfFeeder {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(0, 0); // self-message loop
                    ctx.send(1, 42); // the message LIFO will starve
                }
            }
            fn on_message(&mut self, _src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    self.count += 1;
                    if self.count < 200 {
                        ctx.send(0, m);
                    } else {
                        ctx.make_move(0);
                        ctx.halt();
                    }
                } else {
                    ctx.make_move(m as Action);
                    ctx.halt();
                }
            }
        }
        let procs: Vec<Box<dyn Process<u32>>> = vec![
            Box::new(SelfFeeder { count: 0 }),
            Box::new(SelfFeeder { count: 0 }),
        ];
        let mut w = World::new(procs, 5);
        w.set_starvation_bound(50);
        let out = w.run(&mut LifoScheduler, 100_000);
        assert_eq!(
            out.moves[1],
            Some(42),
            "starved message must eventually arrive"
        );
    }

    #[test]
    fn messages_to_halted_processes_are_discarded() {
        struct OneShot;
        impl Process<u32> for OneShot {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(1, 1);
                    ctx.send(1, 2);
                    ctx.halt();
                }
            }
            fn on_message(&mut self, _src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                ctx.make_move(m as Action);
                ctx.halt(); // halt after first message; second must be purged
            }
        }
        let procs: Vec<Box<dyn Process<u32>>> = vec![Box::new(OneShot), Box::new(OneShot)];
        let mut w = World::new(procs, 2);
        let out = w.run(&mut FifoScheduler, 10_000);
        assert_eq!(out.termination, TerminationKind::Quiescent);
        assert_eq!(out.moves[1], Some(1));
        assert_eq!(out.messages_delivered, 1);
    }

    #[test]
    fn sends_to_already_halted_processes_count_but_never_enqueue() {
        // Player 1 halts immediately; player 0's later burst to it is traced
        // as sent (the environment sees the sends) but nothing is pending,
        // so the run is quiescent with zero deliveries to 1.
        struct LateSender;
        impl Process<u32> for LateSender {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 1 {
                    ctx.halt();
                } else {
                    ctx.send(0, 7); // self-nudge to get a second activation
                }
            }
            fn on_message(&mut self, _src: ProcessId, _m: u32, ctx: &mut Ctx<u32>) {
                ctx.send(1, 1);
                ctx.send(1, 2);
                ctx.halt();
            }
        }
        let procs: Vec<Box<dyn Process<u32>>> = vec![Box::new(LateSender), Box::new(LateSender)];
        let mut w = World::new(procs, 4);
        let out = w.run(&mut FifoScheduler, 10_000);
        assert_eq!(out.termination, TerminationKind::Quiescent);
        assert_eq!(out.messages_sent, 3, "self-nudge + two dead-on-arrival");
        assert_eq!(out.messages_delivered, 1, "only the self-nudge");
        assert_eq!(out.trace.sent_by(0), 3);
    }

    #[test]
    fn per_pair_sequence_numbers_count_up() {
        struct Burst;
        impl Process<u32> for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(1, 0);
                    ctx.send(1, 0);
                    ctx.send(1, 0);
                    ctx.halt();
                }
            }
            fn on_message(&mut self, _src: ProcessId, _m: u32, _ctx: &mut Ctx<u32>) {}
        }
        let procs: Vec<Box<dyn Process<u32>>> = vec![Box::new(Burst), Box::new(Burst)];
        let mut w = World::new(procs, 2);
        let out = w.run(&mut FifoScheduler, 100);
        let ks: Vec<u64> = out
            .trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Sent { src: 0, dst: 1, k } => Some(*k),
                _ => None,
            })
            .collect();
        assert_eq!(ks, vec![1, 2, 3]);
    }

    #[test]
    fn trace_modes_agree_on_counters() {
        let full = {
            let mut w = chatter_world(4, 2, 3, 9);
            w.run(&mut RandomScheduler::new(), 100_000)
        };
        let off = {
            let mut w = chatter_world(4, 2, 3, 9);
            w.set_trace_mode(TraceMode::Off);
            w.run(&mut RandomScheduler::new(), 100_000)
        };
        let ring = {
            let mut w = chatter_world(4, 2, 3, 9);
            w.set_trace_mode(TraceMode::Ring(8));
            w.run(&mut RandomScheduler::new(), 100_000)
        };
        // Identical runs (same seed, same scheduler choices): counters and
        // outcomes agree; only event retention differs.
        assert_eq!(full.moves, off.moves);
        assert_eq!(full.moves, ring.moves);
        assert_eq!(full.messages_sent, off.messages_sent);
        assert_eq!(full.trace.sent_count(), off.trace.sent_count());
        assert_eq!(full.trace.delivered_count(), ring.trace.delivered_count());
        assert!(off.trace.events().is_empty());
        assert_eq!(ring.trace.recent().count(), 8);
        // The ring window is the tail of the full pattern.
        let full_tail: Vec<TraceEvent> =
            full.trace.events()[full.trace.events().len() - 8..].to_vec();
        let ring_window: Vec<TraceEvent> = ring.trace.recent().copied().collect();
        assert_eq!(full_tail, ring_window);
    }
}

/// Differential suite: the indexed event plane versus an executable
/// re-implementation of the seed's flat-vector loop ("spec world"). Both
/// drive the same process types with the same RNG derivations; every trace
/// and outcome must match across the scheduler battery — the in-crate
/// counterpart of the protocol-level golden suites in `mediator-bcast` and
/// `mediator-vss`.
#[cfg(test)]
mod spec_parity {
    use super::*;
    use crate::scheduler::{RelaxedScheduler, SchedulerKind};

    /// The seed implementation, verbatim semantics: flat pending vector,
    /// per-step halted purge, per-step view rebuild, swap_remove dispatch.
    struct SpecWorld<M> {
        procs: Vec<Box<dyn Process<M>>>,
        pending: Vec<(PendingView, Stored<M>)>,
        started: Vec<bool>,
        halted: Vec<bool>,
        moves: Vec<Option<Action>>,
        wills: Vec<Option<Action>>,
        proc_rngs: Vec<StdRng>,
        sched_rng: StdRng,
        pair_seq: Vec<u64>,
        next_seq: u64,
        next_batch: u64,
        steps: u64,
        sent: u64,
        delivered: u64,
        trace: Trace,
        allow_drop: bool,
        starvation_bound: u64,
    }

    impl<M> SpecWorld<M> {
        fn new(procs: Vec<Box<dyn Process<M>>>, seed: u64) -> Self {
            let n = procs.len();
            let proc_rngs = (0..n)
                .map(|i| {
                    StdRng::seed_from_u64(
                        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(i as u64),
                    )
                })
                .collect();
            SpecWorld {
                procs,
                pending: Vec::new(),
                started: vec![false; n],
                halted: vec![false; n],
                moves: vec![None; n],
                wills: vec![None; n],
                proc_rngs,
                sched_rng: StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF_CAFE_F00D),
                pair_seq: vec![0; n * n],
                next_seq: 0,
                next_batch: 0,
                steps: 0,
                sent: 0,
                delivered: 0,
                trace: Trace::new(),
                allow_drop: false,
                starvation_bound: u64::MAX,
            }
        }

        fn run(&mut self, scheduler: &mut dyn Scheduler, max_steps: u64) -> Outcome {
            let n = self.procs.len();
            for p in 0..n {
                self.pending.push((
                    PendingView {
                        src: None,
                        dst: p,
                        k: 0,
                        seq: 0,
                        batch: 0,
                        born: 0,
                    },
                    Stored::Start,
                ));
            }
            let termination = loop {
                let halted = &self.halted;
                self.pending.retain(|(v, _)| !halted[v.dst]);
                if self.pending.is_empty() {
                    break if self.halted.iter().all(|&h| h) {
                        TerminationKind::Quiescent
                    } else {
                        TerminationKind::Deadlock
                    };
                }
                if self.steps >= max_steps {
                    break TerminationKind::BudgetExhausted;
                }
                // Per-step view rebuild, as the seed did.
                let views: Vec<PendingView> = self.pending.iter().map(|(v, _)| *v).collect();
                let choice = if let Some((i, _)) = views
                    .iter()
                    .enumerate()
                    .find(|(_, v)| v.age(self.steps) > self.starvation_bound)
                {
                    SchedChoice::Deliver(i)
                } else {
                    scheduler.next(&views, self.steps, &mut self.sched_rng)
                };
                match choice {
                    SchedChoice::Deliver(i) => self.dispatch(i),
                    SchedChoice::Drop(i) => {
                        if self.allow_drop {
                            self.drop_batch(i);
                        } else {
                            self.dispatch(i);
                        }
                    }
                }
                self.steps += 1;
            };
            Outcome {
                moves: std::mem::take(&mut self.moves),
                wills: std::mem::take(&mut self.wills),
                halted: std::mem::take(&mut self.halted),
                messages_sent: self.sent,
                messages_delivered: self.delivered,
                steps: self.steps,
                termination,
                trace: std::mem::take(&mut self.trace),
            }
        }

        fn dispatch(&mut self, i: usize) {
            let (view, store) = self.pending.swap_remove(i);
            match store {
                Stored::Start => self.start_if_needed(view.dst),
                Stored::Msg(payload) => {
                    let src = view.src.expect("msg");
                    let dst = view.dst;
                    self.start_if_needed(dst);
                    if self.halted[dst] {
                        return;
                    }
                    self.trace.push(TraceEvent::Delivered {
                        src,
                        dst,
                        k: view.k,
                    });
                    self.delivered += 1;
                    let mut ctx = Ctx::new(dst, self.steps, &mut self.proc_rngs[dst], Vec::new());
                    self.procs[dst].on_message(src, payload, &mut ctx);
                    let effects = ctx.finish();
                    self.apply_effects(dst, effects);
                }
            }
        }

        fn start_if_needed(&mut self, pid: ProcessId) {
            if self.started[pid] {
                return;
            }
            self.started[pid] = true;
            self.trace.push(TraceEvent::Started { p: pid });
            let mut ctx = Ctx::new(pid, self.steps, &mut self.proc_rngs[pid], Vec::new());
            self.procs[pid].on_start(&mut ctx);
            let effects = ctx.finish();
            self.apply_effects(pid, effects);
        }

        fn apply_effects(&mut self, pid: ProcessId, effects: crate::process::Effects<M>) {
            let n = self.procs.len();
            let batch = self.next_batch;
            self.next_batch += 1;
            for (dst, payload) in effects.outbox {
                let slot = pid * n + dst;
                self.pair_seq[slot] += 1;
                let k = self.pair_seq[slot];
                self.trace.push(TraceEvent::Sent { src: pid, dst, k });
                self.sent += 1;
                self.pending.push((
                    PendingView {
                        src: Some(pid),
                        dst,
                        k,
                        seq: self.next_seq,
                        batch,
                        born: self.steps,
                    },
                    Stored::Msg(payload),
                ));
                self.next_seq += 1;
            }
            if let Some(a) = effects.made_move {
                if self.moves[pid].is_none() {
                    self.moves[pid] = Some(a);
                }
            }
            match effects.will {
                Some((_, true)) => self.wills[pid] = None,
                Some((a, false)) => self.wills[pid] = Some(a),
                None => {}
            }
            if effects.halted {
                self.halted[pid] = true;
            }
        }

        fn drop_batch(&mut self, i: usize) {
            if self.pending[i].0.src.is_none() {
                self.dispatch(i);
                return;
            }
            let batch = self.pending[i].0.batch;
            // Mirrors the plane world: `Dropped` events in send order.
            let mut members: Vec<usize> = (0..self.pending.len())
                .filter(|&j| self.pending[j].0.src.is_some() && self.pending[j].0.batch == batch)
                .collect();
            members.sort_unstable_by_key(|&j| self.pending[j].0.seq);
            for &j in &members {
                let v = self.pending[j].0;
                self.trace.push(TraceEvent::Dropped {
                    src: v.src.expect("msg"),
                    dst: v.dst,
                    k: v.k,
                });
            }
            members.sort_unstable_by(|a, b| b.cmp(a));
            for &j in &members {
                self.pending.swap_remove(j);
            }
        }
    }

    /// A process mix exercising every plane transition: fan-out sends,
    /// mid-run halts (purges), self-messages (LIFO starvation), batched
    /// sends (drop candidates).
    struct Mixer {
        n: usize,
        received: usize,
    }

    impl Process<u32> for Mixer {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            for d in 0..self.n {
                if d != ctx.me() {
                    ctx.send(d, 1);
                }
            }
            if ctx.me() == 0 {
                ctx.send(0, 0); // self-feeder
            }
            ctx.set_will(ctx.me() as Action);
        }
        fn on_message(&mut self, src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
            self.received += 1;
            if src == ctx.me() && m < 40 {
                ctx.send(ctx.me(), m + 1);
            }
            if self.received == self.n {
                ctx.make_move(self.received as Action);
                ctx.halt();
            } else if self.received < 3 {
                ctx.send(src, 1); // echo once or twice
            }
        }
    }

    fn mixers(n: usize) -> Vec<Box<dyn Process<u32>>> {
        (0..n)
            .map(|_| Box::new(Mixer { n, received: 0 }) as Box<dyn Process<u32>>)
            .collect()
    }

    fn assert_same_run(
        kind: &SchedulerKind,
        seed: u64,
        bound: u64,
        drops: bool,
        mk: impl Fn() -> Vec<Box<dyn Process<u32>>>,
    ) {
        let plane = {
            let mut w = World::new(mk(), seed);
            w.set_starvation_bound(bound);
            if drops {
                w.allow_drops();
            }
            w.run(kind.build().as_mut(), 50_000)
        };
        let spec = {
            let mut w = SpecWorld::new(mk(), seed);
            w.starvation_bound = bound;
            w.allow_drop = drops;
            w.run(kind.build().as_mut(), 50_000)
        };
        let label = format!("{kind:?} seed {seed} bound {bound} drops {drops}");
        assert_eq!(plane.trace.events(), spec.trace.events(), "trace: {label}");
        assert_eq!(plane.moves, spec.moves, "moves: {label}");
        assert_eq!(plane.wills, spec.wills, "wills: {label}");
        assert_eq!(plane.halted, spec.halted, "halted: {label}");
        assert_eq!(plane.messages_sent, spec.messages_sent, "sent: {label}");
        assert_eq!(
            plane.messages_delivered, spec.messages_delivered,
            "delivered: {label}"
        );
        assert_eq!(plane.steps, spec.steps, "steps: {label}");
        assert_eq!(plane.termination, spec.termination, "termination: {label}");
    }

    #[test]
    fn plane_matches_spec_across_battery_and_seeds() {
        for kind in SchedulerKind::battery(5) {
            for seed in 0..32 {
                assert_same_run(&kind, seed, u64::MAX, false, || mixers(5));
            }
        }
    }

    #[test]
    fn plane_matches_spec_with_starvation_bound() {
        // A tight bound forces the backstop path (first-over-age pick).
        for kind in [SchedulerKind::Lifo, SchedulerKind::Random] {
            for seed in 0..32 {
                assert_same_run(&kind, seed, 10, false, || mixers(4));
            }
        }
    }

    #[test]
    fn plane_matches_spec_under_relaxed_drops() {
        for seed in 0..32 {
            let plane = {
                let mut w = World::new(mixers(4), seed);
                w.allow_drops();
                w.run(&mut RelaxedScheduler::new(vec![0], 6), 50_000)
            };
            let spec = {
                let mut w = SpecWorld::new(mixers(4), seed);
                w.allow_drop = true;
                w.run(&mut RelaxedScheduler::new(vec![0], 6), 50_000)
            };
            assert_eq!(plane.trace.events(), spec.trace.events(), "seed {seed}");
            assert_eq!(plane.termination, spec.termination, "seed {seed}");
            assert_eq!(
                plane.trace.dropped_count(),
                spec.trace.dropped_count(),
                "seed {seed}"
            );
        }
    }

    /// Replays `recorded` in a fresh world and pins the full outcome —
    /// byte-identical trace included — against the recording.
    fn assert_replay_matches(
        recorded: &Outcome,
        seed: u64,
        label: &str,
        mk: impl Fn() -> Vec<Box<dyn Process<u32>>>,
    ) {
        use crate::scheduler::{ReplayScheduler, ReplayScript};
        let script = ReplayScript::new(recorded.trace.events().to_vec());
        let mut w = World::new(mk(), seed);
        // The recording already embeds every watchdog-forced delivery, so
        // replay disables the watchdog instead of re-deriving its firings.
        w.set_starvation_bound(u64::MAX);
        if script.has_drops() {
            w.allow_drops();
        }
        let replayed = w.run(&mut ReplayScheduler::new(script), 50_000);
        assert_eq!(
            replayed.trace.events(),
            recorded.trace.events(),
            "trace: {label}"
        );
        assert_eq!(replayed.moves, recorded.moves, "moves: {label}");
        assert_eq!(replayed.wills, recorded.wills, "wills: {label}");
        assert_eq!(replayed.halted, recorded.halted, "halted: {label}");
        // Step counts may differ by the trace-silent steps of the recording:
        // a message that started its destination leaves a stale start signal
        // behind, which the original run consumed in a step the trace cannot
        // show. Replay re-enacts only recorded events, so it either spends a
        // matching step on the leftover at script exhaustion or purges it
        // when the destination halts — never more steps than the recording,
        // and at most one silent step short per process.
        let n = recorded.halted.len() as u64;
        assert!(
            replayed.steps <= recorded.steps && recorded.steps - replayed.steps <= n,
            "steps: {label}: replay {} vs recorded {} (n = {n})",
            replayed.steps,
            recorded.steps
        );
        assert_eq!(
            replayed.termination, recorded.termination,
            "termination: {label}"
        );
    }

    #[test]
    fn replay_reproduces_battery_runs_exactly() {
        for kind in SchedulerKind::battery(5) {
            for seed in 0..32 {
                let recorded = {
                    let mut w = World::new(mixers(5), seed);
                    w.run(kind.build().as_mut(), 50_000)
                };
                let label = format!("{kind:?} seed {seed}");
                assert_replay_matches(&recorded, seed, &label, || mixers(5));
            }
        }
    }

    #[test]
    fn replay_reproduces_watchdog_forced_runs() {
        // A tight starvation bound bakes forced deliveries into the script;
        // replay (watchdog off) must still reproduce them verbatim.
        for kind in [SchedulerKind::Lifo, SchedulerKind::Random] {
            for seed in 0..32 {
                let recorded = {
                    let mut w = World::new(mixers(4), seed);
                    w.set_starvation_bound(10);
                    w.run(kind.build().as_mut(), 50_000)
                };
                let label = format!("{kind:?} seed {seed} bound 10");
                assert_replay_matches(&recorded, seed, &label, || mixers(4));
            }
        }
    }

    #[test]
    fn replay_reproduces_relaxed_drop_runs() {
        for seed in 0..32 {
            let recorded = {
                let mut w = World::new(mixers(4), seed);
                w.allow_drops();
                w.run(&mut RelaxedScheduler::new(vec![0], 6), 50_000)
            };
            assert_replay_matches(&recorded, seed, &format!("relaxed seed {seed}"), || {
                mixers(4)
            });
        }
    }
}
