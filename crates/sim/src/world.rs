//! The deterministic event loop.

use crate::process::{Action, Ctx, Process, ProcessId};
use crate::scheduler::{PendingView, SchedChoice, Scheduler};
use crate::trace::{Trace, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationKind {
    /// Every process halted (or every pending event was consumed) and all
    /// processes that wanted to move have moved.
    Quiescent,
    /// No pending events remain but some live process never halted — the
    /// run deadlocked (possible only with relaxed schedulers or buggy
    /// protocols).
    Deadlock,
    /// The step budget ran out with events still pending (livelock guard).
    BudgetExhausted,
}

/// The result of running a [`World`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// The move each process made in the underlying game, if any.
    pub moves: Vec<Option<Action>>,
    /// The will each process left, if any (the Aumann–Hart approach).
    pub wills: Vec<Option<Action>>,
    /// Which processes halted.
    pub halted: Vec<bool>,
    /// Messages sent during the run.
    pub messages_sent: u64,
    /// Messages delivered during the run.
    pub messages_delivered: u64,
    /// Steps (events dispatched).
    pub steps: u64,
    /// How the run ended.
    pub termination: TerminationKind,
    /// The full message pattern.
    pub trace: Trace,
}

impl Outcome {
    /// Resolves final moves for the **default-move approach**: a process
    /// that never moved is assigned `defaults[i]` (the paper's `M_i(t)`).
    pub fn resolve_default(&self, defaults: &[Action]) -> Vec<Action> {
        self.moves
            .iter()
            .enumerate()
            .map(|(i, m)| m.unwrap_or(defaults[i]))
            .collect()
    }

    /// Resolves final moves for the **AH (wills) approach**: a process that
    /// never moved plays its will if it wrote one, else `fallback[i]`.
    /// (The paper's strategies always write a will before any deadlock can
    /// occur; the fallback covers ill-formed strategies.)
    pub fn resolve_ah(&self, fallback: &[Action]) -> Vec<Action> {
        self.moves
            .iter()
            .zip(&self.wills)
            .enumerate()
            .map(|(i, (m, w))| m.or(*w).unwrap_or(fallback[i]))
            .collect()
    }
}

enum Pending<M> {
    Start(ProcessId),
    Msg {
        src: ProcessId,
        dst: ProcessId,
        payload: M,
        k: u64,
        seq: u64,
        batch: u64,
        born: u64,
    },
}

/// A deterministic asynchronous world: processes plus in-flight events.
///
/// Determinism: one master seed derives one RNG per process and one for the
/// scheduler; two runs with the same processes, scheduler, and seed produce
/// identical traces.
pub struct World<M> {
    procs: Vec<Box<dyn Process<M>>>,
    pending: Vec<Pending<M>>,
    started: Vec<bool>,
    halted: Vec<bool>,
    moves: Vec<Option<Action>>,
    wills: Vec<Option<Action>>,
    proc_rngs: Vec<StdRng>,
    sched_rng: StdRng,
    pair_seq: Vec<u64>, // (src*n_total + dst) -> next k
    next_seq: u64,
    next_batch: u64,
    steps: u64,
    sent: u64,
    delivered: u64,
    trace: Trace,
    allow_drop: bool,
    starvation_bound: u64,
    views_buf: Vec<PendingView>, // scratch reused across steps
    ran: bool,
}

impl<M> World<M> {
    /// Creates a world over the given processes with a master seed.
    pub fn new(procs: Vec<Box<dyn Process<M>>>, seed: u64) -> Self {
        let n = procs.len();
        let proc_rngs = (0..n)
            .map(|i| {
                StdRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64),
                )
            })
            .collect();
        World {
            procs,
            pending: Vec::new(),
            started: vec![false; n],
            halted: vec![false; n],
            moves: vec![None; n],
            wills: vec![None; n],
            proc_rngs,
            sched_rng: StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF_CAFE_F00D),
            pair_seq: vec![0; n * n],
            next_seq: 0,
            next_batch: 0,
            steps: 0,
            sent: 0,
            delivered: 0,
            trace: Trace::new(),
            allow_drop: false,
            starvation_bound: u64::MAX,
            views_buf: Vec::new(),
            ran: false,
        }
    }

    /// Permits [`SchedChoice::Drop`] (relaxed-scheduler semantics, §5).
    /// Dropping one message drops its entire batch (all-or-none rule).
    pub fn allow_drops(&mut self) -> &mut Self {
        self.allow_drop = true;
        self
    }

    /// Force-delivers any event pending longer than `bound` steps, keeping
    /// adversarial schedulers technically fair (eventual delivery).
    pub fn set_starvation_bound(&mut self, bound: u64) -> &mut Self {
        self.starvation_bound = bound;
        self
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Returns `true` if the world has no processes.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Runs to quiescence, deadlock, or the step budget; consumes the
    /// schedule produced by `scheduler`.
    ///
    /// A world runs once: the returned [`Outcome`] takes ownership of the
    /// per-process results instead of cloning them.
    ///
    /// # Panics
    ///
    /// Panics if called a second time on the same world.
    pub fn run(&mut self, scheduler: &mut dyn Scheduler, max_steps: u64) -> Outcome {
        assert!(
            !self.ran,
            "World::run called twice; build a fresh World per run"
        );
        self.ran = true;
        let n = self.procs.len();
        // Start signals for everyone (the paper: each player receives a
        // signal that the game has started when first scheduled).
        for p in 0..n {
            self.pending.push(Pending::Start(p));
        }

        let termination = loop {
            // Purge events to halted processes: they are dead weight and the
            // paper's halted players neither receive nor react.
            self.purge_halted();

            if self.pending.is_empty() {
                let all_done = self.halted.iter().all(|&h| h);
                break if all_done {
                    TerminationKind::Quiescent
                } else {
                    TerminationKind::Deadlock
                };
            }
            if self.steps >= max_steps {
                break TerminationKind::BudgetExhausted;
            }

            let choice = self.pick(scheduler);
            match choice {
                SchedChoice::Deliver(i) => self.dispatch(i),
                SchedChoice::Drop(i) => {
                    if self.allow_drop {
                        self.drop_batch(i);
                    } else {
                        // Ordinary games: dropping is not available; deliver
                        // instead so a buggy scheduler cannot violate the
                        // model.
                        self.dispatch(i);
                    }
                }
            }
            self.steps += 1;
        };

        Outcome {
            moves: std::mem::take(&mut self.moves),
            wills: std::mem::take(&mut self.wills),
            halted: std::mem::take(&mut self.halted),
            messages_sent: self.sent,
            messages_delivered: self.delivered,
            steps: self.steps,
            termination,
            trace: std::mem::take(&mut self.trace),
        }
    }

    fn purge_halted(&mut self) {
        let halted = &self.halted;
        self.pending.retain(|p| match p {
            Pending::Start(p) => !halted[*p],
            Pending::Msg { dst, .. } => !halted[*dst],
        });
    }

    /// Refreshes the scheduler-visible view of the pending set into the
    /// reused scratch buffer (no per-step allocation).
    fn fill_views(&mut self) {
        let steps = self.steps;
        self.views_buf.clear();
        self.views_buf.extend(self.pending.iter().map(|p| match p {
            Pending::Start(pid) => PendingView {
                src: None,
                dst: *pid,
                k: 0,
                seq: 0,
                batch: 0,
                age: steps,
            },
            Pending::Msg {
                src,
                dst,
                k,
                seq,
                batch,
                born,
                ..
            } => PendingView {
                src: Some(*src),
                dst: *dst,
                k: *k,
                seq: *seq,
                batch: *batch,
                age: steps - born,
            },
        }));
    }

    fn pick(&mut self, scheduler: &mut dyn Scheduler) -> SchedChoice {
        self.fill_views();
        // Starvation backstop: force-deliver over-age events.
        if let Some((i, _)) = self
            .views_buf
            .iter()
            .enumerate()
            .find(|(_, v)| v.age > self.starvation_bound)
        {
            return SchedChoice::Deliver(i);
        }
        let c = scheduler.next(&self.views_buf, &mut self.sched_rng);
        let idx = match c {
            SchedChoice::Deliver(i) | SchedChoice::Drop(i) => i,
        };
        assert!(
            idx < self.pending.len(),
            "scheduler returned out-of-range index"
        );
        c
    }

    fn dispatch(&mut self, i: usize) {
        let ev = self.pending.swap_remove(i);
        match ev {
            Pending::Start(pid) => self.start_if_needed(pid),
            Pending::Msg {
                src,
                dst,
                payload,
                k,
                ..
            } => {
                // The paper: a player gets its start signal when *first
                // scheduled*, whether by an external signal or by a
                // game-related message. Deliver the start before the message.
                self.start_if_needed(dst);
                if self.halted[dst] {
                    return; // halted during on_start; message discarded
                }
                self.trace.push(TraceEvent::Delivered { src, dst, k });
                self.delivered += 1;
                let mut ctx = Ctx::new(dst, self.steps, &mut self.proc_rngs[dst]);
                self.procs[dst].on_message(src, payload, &mut ctx);
                let effects = ctx.finish();
                self.apply_effects(dst, effects);
            }
        }
    }

    fn start_if_needed(&mut self, pid: ProcessId) {
        if self.started[pid] {
            return;
        }
        self.started[pid] = true;
        self.trace.push(TraceEvent::Started { p: pid });
        let mut ctx = Ctx::new(pid, self.steps, &mut self.proc_rngs[pid]);
        self.procs[pid].on_start(&mut ctx);
        let effects = ctx.finish();
        self.apply_effects(pid, effects);
    }

    fn apply_effects(&mut self, pid: ProcessId, effects: crate::process::Effects<M>) {
        let n = self.procs.len();
        let batch = self.next_batch;
        self.next_batch += 1;
        for (dst, payload) in effects.outbox {
            assert!(dst < n, "send to unknown process {dst}");
            let slot = pid * n + dst;
            self.pair_seq[slot] += 1;
            let k = self.pair_seq[slot];
            self.trace.push(TraceEvent::Sent { src: pid, dst, k });
            self.sent += 1;
            self.pending.push(Pending::Msg {
                src: pid,
                dst,
                payload,
                k,
                seq: self.next_seq,
                batch,
                born: self.steps,
            });
            self.next_seq += 1;
        }
        if let Some(a) = effects.made_move {
            if self.moves[pid].is_none() {
                self.moves[pid] = Some(a);
            }
        }
        match effects.will {
            Some((_, true)) => self.wills[pid] = None,
            Some((a, false)) => self.wills[pid] = Some(a),
            None => {}
        }
        if effects.halted {
            self.halted[pid] = true;
        }
    }

    fn drop_batch(&mut self, i: usize) {
        let batch = match &self.pending[i] {
            Pending::Start(_) => {
                // Start signals cannot be dropped: the game always starts.
                self.dispatch(i);
                return;
            }
            Pending::Msg { batch, .. } => *batch,
        };
        let mut j = 0;
        while j < self.pending.len() {
            let matches = matches!(&self.pending[j], Pending::Msg { batch: b, .. } if *b == batch);
            if matches {
                if let Pending::Msg { src, dst, k, .. } = self.pending.swap_remove(j) {
                    self.trace.push(TraceEvent::Dropped { src, dst, k });
                }
            } else {
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FifoScheduler, LifoScheduler, RandomScheduler, RelaxedScheduler};

    /// Sends `fanout` messages to everyone on start; echoes once on receipt;
    /// moves with the number of messages received after `quota` receipts.
    struct Chatter {
        n: usize,
        fanout: usize,
        quota: usize,
        received: usize,
    }

    impl Process<u32> for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            for d in 0..self.n {
                if d != ctx.me() {
                    for _ in 0..self.fanout {
                        ctx.send(d, 1);
                    }
                }
            }
        }
        fn on_message(&mut self, _src: ProcessId, _msg: u32, ctx: &mut Ctx<u32>) {
            self.received += 1;
            if self.received == self.quota {
                ctx.make_move(self.received as Action);
                ctx.halt();
            }
        }
    }

    fn chatter_world(n: usize, fanout: usize, quota: usize, seed: u64) -> World<u32> {
        let procs: Vec<Box<dyn Process<u32>>> = (0..n)
            .map(|_| {
                Box::new(Chatter {
                    n,
                    fanout,
                    quota,
                    received: 0,
                }) as Box<dyn Process<u32>>
            })
            .collect();
        World::new(procs, seed)
    }

    #[test]
    fn all_processes_receive_quota_and_move() {
        let mut w = chatter_world(4, 2, 3, 1);
        let out = w.run(&mut RandomScheduler::new(), 100_000);
        assert_eq!(out.termination, TerminationKind::Quiescent);
        for m in &out.moves {
            assert_eq!(*m, Some(3));
        }
        assert_eq!(out.messages_sent, 4 * 3 * 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut w = chatter_world(5, 1, 2, seed);
            w.run(&mut RandomScheduler::new(), 100_000)
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a.trace.events(), b.trace.events());
        let c = run(100);
        // Different seed ⇒ (almost surely) different schedule.
        assert_ne!(a.trace.events(), c.trace.events());
    }

    #[test]
    fn fifo_and_lifo_schedules_differ() {
        let mut w1 = chatter_world(3, 2, 2, 7);
        let mut w2 = chatter_world(3, 2, 2, 7);
        let o1 = w1.run(&mut FifoScheduler, 100_000);
        let o2 = w2.run(&mut LifoScheduler, 100_000);
        assert_ne!(o1.trace.events(), o2.trace.events());
        // But both terminate with the same moves — scheduler-proofness of
        // this trivial protocol.
        assert_eq!(o1.moves, o2.moves);
    }

    #[test]
    fn deadlock_detected_when_waiting_forever() {
        /// Waits for a message that never comes.
        struct Waiter;
        impl Process<u32> for Waiter {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                ctx.set_will(13);
            }
            fn on_message(&mut self, _src: ProcessId, _m: u32, _ctx: &mut Ctx<u32>) {}
        }
        let mut w: World<u32> = World::new(vec![Box::new(Waiter)], 0);
        let out = w.run(&mut RandomScheduler::new(), 1000);
        assert_eq!(out.termination, TerminationKind::Deadlock);
        assert_eq!(out.moves[0], None);
        // AH approach: the will fires.
        assert_eq!(out.resolve_ah(&[0]), vec![13]);
        // Default-move approach: the default fires.
        assert_eq!(out.resolve_default(&[7]), vec![7]);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        /// Two processes ping-pong forever.
        struct PingPong;
        impl Process<u32> for PingPong {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                let peer = 1 - ctx.me();
                ctx.send(peer, 0);
            }
            fn on_message(&mut self, src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                ctx.send(src, m + 1);
            }
        }
        let mut w: World<u32> = World::new(vec![Box::new(PingPong), Box::new(PingPong)], 3);
        let out = w.run(&mut RandomScheduler::new(), 500);
        assert_eq!(out.termination, TerminationKind::BudgetExhausted);
        assert_eq!(out.steps, 500);
    }

    #[test]
    fn relaxed_scheduler_can_cause_deadlock_but_batches_drop_atomically() {
        /// Process 0 sends one batch of two messages to 1 and 2; they move on
        /// receipt.
        struct Sender;
        impl Process<u32> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(1, 10);
                    ctx.send(2, 20);
                    ctx.make_move(0);
                    ctx.halt();
                }
            }
            fn on_message(&mut self, _src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                ctx.make_move(m as Action);
                ctx.halt();
            }
        }
        let procs: Vec<Box<dyn Process<u32>>> =
            vec![Box::new(Sender), Box::new(Sender), Box::new(Sender)];
        let mut w = World::new(procs, 11);
        w.allow_drops();
        let out = w.run(&mut RelaxedScheduler::new(vec![0], 0), 10_000);
        // The whole batch was dropped: receivers never move — and crucially
        // NOT only one of them (all-or-none, Lemma 6.10's hypothesis).
        assert_eq!(out.trace.dropped_count(), 2);
        assert_eq!(out.moves[1], None);
        assert_eq!(out.moves[2], None);
        assert_eq!(out.termination, TerminationKind::Deadlock);
    }

    #[test]
    fn drops_ignored_without_relaxed_semantics() {
        struct Sender;
        impl Process<u32> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(1, 10);
                    ctx.halt();
                }
            }
            fn on_message(&mut self, _src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                ctx.make_move(m as Action);
                ctx.halt();
            }
        }
        let procs: Vec<Box<dyn Process<u32>>> = vec![Box::new(Sender), Box::new(Sender)];
        let mut w = World::new(procs, 11);
        // No allow_drops(): the Drop choice degrades to Deliver.
        let out = w.run(&mut RelaxedScheduler::new(vec![0], 0), 10_000);
        assert_eq!(out.moves[1], Some(10));
        assert_eq!(out.trace.dropped_count(), 0);
    }

    #[test]
    fn starvation_bound_forces_delivery() {
        // LIFO + a self-feeding process would starve the other message
        // forever; the bound forces it through.
        struct SelfFeeder {
            count: u32,
        }
        impl Process<u32> for SelfFeeder {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(0, 0); // self-message loop
                    ctx.send(1, 42); // the message LIFO will starve
                }
            }
            fn on_message(&mut self, _src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    self.count += 1;
                    if self.count < 200 {
                        ctx.send(0, m);
                    } else {
                        ctx.make_move(0);
                        ctx.halt();
                    }
                } else {
                    ctx.make_move(m as Action);
                    ctx.halt();
                }
            }
        }
        let procs: Vec<Box<dyn Process<u32>>> = vec![
            Box::new(SelfFeeder { count: 0 }),
            Box::new(SelfFeeder { count: 0 }),
        ];
        let mut w = World::new(procs, 5);
        w.set_starvation_bound(50);
        let out = w.run(&mut LifoScheduler, 100_000);
        assert_eq!(
            out.moves[1],
            Some(42),
            "starved message must eventually arrive"
        );
    }

    #[test]
    fn messages_to_halted_processes_are_discarded() {
        struct OneShot;
        impl Process<u32> for OneShot {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(1, 1);
                    ctx.send(1, 2);
                    ctx.halt();
                }
            }
            fn on_message(&mut self, _src: ProcessId, m: u32, ctx: &mut Ctx<u32>) {
                ctx.make_move(m as Action);
                ctx.halt(); // halt after first message; second must be purged
            }
        }
        let procs: Vec<Box<dyn Process<u32>>> = vec![Box::new(OneShot), Box::new(OneShot)];
        let mut w = World::new(procs, 2);
        let out = w.run(&mut FifoScheduler, 10_000);
        assert_eq!(out.termination, TerminationKind::Quiescent);
        assert_eq!(out.moves[1], Some(1));
        assert_eq!(out.messages_delivered, 1);
    }

    #[test]
    fn per_pair_sequence_numbers_count_up() {
        struct Burst;
        impl Process<u32> for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.me() == 0 {
                    ctx.send(1, 0);
                    ctx.send(1, 0);
                    ctx.send(1, 0);
                    ctx.halt();
                }
            }
            fn on_message(&mut self, _src: ProcessId, _m: u32, _ctx: &mut Ctx<u32>) {}
        }
        let procs: Vec<Box<dyn Process<u32>>> = vec![Box::new(Burst), Box::new(Burst)];
        let mut w = World::new(procs, 2);
        let out = w.run(&mut FifoScheduler, 100);
        let ks: Vec<u64> = out
            .trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Sent { src: 0, dst: 1, k } => Some(*k),
                _ => None,
            })
            .collect();
        assert_eq!(ks, vec![1, 2, 3]);
    }
}
