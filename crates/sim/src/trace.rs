//! Message patterns: the environment-visible view of a run.
//!
//! Lemma 6.8 of the paper defines a *message pattern* as the sequence of
//! events `(s, i, j, k)` ("the `k`-th message from `i` to `j` was sent") and
//! `(d, i, j, k)` ("... was delivered"), with contents hidden. Schedulers in
//! this crate see exactly this information, and [`Trace`] records it for the
//! whole run so that experiments can count messages and reconstruct
//! scheduler-equivalence classes.
//!
//! Long benchmark runs dispatch millions of events; storing every one is
//! pure overhead when only the counters matter. [`TraceMode`] therefore
//! lets a [`World`](crate::World) bound the recording: [`TraceMode::Full`]
//! (the default — every event, what the trace-equality suites compare),
//! [`TraceMode::Ring`] (the last `cap` events in a ring buffer — enough
//! context to debug a failure near the end of a long run), and
//! [`TraceMode::Off`] (counters only). The event counters are maintained
//! incrementally in every mode, so [`Trace::sent_count`] and friends are
//! exact — and O(1) — regardless of how much of the event stream is kept.

use crate::process::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One environment-visible event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Process `p` received its start signal.
    Started { p: ProcessId },
    /// The `k`-th message from `src` to `dst` was sent (paper: `(s,i,j,k)`).
    Sent {
        src: ProcessId,
        dst: ProcessId,
        k: u64,
    },
    /// The `k`-th message from `src` to `dst` was delivered (paper: `(d,i,j,k)`).
    Delivered {
        src: ProcessId,
        dst: ProcessId,
        k: u64,
    },
    /// The `k`-th message from `src` to `dst` was dropped by a relaxed scheduler.
    Dropped {
        src: ProcessId,
        dst: ProcessId,
        k: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Started { p } => write!(f, "(start,{p})"),
            TraceEvent::Sent { src, dst, k } => write!(f, "(s,{src},{dst},{k})"),
            TraceEvent::Delivered { src, dst, k } => write!(f, "(d,{src},{dst},{k})"),
            TraceEvent::Dropped { src, dst, k } => write!(f, "(x,{src},{dst},{k})"),
        }
    }
}

/// How much of the event stream a [`Trace`] retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TraceMode {
    /// Record every event (the default; required by pattern-equality tests).
    #[default]
    Full,
    /// Keep only the most recent `cap` events (ring buffer).
    Ring(usize),
    /// Keep no events; counters stay exact.
    Off,
}

/// The message pattern of a run: retained events plus exact counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    mode: TraceMode,
    /// Ring write cursor: index of the *oldest* retained event once the
    /// buffer has wrapped (always 0 in [`TraceMode::Full`]).
    head: usize,
    started: u64,
    sent: u64,
    delivered: u64,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// Creates an empty full-recording trace.
    pub fn new() -> Self {
        Trace::with_mode(TraceMode::Full)
    }

    /// Creates an empty trace with the given retention mode.
    pub fn with_mode(mode: TraceMode) -> Self {
        Trace {
            events: Vec::new(),
            mode,
            head: 0,
            started: 0,
            sent: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// The retention mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    pub(crate) fn push(&mut self, e: TraceEvent) {
        match e {
            TraceEvent::Started { .. } => self.started += 1,
            TraceEvent::Sent { .. } => self.sent += 1,
            TraceEvent::Delivered { .. } => self.delivered += 1,
            TraceEvent::Dropped { .. } => self.dropped += 1,
        }
        match self.mode {
            TraceMode::Full => self.events.push(e),
            TraceMode::Off => {}
            TraceMode::Ring(cap) => {
                if cap == 0 {
                    return;
                }
                if self.events.len() < cap {
                    self.events.push(e);
                } else {
                    self.events[self.head] = e;
                    self.head = (self.head + 1) % cap;
                }
            }
        }
    }

    /// Appends an event. Traces are plain data; building them by hand is
    /// useful for testing pattern-classification tooling.
    pub fn push_event(&mut self, e: TraceEvent) {
        self.push(e);
    }

    /// The retained events. In [`TraceMode::Full`] this is the complete
    /// pattern in dispatch order; in [`TraceMode::Ring`] use
    /// [`Trace::recent`] instead (this slice is in storage, not
    /// chronological, order once the ring has wrapped).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The retained events in chronological order (all of them in
    /// [`TraceMode::Full`], the trailing window in [`TraceMode::Ring`]).
    pub fn recent(&self) -> impl Iterator<Item = &TraceEvent> {
        let (older, newer) = self.events.split_at(self.head.min(self.events.len()));
        newer.iter().chain(older.iter())
    }

    /// Number of messages sent (exact in every mode).
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Number of messages delivered (exact in every mode).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of messages dropped by a relaxed scheduler (exact in every
    /// mode).
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Number of start signals delivered (exact in every mode).
    pub fn started_count(&self) -> u64 {
        self.started
    }

    /// Events recorded but **not retained**: zero in [`TraceMode::Full`],
    /// the number of events the ring buffer overwrote in
    /// [`TraceMode::Ring`], and everything in [`TraceMode::Off`].
    ///
    /// A nonzero value means the retained stream is *partial* — a trace
    /// store must mark such a recording accordingly, and deterministic
    /// replay must refuse it (re-enacting a truncated prefix would silently
    /// diverge from the recorded run).
    pub fn wrapped(&self) -> u64 {
        (self.started + self.sent + self.delivered + self.dropped) - self.events.len() as u64
    }

    /// Messages sent by a specific process, counted over the *retained*
    /// events (the full pattern in [`TraceMode::Full`]).
    pub fn sent_by(&self, p: ProcessId) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Sent { src, .. } if *src == p))
            .count() as u64
    }

    /// Renders the retained pattern in the paper's tuple notation
    /// (chronological order).
    pub fn to_pattern_string(&self) -> String {
        let parts: Vec<String> = self.recent().map(|e| e.to_string()).collect();
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_rendering() {
        let mut t = Trace::new();
        t.push(TraceEvent::Started { p: 0 });
        t.push(TraceEvent::Sent {
            src: 0,
            dst: 3,
            k: 1,
        });
        t.push(TraceEvent::Sent {
            src: 1,
            dst: 0,
            k: 1,
        });
        t.push(TraceEvent::Sent {
            src: 0,
            dst: 3,
            k: 2,
        });
        t.push(TraceEvent::Delivered {
            src: 0,
            dst: 3,
            k: 2,
        });
        assert_eq!(t.sent_count(), 3);
        assert_eq!(t.delivered_count(), 1);
        assert_eq!(t.dropped_count(), 0);
        assert_eq!(t.sent_by(0), 2);
        // This is the example pattern from the proof of Lemma 6.8.
        assert_eq!(
            t.to_pattern_string(),
            "(start,0), (s,0,3,1), (s,1,0,1), (s,0,3,2), (d,0,3,2)"
        );
    }

    #[test]
    fn ring_mode_keeps_trailing_window_and_exact_counters() {
        let mut t = Trace::with_mode(TraceMode::Ring(3));
        for k in 1..=7u64 {
            t.push(TraceEvent::Sent { src: 0, dst: 1, k });
        }
        assert_eq!(t.sent_count(), 7, "counters stay exact");
        let ks: Vec<u64> = t
            .recent()
            .map(|e| match e {
                TraceEvent::Sent { k, .. } => *k,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ks, vec![5, 6, 7], "last `cap` events, in order");
    }

    #[test]
    fn off_mode_records_nothing_but_counts_everything() {
        let mut t = Trace::with_mode(TraceMode::Off);
        t.push(TraceEvent::Started { p: 2 });
        t.push(TraceEvent::Dropped {
            src: 1,
            dst: 2,
            k: 1,
        });
        assert!(t.events().is_empty());
        assert_eq!(t.started_count(), 1);
        assert_eq!(t.dropped_count(), 1);
        assert_eq!(t.to_pattern_string(), "");
    }

    #[test]
    fn wrapped_counts_lost_events_per_mode() {
        let mut full = Trace::new();
        let mut ring = Trace::with_mode(TraceMode::Ring(3));
        let mut off = Trace::with_mode(TraceMode::Off);
        for k in 1..=7u64 {
            let e = TraceEvent::Sent { src: 0, dst: 1, k };
            full.push_event(e);
            ring.push_event(e);
            off.push_event(e);
        }
        assert_eq!(full.wrapped(), 0, "full mode loses nothing");
        assert_eq!(ring.wrapped(), 4, "7 recorded, 3 retained");
        assert_eq!(off.wrapped(), 7, "off mode retains nothing");
        // A ring that never wrapped is still complete.
        let mut small = Trace::with_mode(TraceMode::Ring(10));
        small.push_event(TraceEvent::Started { p: 0 });
        assert_eq!(small.wrapped(), 0);
    }

    #[test]
    fn full_mode_recent_matches_events() {
        let mut t = Trace::new();
        for k in 1..=4u64 {
            t.push(TraceEvent::Sent { src: 0, dst: 1, k });
        }
        let via_recent: Vec<TraceEvent> = t.recent().copied().collect();
        assert_eq!(via_recent.as_slice(), t.events());
    }
}
