//! Message patterns: the environment-visible view of a run.
//!
//! Lemma 6.8 of the paper defines a *message pattern* as the sequence of
//! events `(s, i, j, k)` ("the `k`-th message from `i` to `j` was sent") and
//! `(d, i, j, k)` ("... was delivered"), with contents hidden. Schedulers in
//! this crate see exactly this information, and [`Trace`] records it for the
//! whole run so that experiments can count messages and reconstruct
//! scheduler-equivalence classes.

use crate::process::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One environment-visible event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Process `p` received its start signal.
    Started { p: ProcessId },
    /// The `k`-th message from `src` to `dst` was sent (paper: `(s,i,j,k)`).
    Sent {
        src: ProcessId,
        dst: ProcessId,
        k: u64,
    },
    /// The `k`-th message from `src` to `dst` was delivered (paper: `(d,i,j,k)`).
    Delivered {
        src: ProcessId,
        dst: ProcessId,
        k: u64,
    },
    /// The `k`-th message from `src` to `dst` was dropped by a relaxed scheduler.
    Dropped {
        src: ProcessId,
        dst: ProcessId,
        k: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Started { p } => write!(f, "(start,{p})"),
            TraceEvent::Sent { src, dst, k } => write!(f, "(s,{src},{dst},{k})"),
            TraceEvent::Delivered { src, dst, k } => write!(f, "(d,{src},{dst},{k})"),
            TraceEvent::Dropped { src, dst, k } => write!(f, "(x,{src},{dst},{k})"),
        }
    }
}

/// The full message pattern of a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// Appends an event. Traces are plain data; building them by hand is
    /// useful for testing pattern-classification tooling.
    pub fn push_event(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// All events, in dispatch order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of messages sent.
    pub fn sent_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Sent { .. }))
            .count() as u64
    }

    /// Number of messages delivered.
    pub fn delivered_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Delivered { .. }))
            .count() as u64
    }

    /// Number of messages dropped by a relaxed scheduler.
    pub fn dropped_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dropped { .. }))
            .count() as u64
    }

    /// Messages sent by a specific process.
    pub fn sent_by(&self, p: ProcessId) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Sent { src, .. } if *src == p))
            .count() as u64
    }

    /// Renders the pattern in the paper's tuple notation.
    pub fn to_pattern_string(&self) -> String {
        let parts: Vec<String> = self.events.iter().map(|e| e.to_string()).collect();
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_rendering() {
        let mut t = Trace::new();
        t.push(TraceEvent::Started { p: 0 });
        t.push(TraceEvent::Sent {
            src: 0,
            dst: 3,
            k: 1,
        });
        t.push(TraceEvent::Sent {
            src: 1,
            dst: 0,
            k: 1,
        });
        t.push(TraceEvent::Sent {
            src: 0,
            dst: 3,
            k: 2,
        });
        t.push(TraceEvent::Delivered {
            src: 0,
            dst: 3,
            k: 2,
        });
        assert_eq!(t.sent_count(), 3);
        assert_eq!(t.delivered_count(), 1);
        assert_eq!(t.dropped_count(), 0);
        assert_eq!(t.sent_by(0), 2);
        // This is the example pattern from the proof of Lemma 6.8.
        assert_eq!(
            t.to_pattern_string(),
            "(start,0), (s,0,3,1), (s,1,0,1), (s,0,3,2), (d,0,3,2)"
        );
    }
}
