//! The recording seam: where completed runs hand their traces to a store.
//!
//! The simulator produces an [`Outcome`] (with the full message pattern in
//! [`Outcome::trace`]) and forgets it; anything durable — a trace store, a
//! metrics pipeline — attaches *behind* this trait so neither the `World`
//! nor the networked service runtime needs to know what persistence looks
//! like. The `mediator-net` drivers call [`TraceSink::record`] exactly once
//! per completed session, and `mediator-store` implements the trait over
//! its append-only trace log.

use crate::scheduler::SchedulerKind;
use crate::world::Outcome;

/// What the driver knew about a completed run: the routing id it hosted the
/// session under, and — when the session came from a plan — the scheduler
/// kind and seed of the cell, which is exactly what deterministic replay
/// needs to re-open the same world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// The session's routing identifier.
    pub session: u64,
    /// Scheduler kind of the run, when the driver knows it (plan-hosted
    /// sessions do; hand-opened sessions may not).
    pub kind: Option<SchedulerKind>,
    /// Seed of the run, when the driver knows it.
    pub seed: Option<u64>,
}

impl RunMeta {
    /// Meta for a bare session: routing id only.
    pub fn bare(session: u64) -> Self {
        RunMeta {
            session,
            kind: None,
            seed: None,
        }
    }

    /// Meta for a plan-hosted `(kind, seed)` cell.
    pub fn cell(session: u64, kind: SchedulerKind, seed: u64) -> Self {
        RunMeta {
            session,
            kind: Some(kind),
            seed: Some(seed),
        }
    }
}

/// A recorder of completed runs. Implementations must tolerate concurrent
/// calls (the threaded service driver completes sessions from many pump
/// threads) and should not panic: recording is an observer, and a failing
/// sink must not take the run down with it.
pub trait TraceSink: Send + Sync {
    /// Records one completed run.
    fn record(&self, meta: &RunMeta, outcome: &Outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Ctx, Process};
    use crate::scheduler::FifoScheduler;
    use crate::world::World;
    use std::sync::Mutex;

    struct Mover;
    impl Process<u64> for Mover {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            ctx.make_move(1);
            ctx.halt();
        }
        fn on_message(&mut self, _src: usize, _msg: u64, _ctx: &mut Ctx<u64>) {}
    }

    struct Collecting(Mutex<Vec<(RunMeta, u64)>>);
    impl TraceSink for Collecting {
        fn record(&self, meta: &RunMeta, outcome: &Outcome) {
            self.0
                .lock()
                .unwrap()
                .push((meta.clone(), outcome.trace.events().len() as u64));
        }
    }

    #[test]
    fn sink_receives_meta_and_outcome() {
        let procs: Vec<Box<dyn Process<u64>>> = vec![Box::new(Mover)];
        let outcome = World::new(procs, 0).run(&mut FifoScheduler, 100);
        let sink = Collecting(Mutex::new(Vec::new()));
        sink.record(&RunMeta::cell(7, SchedulerKind::Fifo, 3), &outcome);
        sink.record(&RunMeta::bare(8), &outcome);
        let got = sink.0.lock().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.session, 7);
        assert_eq!(got[0].0.kind, Some(SchedulerKind::Fifo));
        assert_eq!(got[0].0.seed, Some(3));
        assert_eq!(got[1].0, RunMeta::bare(8));
        assert!(got[0].1 > 0, "the outcome carries its trace");
    }
}
