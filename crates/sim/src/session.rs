//! A steppable handle over a running [`World`].
//!
//! [`World::run`] is a closed loop: processes in, [`Outcome`] out. A
//! [`Session`] opens that loop without changing its semantics — the same
//! `start → pick → dispatch` core executes, but the caller decides *when*
//! each step happens and may look at (or add to) the pending plane between
//! steps. Driving a session to completion and calling [`Session::finish`]
//! produces byte-for-byte the `Outcome` the closed loop would have
//! produced for the same `(processes, scheduler, seed)` triple; the
//! parity suites pin this.
//!
//! The session is the seam a future async/network backend attaches to:
//! a transport thread calls [`Session::inject`] as packets arrive and
//! [`Session::step`] as its event loop turns, with the scheduler reduced
//! to a policy over locally-pending events.

use crate::process::{Action, ProcessId};
use crate::scheduler::{PendingView, Scheduler};
use crate::world::{Outcome, TerminationKind, World};

/// What one [`Session::step`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// An event was dispatched (or dropped); the run continues.
    Running,
    /// The run has terminated; further `step` calls return the same status.
    Done(TerminationKind),
}

impl SessionStatus {
    /// `true` once the run has terminated.
    pub fn is_done(&self) -> bool {
        matches!(self, SessionStatus::Done(_))
    }
}

/// A non-consuming driver over a [`World`]: `step` one event at a time,
/// inspect `pending`, `inject` external messages, then `finish` into the
/// ordinary [`Outcome`].
pub struct Session<M> {
    world: World<M>,
    scheduler: Box<dyn Scheduler>,
    max_steps: u64,
    done: Option<TerminationKind>,
}

impl<M> Session<M> {
    /// Opens a session: queues the start signals and hands control to the
    /// caller. `max_steps` is the same livelock guard [`World::run`] takes.
    pub fn new(mut world: World<M>, scheduler: Box<dyn Scheduler>, max_steps: u64) -> Self {
        world.start();
        Session {
            world,
            scheduler,
            max_steps,
            done: None,
        }
    }

    /// Dispatches one event (the scheduler's pick, or the starvation
    /// backstop's). Returns [`SessionStatus::Done`] once the run has
    /// terminated; calling `step` again after that is a no-op.
    pub fn step(&mut self) -> SessionStatus {
        if let Some(t) = self.done {
            return SessionStatus::Done(t);
        }
        match self
            .world
            .step_once(self.scheduler.as_mut(), self.max_steps)
        {
            Some(t) => {
                self.done = Some(t);
                SessionStatus::Done(t)
            }
            None => SessionStatus::Running,
        }
    }

    /// Steps up to `n` events, stopping early on termination.
    pub fn step_n(&mut self, n: u64) -> SessionStatus {
        for _ in 0..n {
            if let SessionStatus::Done(t) = self.step() {
                return SessionStatus::Done(t);
            }
        }
        if let Some(t) = self.done {
            SessionStatus::Done(t)
        } else {
            SessionStatus::Running
        }
    }

    /// Steps until the run terminates.
    pub fn run_to_completion(&mut self) -> TerminationKind {
        loop {
            if let SessionStatus::Done(t) = self.step() {
                return t;
            }
        }
    }

    /// The scheduler-visible pending events, in plane order.
    pub fn pending(&self) -> &[PendingView] {
        self.world.pending()
    }

    /// Events dispatched so far.
    pub fn steps(&self) -> u64 {
        self.world.steps()
    }

    /// Moves made so far (indexed by process id).
    pub fn moves(&self) -> &[Option<Action>] {
        self.world.moves()
    }

    /// The termination, once reached.
    pub fn termination(&self) -> Option<TerminationKind> {
        self.done
    }

    /// Injects an external message from `src` to `dst` (see
    /// [`World::inject`]). If the session had already quiesced or
    /// deadlocked, the injection re-opens it — the next [`Session::step`]
    /// re-evaluates termination against the refreshed plane. A
    /// [`TerminationKind::BudgetExhausted`] verdict is final: the step
    /// budget does not replenish.
    pub fn inject(&mut self, src: ProcessId, dst: ProcessId, msg: M) {
        self.world.inject(src, dst, msg);
        if matches!(
            self.done,
            Some(TerminationKind::Quiescent) | Some(TerminationKind::Deadlock)
        ) {
            self.done = None;
        }
    }

    /// Read access to the underlying world.
    pub fn world(&self) -> &World<M> {
        &self.world
    }

    /// Drives the remaining steps (if any) and returns the run's
    /// [`Outcome`] — exactly what [`World::run`] would have returned.
    pub fn finish(mut self) -> Outcome {
        let t = self.run_to_completion();
        self.world.take_outcome(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Ctx, Process};
    use crate::scheduler::{FifoScheduler, RandomScheduler, SchedulerKind};

    /// Echoes the first message it receives as its move.
    struct Echoer {
        n: usize,
        leader: bool,
    }

    impl Process<u64> for Echoer {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            if self.leader {
                for d in 0..self.n {
                    ctx.send(d, 40 + d as u64);
                }
            }
        }
        fn on_message(&mut self, _src: usize, msg: u64, ctx: &mut Ctx<u64>) {
            ctx.make_move(msg);
            ctx.halt();
        }
    }

    fn echo_world(n: usize, seed: u64) -> World<u64> {
        let procs: Vec<Box<dyn Process<u64>>> = (0..n)
            .map(|p| Box::new(Echoer { n, leader: p == 0 }) as Box<dyn Process<u64>>)
            .collect();
        World::new(procs, seed)
    }

    #[test]
    fn stepped_session_matches_closed_loop_run() {
        for kind in [
            SchedulerKind::Random,
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
        ] {
            let closed = {
                let mut w = echo_world(4, 9);
                w.run(kind.build().as_mut(), 10_000)
            };
            let mut session = Session::new(echo_world(4, 9), kind.build(), 10_000);
            let mut steps = 0u64;
            while !session.step().is_done() {
                steps += 1;
            }
            assert_eq!(steps, closed.steps, "{kind:?}");
            let open = session.finish();
            assert_eq!(open.fingerprint(), closed.fingerprint(), "{kind:?}");
        }
    }

    #[test]
    fn pending_is_visible_between_steps() {
        let mut session = Session::new(echo_world(3, 1), Box::new(FifoScheduler), 10_000);
        // Before any step: one start signal per process.
        assert_eq!(session.pending().len(), 3);
        assert!(session.pending().iter().all(|v| v.src.is_none()));
        // FIFO dispatches process 0's start first: its broadcast lands.
        session.step();
        assert_eq!(
            session
                .pending()
                .iter()
                .filter(|v| v.src == Some(0))
                .count(),
            3
        );
        assert_eq!(session.run_to_completion(), TerminationKind::Quiescent);
        assert_eq!(session.moves(), &[Some(40), Some(41), Some(42)]);
    }

    #[test]
    fn inject_reopens_a_deadlocked_session() {
        /// Waits forever for a message; moves on receipt.
        struct Waiter;
        impl Process<u64> for Waiter {
            fn on_start(&mut self, _ctx: &mut Ctx<u64>) {}
            fn on_message(&mut self, _src: usize, msg: u64, ctx: &mut Ctx<u64>) {
                ctx.make_move(msg);
                ctx.halt();
            }
        }
        let procs: Vec<Box<dyn Process<u64>>> = vec![Box::new(Waiter), Box::new(Waiter)];
        let mut session = Session::new(
            World::new(procs, 3),
            Box::new(RandomScheduler::new()),
            10_000,
        );
        assert_eq!(
            session.run_to_completion(),
            TerminationKind::Deadlock,
            "nobody ever sends"
        );
        // The external world delivers: the session comes back to life.
        session.inject(0, 1, 77);
        assert_eq!(session.step(), SessionStatus::Running);
        assert_eq!(session.moves()[1], Some(77));
        let out = session.finish();
        assert_eq!(out.moves[1], Some(77));
        assert_eq!(out.messages_sent, 1);
    }

    #[test]
    fn step_n_stops_at_termination() {
        let mut session = Session::new(echo_world(2, 5), Box::new(FifoScheduler), 10_000);
        let status = session.step_n(1_000);
        assert!(status.is_done());
        assert_eq!(session.termination(), Some(TerminationKind::Quiescent));
        // Further steps are no-ops with the same verdict.
        assert_eq!(session.step(), status);
    }
}
