//! A steppable handle over a running [`World`].
//!
//! [`World::run`] is a closed loop: processes in, [`Outcome`] out. A
//! [`Session`] opens that loop without changing its semantics — the same
//! `start → pick → dispatch` core executes, but the caller decides *when*
//! each step happens and may look at (or add to) the pending plane between
//! steps. Driving a session to completion and calling [`Session::finish`]
//! produces byte-for-byte the `Outcome` the closed loop would have
//! produced for the same `(processes, scheduler, seed)` triple; the
//! parity suites pin this.
//!
//! The session is the seam a network backend attaches to (see the
//! `mediator-net` crate's `Service`): a transport pump calls
//! [`Session::drain_outbox`] to carry freshly-sent messages onto real I/O,
//! [`Session::inject`] as frames arrive, and [`Session::step`] as its
//! event loop turns, with the scheduler reduced to a policy over
//! locally-pending events.

#![warn(missing_docs)]

use crate::process::{Action, ProcessId};
use crate::scheduler::{PendingView, Scheduler};
use crate::world::{Envelope, Outcome, TerminationKind, World};

/// What one [`Session::step`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// An event was dispatched (or dropped); the run continues.
    Running,
    /// The run has terminated; further `step` calls return the same status.
    Done(TerminationKind),
}

impl SessionStatus {
    /// `true` once the run has terminated.
    pub fn is_done(&self) -> bool {
        matches!(self, SessionStatus::Done(_))
    }
}

/// What [`Session::inject`] did with the message — the indicator a
/// transport pump branches on: an injection that entered the plane
/// ([`Injected::progressed`]) warrants an immediate [`Session::step`] to
/// deliver it, while a no-op must *not* be stepped (stepping an empty
/// plane would record a premature termination).
#[must_use = "the pump must distinguish progress from no-ops (see Injected::progressed)"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injected {
    /// The run was live; the message joined the pending plane.
    Absorbed,
    /// The run had quiesced or deadlocked; this injection re-opened it —
    /// the next [`Session::step`] re-evaluates termination against the
    /// refreshed plane.
    Reopened,
    /// The destination has already halted: the send is counted and traced
    /// (the environment saw it), but nothing entered the plane, and a
    /// terminated session stays terminated.
    DeadOnArrival,
    /// The step budget is exhausted. [`TerminationKind::BudgetExhausted`]
    /// is final — the budget does not replenish, so the message can never
    /// be delivered.
    Spent,
}

impl Injected {
    /// `true` when the message entered the plane (the run can progress).
    pub fn progressed(self) -> bool {
        matches!(self, Injected::Absorbed | Injected::Reopened)
    }
}

/// What a [`Session`] needs next — the question a readiness-driven pump
/// (an event loop interleaving many sessions on one thread) asks instead
/// of blocking: a session that wants [`SessionWants::Step`] has local
/// work and should be driven now; one that wants [`SessionWants::Network`]
/// can make no progress until a message is injected, so the loop parks it
/// and moves on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionWants {
    /// Locally-pending events exist: [`Session::step`] (or
    /// [`Session::pump_ready`]) will make progress without new input.
    Step,
    /// The plane is empty and the run is live: only [`Session::inject`]
    /// can create work. (Whether that means "waiting on the wire" or
    /// "quiesced" is the transport's in-flight accounting to decide — the
    /// session cannot see the network.)
    Network,
    /// The run has terminated; only [`Session::finish`] remains.
    Finished,
}

/// A non-consuming driver over a [`World`]: `step` one event at a time,
/// inspect `pending`, `inject` external messages, drain the outbox onto a
/// transport, then `finish` into the ordinary [`Outcome`].
pub struct Session<M> {
    world: World<M>,
    scheduler: Box<dyn Scheduler>,
    max_steps: u64,
    done: Option<TerminationKind>,
    id: Option<u64>,
}

impl<M> Session<M> {
    /// Opens a session: queues the start signals and hands control to the
    /// caller. `max_steps` is the same livelock guard [`World::run`] takes.
    pub fn new(mut world: World<M>, scheduler: Box<dyn Scheduler>, max_steps: u64) -> Self {
        world.start();
        Session {
            world,
            scheduler,
            max_steps,
            done: None,
            id: None,
        }
    }

    /// Tags the session with the stable identifier a multi-session service
    /// routes frames by (`(session-id, player-id)` addressing).
    pub fn with_session_id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// The routing identifier, if one was assigned.
    pub fn session_id(&self) -> Option<u64> {
        self.id
    }

    /// Dispatches one event (the scheduler's pick, or the starvation
    /// backstop's). Returns [`SessionStatus::Done`] once the run has
    /// terminated; calling `step` again after that is a no-op.
    pub fn step(&mut self) -> SessionStatus {
        if let Some(t) = self.done {
            return SessionStatus::Done(t);
        }
        match self
            .world
            .step_once(self.scheduler.as_mut(), self.max_steps)
        {
            Some(t) => {
                self.done = Some(t);
                SessionStatus::Done(t)
            }
            None => SessionStatus::Running,
        }
    }

    /// Steps up to `n` events, stopping early on termination.
    pub fn step_n(&mut self, n: u64) -> SessionStatus {
        for _ in 0..n {
            if let SessionStatus::Done(t) = self.step() {
                return SessionStatus::Done(t);
            }
        }
        if let Some(t) = self.done {
            SessionStatus::Done(t)
        } else {
            SessionStatus::Running
        }
    }

    /// Steps until the run terminates.
    pub fn run_to_completion(&mut self) -> TerminationKind {
        loop {
            if let SessionStatus::Done(t) = self.step() {
                return t;
            }
        }
    }

    /// The scheduler-visible pending events, in plane order.
    pub fn pending(&self) -> &[PendingView] {
        self.world.pending()
    }

    /// Events dispatched so far.
    pub fn steps(&self) -> u64 {
        self.world.steps()
    }

    /// Moves made so far (indexed by process id).
    pub fn moves(&self) -> &[Option<Action>] {
        self.world.moves()
    }

    /// The termination, once reached.
    pub fn termination(&self) -> Option<TerminationKind> {
        self.done
    }

    /// Injects an external message from `src` to `dst` (see
    /// [`World::inject`]) and reports what happened as a typed
    /// [`Injected`] indicator. If the session had quiesced or deadlocked
    /// and the message actually entered the plane, the injection re-opens
    /// the run ([`Injected::Reopened`]) — the next [`Session::step`]
    /// re-evaluates termination against the refreshed plane. A
    /// [`TerminationKind::BudgetExhausted`] verdict is final
    /// ([`Injected::Spent`]): the step budget does not replenish.
    pub fn inject(&mut self, src: ProcessId, dst: ProcessId, msg: M) -> Injected {
        let entered = self.world.inject(src, dst, msg);
        match self.done {
            Some(TerminationKind::BudgetExhausted) => Injected::Spent,
            _ if !entered => Injected::DeadOnArrival,
            Some(TerminationKind::Quiescent) | Some(TerminationKind::Deadlock) => {
                self.done = None;
                Injected::Reopened
            }
            None => Injected::Absorbed,
        }
    }

    /// Removes every in-flight *message* from the pending plane (start
    /// signals stay put), returning the envelopes in plane order — the
    /// non-consuming outbox drain a transport pump calls between steps:
    /// drained messages travel over real I/O and re-enter the run at
    /// arrival via [`Session::inject`]. See [`World::drain_messages`] for
    /// the re-sequencing semantics (the wire hop makes each message a
    /// fresh one-message batch, so the networked trace is one more
    /// delivery order in the adversary-scheduler sense).
    pub fn drain_outbox(&mut self) -> Vec<Envelope<M>> {
        self.world.drain_messages()
    }

    /// Read access to the underlying world.
    pub fn world(&self) -> &World<M> {
        &self.world
    }

    /// What the session needs next (see [`SessionWants`]) — the
    /// non-blocking poll an event loop drives scheduling decisions with.
    pub fn wants(&self) -> SessionWants {
        if self.done.is_some() {
            SessionWants::Finished
        } else if self.world.pending().is_empty() {
            SessionWants::Network
        } else {
            SessionWants::Step
        }
    }

    /// One non-blocking unit of local work: steps once if (and only if)
    /// events are pending, reporting whether anything was dispatched. A
    /// readiness loop calls this in its run queue instead of [`Session::
    /// step`] because stepping an *empty* plane is not a no-op — it
    /// records a termination verdict, which must wait until the
    /// transport's in-flight accounting agrees the run is over.
    pub fn pump_ready(&mut self) -> bool {
        if self.done.is_some() || self.world.pending().is_empty() {
            return false;
        }
        self.step();
        true
    }

    /// Drives the remaining steps (if any) and returns the run's
    /// [`Outcome`] — exactly what [`World::run`] would have returned.
    pub fn finish(mut self) -> Outcome {
        let t = self.run_to_completion();
        self.world.take_outcome(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Ctx, Process};
    use crate::scheduler::{FifoScheduler, RandomScheduler, SchedulerKind};

    /// Echoes the first message it receives as its move.
    struct Echoer {
        n: usize,
        leader: bool,
    }

    impl Process<u64> for Echoer {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            if self.leader {
                for d in 0..self.n {
                    ctx.send(d, 40 + d as u64);
                }
            }
        }
        fn on_message(&mut self, _src: usize, msg: u64, ctx: &mut Ctx<u64>) {
            ctx.make_move(msg);
            ctx.halt();
        }
    }

    fn echo_world(n: usize, seed: u64) -> World<u64> {
        let procs: Vec<Box<dyn Process<u64>>> = (0..n)
            .map(|p| Box::new(Echoer { n, leader: p == 0 }) as Box<dyn Process<u64>>)
            .collect();
        World::new(procs, seed)
    }

    #[test]
    fn stepped_session_matches_closed_loop_run() {
        for kind in [
            SchedulerKind::Random,
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
        ] {
            let closed = {
                let mut w = echo_world(4, 9);
                w.run(kind.build().as_mut(), 10_000)
            };
            let mut session = Session::new(echo_world(4, 9), kind.build(), 10_000);
            let mut steps = 0u64;
            while !session.step().is_done() {
                steps += 1;
            }
            assert_eq!(steps, closed.steps, "{kind:?}");
            let open = session.finish();
            assert_eq!(open.fingerprint(), closed.fingerprint(), "{kind:?}");
        }
    }

    #[test]
    fn pending_is_visible_between_steps() {
        let mut session = Session::new(echo_world(3, 1), Box::new(FifoScheduler), 10_000);
        // Before any step: one start signal per process.
        assert_eq!(session.pending().len(), 3);
        assert!(session.pending().iter().all(|v| v.src.is_none()));
        // FIFO dispatches process 0's start first: its broadcast lands.
        session.step();
        assert_eq!(
            session
                .pending()
                .iter()
                .filter(|v| v.src == Some(0))
                .count(),
            3
        );
        assert_eq!(session.run_to_completion(), TerminationKind::Quiescent);
        assert_eq!(session.moves(), &[Some(40), Some(41), Some(42)]);
    }

    #[test]
    fn inject_reopens_a_deadlocked_session() {
        /// Waits forever for a message; moves on receipt.
        struct Waiter;
        impl Process<u64> for Waiter {
            fn on_start(&mut self, _ctx: &mut Ctx<u64>) {}
            fn on_message(&mut self, _src: usize, msg: u64, ctx: &mut Ctx<u64>) {
                ctx.make_move(msg);
                ctx.halt();
            }
        }
        let procs: Vec<Box<dyn Process<u64>>> = vec![Box::new(Waiter), Box::new(Waiter)];
        let mut session = Session::new(
            World::new(procs, 3),
            Box::new(RandomScheduler::new()),
            10_000,
        );
        assert_eq!(
            session.run_to_completion(),
            TerminationKind::Deadlock,
            "nobody ever sends"
        );
        // The external world delivers: the session comes back to life, and
        // the injection says so in its type.
        assert_eq!(session.inject(0, 1, 77), Injected::Reopened);
        assert_eq!(session.step(), SessionStatus::Running);
        assert_eq!(session.moves()[1], Some(77));
        let out = session.finish();
        assert_eq!(out.moves[1], Some(77));
        assert_eq!(out.messages_sent, 1);
    }

    #[test]
    fn inject_indicator_distinguishes_every_case() {
        struct Waiter;
        impl Process<u64> for Waiter {
            fn on_start(&mut self, _ctx: &mut Ctx<u64>) {}
            fn on_message(&mut self, _src: usize, msg: u64, ctx: &mut Ctx<u64>) {
                ctx.make_move(msg);
                ctx.halt();
            }
        }
        let procs: Vec<Box<dyn Process<u64>>> =
            vec![Box::new(Waiter), Box::new(Waiter), Box::new(Waiter)];
        let mut session = Session::new(World::new(procs, 1), Box::new(FifoScheduler), 10_000);
        // Live run: an injection is plain absorption.
        assert_eq!(session.inject(0, 1, 5), Injected::Absorbed);
        assert_eq!(
            session.run_to_completion(),
            TerminationKind::Deadlock,
            "players 0 and 2 still wait"
        );
        // Player 1 halted on its move: dead on arrival, session stays done.
        assert_eq!(session.inject(0, 1, 6), Injected::DeadOnArrival);
        assert_eq!(
            session.step(),
            SessionStatus::Done(TerminationKind::Deadlock)
        );
        // Player 2 is live: the same injection re-opens the run.
        assert_eq!(session.inject(0, 2, 7), Injected::Reopened);
        assert_eq!(session.step(), SessionStatus::Running);
        assert_eq!(session.moves()[2], Some(7));
    }

    #[test]
    fn inject_into_exhausted_budget_is_spent() {
        /// Ping-pongs forever.
        struct PingPong;
        impl Process<u64> for PingPong {
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                ctx.send(1 - ctx.me(), 0);
            }
            fn on_message(&mut self, src: usize, m: u64, ctx: &mut Ctx<u64>) {
                ctx.send(src, m + 1);
            }
        }
        let procs: Vec<Box<dyn Process<u64>>> = vec![Box::new(PingPong), Box::new(PingPong)];
        let mut session = Session::new(World::new(procs, 2), Box::new(FifoScheduler), 50);
        assert_eq!(
            session.run_to_completion(),
            TerminationKind::BudgetExhausted
        );
        assert_eq!(session.inject(0, 1, 9), Injected::Spent);
        assert_eq!(
            session.step(),
            SessionStatus::Done(TerminationKind::BudgetExhausted),
            "the verdict is final"
        );
    }

    #[test]
    fn drain_outbox_extracts_messages_but_not_start_signals() {
        let mut session = Session::new(echo_world(3, 4), Box::new(FifoScheduler), 10_000);
        // Nothing sent yet: only the three start signals are pending.
        assert!(session.drain_outbox().is_empty());
        assert_eq!(session.pending().len(), 3);
        // The leader's start broadcasts to everyone; drain it off the plane.
        session.step();
        let drained = session.drain_outbox();
        assert_eq!(drained.len(), 3);
        for (d, env) in drained.iter().enumerate() {
            assert_eq!((env.src, env.dst, env.msg), (0, d, 40 + d as u64));
        }
        // The two remaining start signals survived the drain, in order.
        assert_eq!(session.pending().len(), 2);
        assert!(session.pending().iter().all(|v| v.src.is_none()));
        // Re-delivering the drained messages by hand completes the run with
        // the same moves the in-process schedule produces.
        for env in drained {
            assert_eq!(
                session.inject(env.src, env.dst, env.msg),
                Injected::Absorbed
            );
        }
        assert_eq!(session.run_to_completion(), TerminationKind::Quiescent);
        assert_eq!(session.moves(), &[Some(40), Some(41), Some(42)]);
    }

    #[test]
    fn session_id_plumbs_through() {
        let session = Session::new(echo_world(2, 0), Box::new(FifoScheduler), 100);
        assert_eq!(session.session_id(), None);
        let session = session.with_session_id(77);
        assert_eq!(session.session_id(), Some(77));
    }

    #[test]
    fn wants_and_pump_ready_track_the_plane() {
        let mut session = Session::new(echo_world(2, 5), Box::new(FifoScheduler), 10_000);
        // Start signals are pending local work.
        assert_eq!(session.wants(), SessionWants::Step);
        while session.pump_ready() {
            session.drain_outbox().into_iter().for_each(|env| {
                let _ = session.inject(env.src, env.dst, env.msg);
            });
        }
        // pump_ready refuses to step an empty-or-done plane: with every
        // message re-injected and dispatched the session now waits for its
        // driver to agree nothing is in flight...
        assert_eq!(session.wants(), SessionWants::Network);
        assert!(!session.pump_ready());
        // ...and the driver's quiescence step records the verdict.
        assert!(session.step().is_done());
        assert_eq!(session.wants(), SessionWants::Finished);
        assert!(!session.pump_ready());

        // A session whose traffic is stranded on the wire wants Network.
        let mut stranded = Session::new(echo_world(2, 5), Box::new(FifoScheduler), 10_000);
        while stranded.pump_ready() {
            stranded.drain_outbox().clear(); // swallow: frames "in flight"
        }
        if stranded.wants() == SessionWants::Network {
            assert!(!stranded.pump_ready(), "empty plane must not be stepped");
        }
    }

    #[test]
    fn step_n_stops_at_termination() {
        let mut session = Session::new(echo_world(2, 5), Box::new(FifoScheduler), 10_000);
        let status = session.step_n(1_000);
        assert!(status.is_done());
        assert_eq!(session.termination(), Some(TerminationKind::Quiescent));
        // Further steps are no-ops with the same verdict.
        assert_eq!(session.step(), status);
    }
}
