//! The protocol state-machine trait and the effect-collection context.

use rand::rngs::StdRng;
use rand::Rng;

/// Identifies a process in a [`World`](crate::World).
///
/// In mediator games the convention is: players are `0..n` and the mediator
/// is process `n` (the paper writes the mediator as "player 0"; an index at
/// the end keeps player ids stable across games with and without a mediator).
pub type ProcessId = usize;

/// A move in the underlying game, encoded as a small integer.
pub type Action = u64;

/// A protocol participant: an event-driven state machine.
///
/// Implementations receive a start signal exactly once (the paper: "when a
/// player is first scheduled, it gets a signal that the game has started")
/// and then one callback per delivered message. All effects — sending,
/// moving in the underlying game, writing a will, halting — go through
/// [`Ctx`].
pub trait Process<M> {
    /// Called exactly once, when the environment first schedules the process.
    fn on_start(&mut self, ctx: &mut Ctx<M>);

    /// Called when a message from `src` is delivered.
    fn on_message(&mut self, src: ProcessId, msg: M, ctx: &mut Ctx<M>);
}

/// Effect collector handed to [`Process`] callbacks.
///
/// A `Ctx` is live for a single activation; the [`World`](crate::World)
/// drains its effects after the callback returns.
pub struct Ctx<'a, M> {
    me: ProcessId,
    step: u64,
    outbox: Vec<(ProcessId, M)>,
    made_move: Option<Action>,
    will: Option<(Action, bool)>, // (action, clear)
    halted: bool,
    rng: &'a mut StdRng,
}

impl<'a, M> Ctx<'a, M> {
    /// `outbox` is a recycled buffer from the embedding world (must be
    /// empty): activations are frequent and the buffer's capacity is the
    /// point — one growth curve per run instead of one per activation.
    pub(crate) fn new(
        me: ProcessId,
        step: u64,
        rng: &'a mut StdRng,
        outbox: Vec<(ProcessId, M)>,
    ) -> Self {
        debug_assert!(outbox.is_empty());
        Ctx {
            me,
            step,
            outbox,
            made_move: None,
            will: None,
            halted: false,
            rng,
        }
    }

    /// The id of the process being activated.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The global step counter (number of events dispatched so far).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Queues a message to `dst`. Messages queued in one activation form a
    /// *batch*: a relaxed scheduler must drop all of them or none (§5).
    pub fn send(&mut self, dst: ProcessId, msg: M) {
        self.outbox.push((dst, msg));
    }

    /// Makes the process's (single) move in the underlying game. Later calls
    /// in the same or subsequent activations are ignored — the game tree
    /// allows at most one move per player (§2).
    pub fn make_move(&mut self, action: Action) {
        if self.made_move.is_none() {
            self.made_move = Some(action);
        }
    }

    /// Writes the process's *will*: the move to be carried out by its
    /// executor if the cheap-talk phase never ends (the Aumann–Hart
    /// approach). Overwrites any previous will.
    pub fn set_will(&mut self, action: Action) {
        self.will = Some((action, false));
    }

    /// Clears a previously written will.
    pub fn clear_will(&mut self) {
        self.will = Some((0, true));
    }

    /// Stops the process: no further messages will be delivered to it.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Process-local randomness (seeded deterministically by the world).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut *self.rng
    }

    /// The same process-local generator, as its concrete type — the shape
    /// the [`SansIo`](crate::sansio::SansIo) driving contract passes to
    /// state machines.
    pub fn std_rng(&mut self) -> &mut StdRng {
        self.rng
    }

    pub(crate) fn finish(self) -> Effects<M> {
        Effects {
            outbox: self.outbox,
            made_move: self.made_move,
            will: self.will,
            halted: self.halted,
        }
    }
}

/// Drained effects of one activation.
pub(crate) struct Effects<M> {
    pub outbox: Vec<(ProcessId, M)>,
    pub made_move: Option<Action>,
    pub will: Option<(Action, bool)>,
    pub halted: bool,
}

/// Verdict of an [`OutgoingTamper`] on one outgoing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperVerdict<M> {
    /// Send the (possibly rewritten) message.
    Deliver(M),
    /// Drop the message silently (the recipient never learns it existed).
    Drop,
    /// Hold the message; it stays queued inside the [`Tamper`] wrapper
    /// until [`OutgoingTamper::flush_held`] says to release it.
    Hold(M),
}

/// A message-level tampering policy: the hook the adversary plane plugs
/// into any [`Process`] via [`Tamper`].
///
/// Deviations in the paper's model are *strategies of the deviating
/// players*, so tampering happens at the sender — the environment itself
/// stays content-blind (§6.1). The policy sees every message the wrapped
/// process emits, in emission order, and may rewrite, drop, or delay it;
/// held messages are re-offered for release at each later activation
/// (asynchrony makes any such delay indistinguishable from a slow link,
/// which is exactly why delay-based deviations are legal strategies).
pub trait OutgoingTamper<M> {
    /// Decides the fate of one outgoing message (called in send order).
    fn outgoing(&mut self, dst: ProcessId, msg: M) -> TamperVerdict<M>;

    /// Whether messages held earlier should be released now. Consulted at
    /// the start of every activation of the wrapped process.
    fn flush_held(&mut self) -> bool {
        false
    }
}

/// Wraps a process and routes every message it emits through an
/// [`OutgoingTamper`] — the generic message-tampering hook.
///
/// Moves, wills, and halts pass through untouched: tampering is about the
/// *communication* strategy, not the game move (a deviation that changes
/// the move is a different process, not a tamper).
pub struct Tamper<M, P, T> {
    inner: P,
    tamper: T,
    held: Vec<(ProcessId, M)>,
    scratch: Vec<(ProcessId, M)>,
}

impl<M, P, T> Tamper<M, P, T>
where
    P: Process<M>,
    T: OutgoingTamper<M>,
{
    /// Wraps `inner`, filtering its outgoing messages through `tamper`.
    pub fn new(inner: P, tamper: T) -> Self {
        Tamper {
            inner,
            tamper,
            held: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Messages currently held back by the tamper policy.
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    fn activate(&mut self, ctx: &mut Ctx<M>, run: impl FnOnce(&mut P, &mut Ctx<M>)) {
        if !self.held.is_empty() && self.tamper.flush_held() {
            for (dst, msg) in self.held.drain(..) {
                ctx.send(dst, msg);
            }
        }
        // Run the inner process against a recycled effect collector (one
        // growth curve per run, as with the world's own outboxes), then
        // replay its effects through the tamper policy.
        let mut inner_ctx = Ctx::new(
            ctx.me,
            ctx.step,
            &mut *ctx.rng,
            std::mem::take(&mut self.scratch),
        );
        run(&mut self.inner, &mut inner_ctx);
        let mut effects = inner_ctx.finish();
        for (dst, msg) in effects.outbox.drain(..) {
            match self.tamper.outgoing(dst, msg) {
                TamperVerdict::Deliver(m) => ctx.send(dst, m),
                TamperVerdict::Drop => {}
                TamperVerdict::Hold(m) => self.held.push((dst, m)),
            }
        }
        self.scratch = effects.outbox;
        if let Some(a) = effects.made_move {
            ctx.make_move(a);
        }
        match effects.will {
            Some((_, true)) => ctx.clear_will(),
            Some((a, false)) => ctx.set_will(a),
            None => {}
        }
        if effects.halted {
            ctx.halt();
        }
    }
}

impl<M, P, T> Process<M> for Tamper<M, P, T>
where
    P: Process<M>,
    T: OutgoingTamper<M>,
{
    fn on_start(&mut self, ctx: &mut Ctx<M>) {
        self.activate(ctx, |p, c| p.on_start(c));
    }

    fn on_message(&mut self, src: ProcessId, msg: M, ctx: &mut Ctx<M>) {
        self.activate(ctx, |p, c| p.on_message(src, msg, c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_collects_sends_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Ctx<&str> = Ctx::new(3, 9, &mut rng, Vec::new());
        ctx.send(1, "a");
        ctx.send(2, "b");
        assert_eq!(ctx.me(), 3);
        assert_eq!(ctx.step(), 9);
        let eff = ctx.finish();
        assert_eq!(eff.outbox, vec![(1, "a"), (2, "b")]);
        assert!(!eff.halted);
    }

    #[test]
    fn first_move_wins() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Ctx<()> = Ctx::new(0, 0, &mut rng, Vec::new());
        ctx.make_move(5);
        ctx.make_move(9);
        assert_eq!(ctx.finish().made_move, Some(5));
    }

    struct Chatter;
    impl Process<u8> for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<u8>) {
            ctx.send(1, 10);
            ctx.send(2, 20);
            ctx.set_will(4);
        }
        fn on_message(&mut self, _src: ProcessId, msg: u8, ctx: &mut Ctx<u8>) {
            ctx.send(1, msg + 1);
            ctx.make_move(9);
            ctx.halt();
        }
    }

    struct EvenDropper {
        seen: u64,
        flush_at: u64,
    }
    impl OutgoingTamper<u8> for EvenDropper {
        fn outgoing(&mut self, dst: ProcessId, msg: u8) -> TamperVerdict<u8> {
            self.seen += 1;
            if dst == 2 {
                TamperVerdict::Drop
            } else if self.seen < self.flush_at {
                TamperVerdict::Hold(msg)
            } else {
                TamperVerdict::Deliver(msg + 100)
            }
        }
        fn flush_held(&mut self) -> bool {
            self.seen >= self.flush_at
        }
    }

    #[test]
    fn tamper_rewrites_drops_and_holds() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = Tamper::new(
            Chatter,
            EvenDropper {
                seen: 0,
                flush_at: 3,
            },
        );
        let mut ctx: Ctx<u8> = Ctx::new(0, 0, &mut rng, Vec::new());
        t.on_start(&mut ctx);
        let eff = ctx.finish();
        // msg to 1 held (seen=1 < 3), msg to 2 dropped; will passes through.
        assert!(eff.outbox.is_empty());
        assert_eq!(eff.will, Some((4, false)));
        assert_eq!(t.held_len(), 1);

        // Next activation: seen reaches 3 on the new message, but the held
        // flush happens at activation start (seen still 2 < 3): held stays.
        let mut ctx: Ctx<u8> = Ctx::new(0, 1, &mut rng, Vec::new());
        t.on_message(5, 7, &mut ctx);
        let eff = ctx.finish();
        // The new message (seen=3) is delivered rewritten; move/halt pass.
        assert_eq!(eff.outbox, vec![(1, 108)]);
        assert_eq!(eff.made_move, Some(9));
        assert!(eff.halted);
        assert_eq!(t.held_len(), 1);

        // A further activation flushes the held original message first.
        let mut ctx: Ctx<u8> = Ctx::new(0, 2, &mut rng, Vec::new());
        t.on_message(5, 7, &mut ctx);
        let eff = ctx.finish();
        assert_eq!(eff.outbox[0], (1, 10), "held message released unrewritten");
        assert_eq!(t.held_len(), 0);
    }

    #[test]
    fn will_can_be_overwritten_and_cleared() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Ctx<()> = Ctx::new(0, 0, &mut rng, Vec::new());
        ctx.set_will(7);
        ctx.set_will(8);
        assert_eq!(ctx.finish().will, Some((8, false)));

        let mut ctx: Ctx<()> = Ctx::new(0, 0, &mut rng, Vec::new());
        ctx.set_will(7);
        ctx.clear_will();
        assert_eq!(ctx.finish().will, Some((0, true)));
    }
}
