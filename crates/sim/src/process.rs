//! The protocol state-machine trait and the effect-collection context.

use rand::rngs::StdRng;
use rand::Rng;

/// Identifies a process in a [`World`](crate::World).
///
/// In mediator games the convention is: players are `0..n` and the mediator
/// is process `n` (the paper writes the mediator as "player 0"; an index at
/// the end keeps player ids stable across games with and without a mediator).
pub type ProcessId = usize;

/// A move in the underlying game, encoded as a small integer.
pub type Action = u64;

/// A protocol participant: an event-driven state machine.
///
/// Implementations receive a start signal exactly once (the paper: "when a
/// player is first scheduled, it gets a signal that the game has started")
/// and then one callback per delivered message. All effects — sending,
/// moving in the underlying game, writing a will, halting — go through
/// [`Ctx`].
pub trait Process<M> {
    /// Called exactly once, when the environment first schedules the process.
    fn on_start(&mut self, ctx: &mut Ctx<M>);

    /// Called when a message from `src` is delivered.
    fn on_message(&mut self, src: ProcessId, msg: M, ctx: &mut Ctx<M>);
}

/// Effect collector handed to [`Process`] callbacks.
///
/// A `Ctx` is live for a single activation; the [`World`](crate::World)
/// drains its effects after the callback returns.
pub struct Ctx<'a, M> {
    me: ProcessId,
    step: u64,
    outbox: Vec<(ProcessId, M)>,
    made_move: Option<Action>,
    will: Option<(Action, bool)>, // (action, clear)
    halted: bool,
    rng: &'a mut StdRng,
}

impl<'a, M> Ctx<'a, M> {
    /// `outbox` is a recycled buffer from the embedding world (must be
    /// empty): activations are frequent and the buffer's capacity is the
    /// point — one growth curve per run instead of one per activation.
    pub(crate) fn new(
        me: ProcessId,
        step: u64,
        rng: &'a mut StdRng,
        outbox: Vec<(ProcessId, M)>,
    ) -> Self {
        debug_assert!(outbox.is_empty());
        Ctx {
            me,
            step,
            outbox,
            made_move: None,
            will: None,
            halted: false,
            rng,
        }
    }

    /// The id of the process being activated.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The global step counter (number of events dispatched so far).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Queues a message to `dst`. Messages queued in one activation form a
    /// *batch*: a relaxed scheduler must drop all of them or none (§5).
    pub fn send(&mut self, dst: ProcessId, msg: M) {
        self.outbox.push((dst, msg));
    }

    /// Makes the process's (single) move in the underlying game. Later calls
    /// in the same or subsequent activations are ignored — the game tree
    /// allows at most one move per player (§2).
    pub fn make_move(&mut self, action: Action) {
        if self.made_move.is_none() {
            self.made_move = Some(action);
        }
    }

    /// Writes the process's *will*: the move to be carried out by its
    /// executor if the cheap-talk phase never ends (the Aumann–Hart
    /// approach). Overwrites any previous will.
    pub fn set_will(&mut self, action: Action) {
        self.will = Some((action, false));
    }

    /// Clears a previously written will.
    pub fn clear_will(&mut self) {
        self.will = Some((0, true));
    }

    /// Stops the process: no further messages will be delivered to it.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Process-local randomness (seeded deterministically by the world).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut *self.rng
    }

    /// The same process-local generator, as its concrete type — the shape
    /// the [`SansIo`](crate::sansio::SansIo) driving contract passes to
    /// state machines.
    pub fn std_rng(&mut self) -> &mut StdRng {
        self.rng
    }

    pub(crate) fn finish(self) -> Effects<M> {
        Effects {
            outbox: self.outbox,
            made_move: self.made_move,
            will: self.will,
            halted: self.halted,
        }
    }
}

/// Drained effects of one activation.
pub(crate) struct Effects<M> {
    pub outbox: Vec<(ProcessId, M)>,
    pub made_move: Option<Action>,
    pub will: Option<(Action, bool)>,
    pub halted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_collects_sends_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Ctx<&str> = Ctx::new(3, 9, &mut rng, Vec::new());
        ctx.send(1, "a");
        ctx.send(2, "b");
        assert_eq!(ctx.me(), 3);
        assert_eq!(ctx.step(), 9);
        let eff = ctx.finish();
        assert_eq!(eff.outbox, vec![(1, "a"), (2, "b")]);
        assert!(!eff.halted);
    }

    #[test]
    fn first_move_wins() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Ctx<()> = Ctx::new(0, 0, &mut rng, Vec::new());
        ctx.make_move(5);
        ctx.make_move(9);
        assert_eq!(ctx.finish().made_move, Some(5));
    }

    #[test]
    fn will_can_be_overwritten_and_cleared() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Ctx<()> = Ctx::new(0, 0, &mut rng, Vec::new());
        ctx.set_will(7);
        ctx.set_will(8);
        assert_eq!(ctx.finish().will, Some((8, false)));

        let mut ctx: Ctx<()> = Ctx::new(0, 0, &mut rng, Vec::new());
        ctx.set_will(7);
        ctx.clear_will();
        assert_eq!(ctx.finish().will, Some((0, true)));
    }
}
