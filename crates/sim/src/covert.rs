//! The covert channel of Proposition 6.1: players communicating with a
//! content-blind scheduler.
//!
//! The paper's argument (§6.1): the environment cannot read messages, but it
//! *can* count them. A player signals the value `j ∈ {0..M}` by sending `j`
//! empty messages to itself immediately after the event it wants to report;
//! the scheduler decodes by counting self-deliveries. This module implements
//! both ends, and the experiment `E10` uses it to demonstrate that the
//! adversary/scheduler pair may be treated as a single coordinated entity —
//! the premise of Propositions 6.1, 6.2 and Corollary 6.3.

use crate::process::{Ctx, Process, ProcessId};
use crate::scheduler::{PendingView, SchedChoice, Scheduler};
use rand::rngs::StdRng;
use rand::Rng;

/// A player that covertly transmits `value` to the scheduler by sending
/// exactly `value` empty self-messages, then halts.
#[derive(Debug, Clone)]
pub struct CovertSender {
    /// The value to transmit (the number of self-messages).
    pub value: u64,
    sent: bool,
}

impl CovertSender {
    /// Creates a sender that signals `value`.
    pub fn new(value: u64) -> Self {
        CovertSender { value, sent: false }
    }
}

impl<M: Default> Process<M> for CovertSender {
    fn on_start(&mut self, ctx: &mut Ctx<M>) {
        if !self.sent {
            self.sent = true;
            for _ in 0..self.value {
                ctx.send(ctx.me(), M::default());
            }
            if self.value == 0 {
                ctx.halt();
            }
        }
    }
    fn on_message(&mut self, src: ProcessId, _msg: M, ctx: &mut Ctx<M>) {
        // Count-down of our own self-messages; halt when all consumed.
        if src == ctx.me() {
            self.value -= 1;
            if self.value == 0 {
                ctx.halt();
            }
        }
    }
}

/// A scheduler that decodes the covert channel: it counts deliveries of
/// self-messages per process. After the run, [`CovertDecoder::decoded`]
/// yields what the environment "learned" despite never reading a payload.
#[derive(Debug, Clone)]
pub struct CovertDecoder {
    counts: Vec<u64>,
}

impl CovertDecoder {
    /// Creates a decoder for `n` processes.
    pub fn new(n: usize) -> Self {
        CovertDecoder { counts: vec![0; n] }
    }

    /// The decoded value for each process (self-message deliveries counted).
    pub fn decoded(&self) -> &[u64] {
        &self.counts
    }
}

impl Scheduler for CovertDecoder {
    fn next(&mut self, pending: &[PendingView], _now: u64, rng: &mut StdRng) -> SchedChoice {
        // Prefer self-messages so the count finishes early; otherwise random.
        if let Some((i, v)) = pending
            .iter()
            .enumerate()
            .find(|(_, v)| v.src == Some(v.dst))
        {
            self.counts[v.dst] += 1;
            return SchedChoice::Deliver(i);
        }
        SchedChoice::Deliver(rng.gen_range(0..pending.len()))
    }
    fn name(&self) -> &'static str {
        "covert-decoder"
    }
}

/// The reverse channel of §6.1: the *environment* signalling players.
///
/// The paper's construction: a deviator sends itself `(n+1)²` empty
/// messages; the environment encodes "player j₁ sent the k-th message to
/// j₂" by delivering exactly `(n+1)·j₁ + j₂` of them before the player's
/// next activation. Here we implement the primitive beneath that encoding:
/// the player sends itself a block of marker messages, and the scheduler
/// delivers a chosen *count* of them before releasing a fence message; the
/// count is the transmitted value.
#[derive(Debug, Clone)]
pub struct CovertReceiver {
    markers: u64,
    counted: u64,
    /// The value decoded from the environment (markers seen before fence).
    pub decoded: Option<u64>,
}

impl CovertReceiver {
    /// Creates a receiver that posts `markers` self-markers and a fence.
    pub fn new(markers: u64) -> Self {
        CovertReceiver {
            markers,
            counted: 0,
            decoded: None,
        }
    }
}

/// Marker/fence message alphabet for the reverse channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevMsg {
    /// A countable self-marker.
    Marker,
    /// The fence: decoding happens when this arrives.
    Fence,
}

impl Process<RevMsg> for CovertReceiver {
    fn on_start(&mut self, ctx: &mut Ctx<RevMsg>) {
        for _ in 0..self.markers {
            ctx.send(ctx.me(), RevMsg::Marker);
        }
        ctx.send(ctx.me(), RevMsg::Fence);
    }
    fn on_message(&mut self, _src: ProcessId, msg: RevMsg, ctx: &mut Ctx<RevMsg>) {
        match msg {
            RevMsg::Marker => self.counted += 1,
            RevMsg::Fence => {
                if self.decoded.is_none() {
                    self.decoded = Some(self.counted);
                    ctx.make_move(self.counted);
                }
                ctx.halt();
            }
        }
    }
}

/// A scheduler that transmits `value` to process 0 by delivering exactly
/// `value` markers before the fence.
#[derive(Debug, Clone)]
pub struct CovertSignaller {
    /// The value to transmit.
    pub value: u64,
    sent: u64,
}

impl CovertSignaller {
    /// Creates a signaller for `value`.
    pub fn new(value: u64) -> Self {
        CovertSignaller { value, sent: 0 }
    }
}

impl Scheduler for CovertSignaller {
    fn next(&mut self, pending: &[PendingView], _now: u64, rng: &mut StdRng) -> SchedChoice {
        // Deliver start signals first.
        if let Some((i, _)) = pending.iter().enumerate().find(|(_, v)| v.src.is_none()) {
            return SchedChoice::Deliver(i);
        }
        // Self-messages to 0 with the lowest seq are the markers (the fence
        // was sent last, so it has the highest per-pair seq).
        let mut self_msgs: Vec<(usize, u64)> = pending
            .iter()
            .enumerate()
            .filter(|(_, v)| v.src == Some(0) && v.dst == 0)
            .map(|(i, v)| (i, v.k))
            .collect();
        self_msgs.sort_by_key(|&(_, k)| k);
        if self.sent < self.value {
            if let Some(&(i, _)) = self_msgs.first() {
                self.sent += 1;
                return SchedChoice::Deliver(i);
            }
        } else if let Some(&(i, _)) = self_msgs.last() {
            // Release the fence (highest k); remaining markers come after.
            return SchedChoice::Deliver(i);
        }
        SchedChoice::Deliver(rng.gen_range(0..pending.len()))
    }
    fn name(&self) -> &'static str {
        "covert-signaller"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{TerminationKind, World};

    #[test]
    fn scheduler_decodes_player_values_without_reading_contents() {
        let values = [3u64, 0, 7];
        let procs: Vec<Box<dyn Process<u8>>> = values
            .iter()
            .map(|&v| Box::new(CovertSender::new(v)) as Box<dyn Process<u8>>)
            .collect();
        let mut world = World::new(procs, 42);
        let mut decoder = CovertDecoder::new(3);
        let out = world.run(&mut decoder, 10_000);
        assert_eq!(out.termination, TerminationKind::Quiescent);
        assert_eq!(decoder.decoded(), &values);
    }

    #[test]
    fn environment_signals_player_via_delivery_counts() {
        // The reverse direction of §6.1: the scheduler transmits a value to
        // a player by choosing how many of its self-markers to deliver
        // before the fence.
        for value in [0u64, 1, 5, 11] {
            let procs: Vec<Box<dyn Process<RevMsg>>> = vec![Box::new(CovertReceiver::new(16))];
            let mut world = World::new(procs, 3);
            let mut sig = CovertSignaller::new(value);
            let out = world.run(&mut sig, 10_000);
            assert_eq!(out.moves[0], Some(value), "value {value}");
        }
    }

    #[test]
    fn covert_channel_is_invisible_in_payloads() {
        // The trace records sends/deliveries but the scheduler API carries no
        // payloads — the information flow is purely structural.
        let procs: Vec<Box<dyn Process<u8>>> = vec![Box::new(CovertSender::new(5))];
        let mut world = World::new(procs, 1);
        let mut decoder = CovertDecoder::new(1);
        let out = world.run(&mut decoder, 1000);
        assert_eq!(out.messages_sent, 5);
        assert_eq!(decoder.decoded(), &[5]);
    }
}
